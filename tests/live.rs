//! Live-mode equivalence: the windowed live pipeline
//! (`Study::run_live`) must end a replay with a report byte-identical
//! to the batch streaming path (`Study::run_streaming`) after the
//! volatile timings are stripped — for the serial driver and for
//! sharded views — while the mailbox it publishes into serves the same
//! final report plus monotonically advancing figure documents during
//! the replay.

use std::sync::Arc;
use std::time::Duration;

use cwa_repro::core::live::{LiveOptions, LIVE_FIGURE_SCHEMA, LIVE_REPORT_SCHEMA};
use cwa_repro::core::{Study, StudyConfig};
use cwa_repro::obs::{LiveFigure, LiveSnapshot};

fn canonical_json(report: &cwa_repro::core::StudyReport) -> String {
    serde_json::to_string(&report.strip_volatile()).expect("report serializes")
}

fn num(v: Option<&serde_json::Value>) -> Option<u64> {
    match v {
        Some(serde_json::Value::Num(n)) => n.as_u64(),
        _ => None,
    }
}

#[test]
fn live_replay_ends_bit_identical_to_streaming() {
    let baseline = Study::new(StudyConfig::test_small())
        .run_streaming()
        .expect("small study produces matching flows");
    let baseline_json = canonical_json(&baseline);

    for shards in [1usize, 2, 4] {
        let live = Arc::new(LiveSnapshot::new());
        let opts = LiveOptions {
            shards,
            publish: Some(Arc::clone(&live)),
            ..LiveOptions::default()
        };
        let report = Study::new(StudyConfig::test_small())
            .run_live(&opts)
            .expect("small study produces matching flows");
        assert_eq!(
            baseline_json,
            canonical_json(&report),
            "run_live(shards={shards}) == run_streaming"
        );

        // The served end state is exactly the returned report, wrapped
        // in the live envelope.
        let body = live.report().expect("final report published");
        let envelope: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(
            envelope.get("schema").and_then(|v| v.as_str()),
            Some(LIVE_REPORT_SCHEMA)
        );
        assert!(
            matches!(envelope.get("done"), Some(serde_json::Value::Bool(true))),
            "end-of-replay envelope is marked done"
        );
        assert_eq!(
            num(envelope.get("day")),
            Some(u64::from(report.config.sim.days)),
            "the replay covered every simulated day"
        );
        // Round-trip the returned report through the same renderer so
        // non-finite floats normalize identically (NaN → null).
        let report_value: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&report).expect("report serializes"))
                .expect("valid JSON");
        assert_eq!(
            envelope.get("report"),
            Some(&report_value),
            "served /report payload equals the returned report"
        );

        // Every figure endpoint got its final document.
        for figure in LiveFigure::ALL {
            let body = live.figure(figure).expect("figure published");
            let value: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
            assert_eq!(
                value.get("schema").and_then(|v| v.as_str()),
                Some(LIVE_FIGURE_SCHEMA)
            );
            assert_eq!(num(value.get("day")), num(envelope.get("day")));
        }
    }
}

/// The sharded live driver publishes merged interim state once per
/// simulated day: mid-run envelopes are well-formed and advance
/// monotonically, and the publish count is exactly `days` interim
/// reports plus the final one (the deposit queues drain fully before
/// the end-of-run publication).
#[test]
fn sharded_replay_publishes_interim_merged_documents() {
    let config = StudyConfig::test_small();
    let days = u64::from(config.sim.days);
    let live = Arc::new(LiveSnapshot::new());
    let opts = LiveOptions {
        shards: 2,
        publish: Some(Arc::clone(&live)),
        ..LiveOptions::default()
    };
    let observer = Arc::clone(&live);
    let worker = std::thread::spawn(move || {
        Study::new(config)
            .run_live(&opts)
            .expect("small study produces matching flows")
    });

    // Opportunistic mid-run observation: whatever envelopes we catch
    // must be schema-tagged, carry well-formed window verdicts, and
    // advance monotonically in stream position.
    let mut observed: Vec<u64> = Vec::new();
    while !worker.is_finished() {
        if let Some(body) = observer.report() {
            let envelope: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
            assert_eq!(
                envelope.get("schema").and_then(|v| v.as_str()),
                Some(LIVE_REPORT_SCHEMA)
            );
            let verdicts = envelope
                .get("window_verdicts")
                .and_then(|v| v.as_array())
                .expect("window_verdicts is an array");
            for claim in verdicts {
                assert!(claim.get("id").is_some(), "verdict has an id: {claim:?}");
                assert!(
                    claim.get("verdict").is_some(),
                    "verdict has an outcome: {claim:?}"
                );
            }
            let hours = num(envelope.get("hours_seen")).expect("position present");
            if observed.last() != Some(&hours) {
                assert!(
                    observed.last().is_none_or(|last| *last < hours),
                    "interim positions must advance: {observed:?} then {hours}"
                );
                // The final (done) envelope sits one post-finish
                // checkpoint past the last day boundary and can be
                // observed before the worker thread retires; only
                // interim publishes are day-aligned.
                if !matches!(envelope.get("done"), Some(serde_json::Value::Bool(true))) {
                    assert_eq!(hours % 24, 0, "sharded interim publishes at day boundaries");
                }
                observed.push(hours);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = worker.join().expect("live run succeeds");
    assert!(report.matching_flows > 0);

    // Deterministic publish accounting: one merged interim report per
    // simulated day, plus the final done=true publication.
    assert_eq!(
        live.report_publishes(),
        days + 1,
        "one interim report per day plus the final publication"
    );
    let body = live.report().expect("final report published");
    let envelope: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    assert!(matches!(
        envelope.get("done"),
        Some(serde_json::Value::Bool(true))
    ));
    assert_eq!(num(envelope.get("window_from_day")), Some(0));
    // The post-finish checkpoint opens (empty) day `days`, so the
    // final window is days 0 .. days+1.
    assert_eq!(num(envelope.get("window_to_day")), Some(days + 1));
    let verdicts = envelope
        .get("window_verdicts")
        .and_then(|v| v.as_array())
        .expect("window_verdicts present");
    assert!(
        !verdicts.is_empty(),
        "the final window evaluates at least C1/C5a/C7c"
    );
    assert!(
        verdicts
            .iter()
            .any(|c| c.get("id").and_then(|v| v.as_str()) == Some("C1MatchingFlows")),
        "C1 is window-evaluable: {body}"
    );
}

/// While a paced replay runs, the published figure documents advance
/// monotonically — the observable half of the endless-mode guarantee
/// (the memory bound itself is asserted in `cwa-analysis`'s windowed
/// tests).
#[test]
fn paced_replay_publishes_advancing_documents() {
    let live = Arc::new(LiveSnapshot::new());
    let opts = LiveOptions {
        shards: 1,
        // ~2.5 ms of wall clock per simulated hour: the 11-day replay
        // takes ~0.7 s, slow enough to observe several interim states.
        replay_speed: Some(1_440_000.0),
        publish: Some(Arc::clone(&live)),
        ..LiveOptions::default()
    };
    let worker = std::thread::spawn(move || {
        Study::new(StudyConfig::test_small())
            .run_live(&opts)
            .expect("small study produces matching flows")
    });

    let mut observed: Vec<u64> = Vec::new();
    while !worker.is_finished() {
        if let Some(body) = live.figure(LiveFigure::Adoption) {
            let value: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
            let hours = num(value.get("hours_seen")).expect("position present");
            if observed.last() != Some(&hours) {
                assert!(
                    observed.last().is_none_or(|last| *last < hours),
                    "stream position must advance monotonically: {observed:?} then {hours}"
                );
                observed.push(hours);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = worker.join().expect("live run succeeds");
    assert!(report.matching_flows > 0);
    assert!(
        observed.len() >= 2,
        "expected several interim publications, saw positions {observed:?}"
    );
    // An interim (not-done) report was served before the final one.
    let body = live.report().expect("report published");
    assert!(body.contains("\"done\": true"));
}
