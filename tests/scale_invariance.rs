//! Scale invariance — the property the whole reproduction strategy
//! rests on (DESIGN.md: "a `scale` factor shrinks the run without
//! changing any reproduced shape").
//!
//! We run the identical world at three traffic scales and verify that
//! the *normalized* figure outputs agree: hourly flow shapes correlate
//! strongly, district intensity rankings agree at the top, and the
//! scale-adjusted C1 count is stable.

use cwa_repro::analysis::filter::FlowFilter;
use cwa_repro::analysis::stats;
use cwa_repro::analysis::timeseries::HourlySeries;
use cwa_repro::simnet::{SimConfig, SimOutput, Simulation};

fn run(scale: f64) -> SimOutput {
    Simulation::new(SimConfig {
        scale,
        ..SimConfig::test_small()
    })
    .run()
}

fn hourly_shape(out: &SimOutput) -> Vec<f64> {
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let series = HourlySeries::from_records(matching.iter(), out.config.days * 24);
    series.flows_normed_to_min()
}

#[test]
fn hourly_shapes_agree_across_scales() {
    let small = run(0.004);
    let large = run(0.016);
    let shape_small = hourly_shape(&small);
    let shape_large = hourly_shape(&large);
    let corr = stats::pearson(&shape_small, &shape_large);
    assert!(corr > 0.93, "shape correlation across 4x scale: {corr}");
}

#[test]
fn scale_adjusted_flow_count_stable() {
    let a = run(0.004);
    let b = run(0.016);
    let count = |out: &SimOutput| {
        let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
        filter.apply(&out.records).len() as f64 / out.config.scale
    };
    let (ca, cb) = (count(&a), count(&b));
    let rel = (ca - cb).abs() / cb;
    assert!(
        rel < 0.05,
        "scale-adjusted counts {ca:.0} vs {cb:.0} ({rel:.3} rel)"
    );
}

#[test]
fn release_jump_stable_across_scales() {
    let jumps: Vec<f64> = [0.004, 0.016]
        .iter()
        .map(|&s| {
            let out = run(s);
            let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
            let matching = filter.apply_owned(&out.records);
            HourlySeries::from_records(matching.iter(), out.config.days * 24).release_jump()
        })
        .collect();
    // Both in the paper's regime; within ~40% of each other (day-0
    // counts are small at the lower scale).
    assert!(jumps.iter().all(|j| (3.0..14.0).contains(j)), "{jumps:?}");
    let ratio = jumps[0] / jumps[1];
    assert!(
        (0.6..1.67).contains(&ratio),
        "jump ratio {ratio}: {jumps:?}"
    );
}
