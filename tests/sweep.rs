//! Scenario-sweep contract: the claim-survival table is deterministic
//! across shard counts, a fleet-shrinking scenario cannot panic a
//! sharded sweep worker, and starved scales degrade into `starved`
//! table cells instead of aborting the matrix.

use cwa_repro::core::study::persistence_len_for_scale;
use cwa_repro::core::{run_seed_sweep, run_sweep, ScenarioMatrix, Study, StudyConfig};

/// A compact matrix exercising every override family the scenario layer
/// supports, including one deliberately starved cell.
const MATRIX: &str = r#"
[[scenario]]
name = "baseline"

[[scenario]]
name = "slow-logistic-launch"
[scenario.adoption]
family = "logistic"

[[scenario]]
name = "coarse-sampling"
[scenario.vantage]
sampling_interval = 1000

[[scenario]]
name = "starved-tiny-scale"
scale = 0.0005

[[scenario]]
name = "migrated-cdn"
[scenario.cdn_migration]
day = 3
share_percent = 40

[[scenario]]
name = "shrunk-fleet"
[scenario.vantage]
routers = 1

[[scenario]]
name = "dsl-reconnect"
[scenario.cache]
inactive_timeout_ms = 5000
[scenario.traffic]
active_subscriber_fraction = 0.25
"#;

fn base() -> StudyConfig {
    // test_small granularity keeps the six simulations fast while still
    // producing matching flows for the non-starved scenarios.
    StudyConfig::test_small()
}

#[test]
fn survival_table_is_byte_identical_across_shard_counts() {
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let serial = run_sweep(&matrix, &base(), 1).expect("serial sweep");
    let sharded = run_sweep(&matrix, &base(), 2).expect("sharded sweep");
    assert_eq!(
        serial.to_json(),
        sharded.to_json(),
        "the survival table must not depend on the shard count"
    );
    assert_eq!(serial.render_text(), sharded.render_text());
}

#[test]
fn shrunk_fleet_scenario_cannot_panic_a_sharded_sweep() {
    // The "shrunk-fleet" scenario drops the fleet to one router; a
    // sweep asked for 4 shards must clamp per scenario rather than trip
    // InvalidShardCount mid-matrix.
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let table = run_sweep(&matrix, &base(), 4).expect("clamped sweep succeeds");
    assert_eq!(table.rows.len(), 7);
    let shrunk = table
        .rows
        .iter()
        .find(|r| r.scenario == "shrunk-fleet")
        .expect("row present");
    assert!(shrunk.matching_flows > 0, "one router still sees flows");
}

#[test]
fn starved_scenarios_surface_as_starved_cells_not_errors() {
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let table = run_sweep(&matrix, &base(), 1).expect("sweep never aborts on starvation");
    let starved_row = table
        .rows
        .iter()
        .find(|r| r.scenario == "starved-tiny-scale")
        .expect("row present");
    assert!(
        starved_row.cells.iter().any(|c| c.verdict == "starved"),
        "a scale far below viability must starve at least one cell"
    );
    assert!(
        starved_row.cells.iter().all(|c| c.verdict != "fail"),
        "starvation must never be misreported as claim failure"
    );
    // Baseline at test_small granularity (scale 0.004) keeps the dense
    // cells alive — strictly fewer starved cells than the drained row,
    // no failures, and the headline C1 flow count survives.
    let baseline = table
        .rows
        .iter()
        .find(|r| r.scenario == "baseline")
        .expect("row present");
    let starved_of = |row: &cwa_repro::core::SurvivalRow| {
        row.cells.iter().filter(|c| c.verdict == "starved").count()
    };
    assert!(starved_of(baseline) < starved_of(starved_row));
    assert!(baseline.cells.iter().all(|c| c.verdict != "fail"));
    assert!(baseline
        .cells
        .iter()
        .any(|c| c.claim == "C1" && c.verdict == "pass"));
}

/// Pins the claim-survival row for the DSL-reconnect scenario: a
/// shorter flow-cache inactive timeout splits flows on idle gaps while
/// a smaller active-subscriber pool recycles addresses faster. The §2
/// pipeline is built to survive exactly this churn (the paper's
/// rationale for same-day address stability), so the headline claims
/// must hold; only the sparse persistence/outbreak tails starve at
/// test_small granularity. (Re-pinned once for the exact-sampler swap:
/// the new seeded stream leaves C6b's cell just above its support
/// threshold, so it now passes instead of starving.)
#[test]
fn dsl_reconnect_row_is_pinned() {
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let table = run_sweep(&matrix, &base(), 1).expect("sweep");
    let row = table
        .rows
        .iter()
        .find(|r| r.scenario == "dsl-reconnect")
        .expect("row present");
    assert!(row.matching_flows > 0, "churn must not drain the stream");
    let expected = [
        ("C1", "pass"),
        ("C2", "pass"),
        ("C3a", "pass"),
        ("C3b", "pass"),
        ("C4a", "pass"),
        ("C4b", "pass"),
        ("C5a", "pass"),
        ("C5b", "starved"),
        ("C6a", "pass"),
        ("C6b", "pass"),
        ("C6c", "starved"),
        ("C7a", "pass"),
        ("C7b", "pass"),
        ("C7c", "pass"),
    ];
    let got: Vec<(&str, &str)> = row
        .cells
        .iter()
        .map(|c| (c.claim.as_str(), c.verdict.as_str()))
        .collect();
    assert_eq!(got, expected, "dsl-reconnect survival row drifted");
}

/// The ISSUE's regression scales: sparse-but-populated studies must
/// produce a full report whose claims are each `pass` or `starved` —
/// never NaN-driven bogus failures — and exit-style success (no
/// failures) holds without strict mode.
#[test]
fn sparse_scales_degrade_instead_of_failing() {
    for scale in [0.005f64, 0.01] {
        let mut config = StudyConfig::test_small();
        config.sim.scale = scale;
        config.persistence_prefix_len = persistence_len_for_scale(scale);
        let report = Study::new(config)
            .run()
            .unwrap_or_else(|e| panic!("scale {scale} must produce a report: {e}"));
        assert!(report.matching_flows > 0, "scale {scale} is populated");
        for claim in &report.claims {
            assert!(
                claim.verdict.is_pass() || claim.verdict.is_starved(),
                "scale {scale}, claim {}: expected pass or starved, got fail \
                 (measured {})",
                claim.id.code(),
                claim.measured
            );
            if claim.verdict.is_pass() {
                assert!(
                    claim.measured.is_finite(),
                    "scale {scale}, claim {}: a passing claim cannot carry NaN",
                    claim.id.code()
                );
            }
        }
        assert!(report.failures().is_empty());
    }
}

/// The `--seeds N` axis: every cell's tallies account for every seed,
/// the table is shard-invariant like the survival table, and a
/// one-seed fraction table agrees cell-for-cell with the survival
/// table's verdicts.
#[test]
fn seed_sweep_tallies_every_seed_and_stays_shard_invariant() {
    const SMALL: &str = r#"
[[scenario]]
name = "baseline"

[[scenario]]
name = "starved-tiny-scale"
scale = 0.0005
"#;
    let matrix = ScenarioMatrix::parse(SMALL).expect("matrix parses");
    let seeds = 2;
    let serial = run_seed_sweep(&matrix, &base(), 1, seeds).expect("serial seed sweep");
    let sharded = run_seed_sweep(&matrix, &base(), 2, seeds).expect("sharded seed sweep");
    assert_eq!(
        serial.to_json(),
        sharded.to_json(),
        "the pass-fraction table must not depend on the shard count"
    );
    assert_eq!(serial.rows.len(), 2);
    for row in &serial.rows {
        assert_eq!(row.seeds, seeds);
        for cell in &row.cells {
            assert_eq!(
                cell.passes + cell.fails + cell.starved,
                seeds,
                "{}/{}: tallies must account for every seed",
                row.scenario,
                cell.claim
            );
        }
    }
    let drained = &serial.rows[1];
    assert!(
        drained.cells.iter().any(|c| c.starved == seeds),
        "a scale far below viability must starve a cell under every seed"
    );

    // One seed reduces to the survival table's verdict per cell.
    let fractions = run_seed_sweep(&matrix, &base(), 1, 1).expect("one-seed sweep");
    let survival = run_sweep(&matrix, &base(), 1).expect("survival sweep");
    for (frow, srow) in fractions.rows.iter().zip(&survival.rows) {
        assert_eq!(frow.scenario, srow.scenario);
        for (fcell, scell) in frow.cells.iter().zip(&srow.cells) {
            assert_eq!(fcell.claim, scell.claim);
            let expect = match scell.verdict.as_str() {
                "pass" => (1, 0, 0),
                "fail" => (0, 1, 0),
                _ => (0, 0, 1),
            };
            assert_eq!((fcell.passes, fcell.fails, fcell.starved), expect);
        }
    }
}
