//! Scenario-sweep contract: the claim-survival table is deterministic
//! across shard counts, a fleet-shrinking scenario cannot panic a
//! sharded sweep worker, and starved scales degrade into `starved`
//! table cells instead of aborting the matrix.

use cwa_repro::core::study::persistence_len_for_scale;
use cwa_repro::core::{run_sweep, ScenarioMatrix, Study, StudyConfig};

/// A compact matrix exercising every override family the scenario layer
/// supports, including one deliberately starved cell.
const MATRIX: &str = r#"
[[scenario]]
name = "baseline"

[[scenario]]
name = "slow-logistic-launch"
[scenario.adoption]
family = "logistic"

[[scenario]]
name = "coarse-sampling"
[scenario.vantage]
sampling_interval = 1000

[[scenario]]
name = "starved-tiny-scale"
scale = 0.0005

[[scenario]]
name = "migrated-cdn"
[scenario.cdn_migration]
day = 3
share_percent = 40

[[scenario]]
name = "shrunk-fleet"
[scenario.vantage]
routers = 1
"#;

fn base() -> StudyConfig {
    // test_small granularity keeps the six simulations fast while still
    // producing matching flows for the non-starved scenarios.
    StudyConfig::test_small()
}

#[test]
fn survival_table_is_byte_identical_across_shard_counts() {
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let serial = run_sweep(&matrix, &base(), 1).expect("serial sweep");
    let sharded = run_sweep(&matrix, &base(), 2).expect("sharded sweep");
    assert_eq!(
        serial.to_json(),
        sharded.to_json(),
        "the survival table must not depend on the shard count"
    );
    assert_eq!(serial.render_text(), sharded.render_text());
}

#[test]
fn shrunk_fleet_scenario_cannot_panic_a_sharded_sweep() {
    // The "shrunk-fleet" scenario drops the fleet to one router; a
    // sweep asked for 4 shards must clamp per scenario rather than trip
    // InvalidShardCount mid-matrix.
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let table = run_sweep(&matrix, &base(), 4).expect("clamped sweep succeeds");
    assert_eq!(table.rows.len(), 6);
    let shrunk = table
        .rows
        .iter()
        .find(|r| r.scenario == "shrunk-fleet")
        .expect("row present");
    assert!(shrunk.matching_flows > 0, "one router still sees flows");
}

#[test]
fn starved_scenarios_surface_as_starved_cells_not_errors() {
    let matrix = ScenarioMatrix::parse(MATRIX).expect("matrix parses");
    let table = run_sweep(&matrix, &base(), 1).expect("sweep never aborts on starvation");
    let starved_row = table
        .rows
        .iter()
        .find(|r| r.scenario == "starved-tiny-scale")
        .expect("row present");
    assert!(
        starved_row.cells.iter().any(|c| c.verdict == "starved"),
        "a scale far below viability must starve at least one cell"
    );
    assert!(
        starved_row.cells.iter().all(|c| c.verdict != "fail"),
        "starvation must never be misreported as claim failure"
    );
    // Baseline at test_small granularity (scale 0.004) keeps the dense
    // cells alive — strictly fewer starved cells than the drained row,
    // no failures, and the headline C1 flow count survives.
    let baseline = table
        .rows
        .iter()
        .find(|r| r.scenario == "baseline")
        .expect("row present");
    let starved_of = |row: &cwa_repro::core::SurvivalRow| {
        row.cells.iter().filter(|c| c.verdict == "starved").count()
    };
    assert!(starved_of(baseline) < starved_of(starved_row));
    assert!(baseline.cells.iter().all(|c| c.verdict != "fail"));
    assert!(baseline
        .cells
        .iter()
        .any(|c| c.claim == "C1" && c.verdict == "pass"));
}

/// The ISSUE's regression scales: sparse-but-populated studies must
/// produce a full report whose claims are each `pass` or `starved` —
/// never NaN-driven bogus failures — and exit-style success (no
/// failures) holds without strict mode.
#[test]
fn sparse_scales_degrade_instead_of_failing() {
    for scale in [0.005f64, 0.01] {
        let mut config = StudyConfig::test_small();
        config.sim.scale = scale;
        config.persistence_prefix_len = persistence_len_for_scale(scale);
        let report = Study::new(config)
            .run()
            .unwrap_or_else(|e| panic!("scale {scale} must produce a report: {e}"));
        assert!(report.matching_flows > 0, "scale {scale} is populated");
        for claim in &report.claims {
            assert!(
                claim.verdict.is_pass() || claim.verdict.is_starved(),
                "scale {scale}, claim {}: expected pass or starved, got fail \
                 (measured {})",
                claim.id.code(),
                claim.measured
            );
            if claim.verdict.is_pass() {
                assert!(
                    claim.measured.is_finite(),
                    "scale {scale}, claim {}: a passing claim cannot carry NaN",
                    claim.id.code()
                );
            }
        }
        assert!(report.failures().is_empty());
    }
}
