//! End-to-end Exposure Notification protocol tests across crates:
//! device lifecycle → diagnosis-key upload → CDN export wire format →
//! download → matching → risk, including the privacy properties the
//! paper's §1 describes.

use cwa_repro::exposure::export::TemporaryExposureKeyExport;
use cwa_repro::exposure::time::{EnIntervalNumber, TEK_ROLLING_PERIOD};
use cwa_repro::exposure::{BleAdvertisement, Device};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const DAY: u32 = TEK_ROLLING_PERIOD;

/// A 30-person office where one person is infectious: everyone who sat
/// nearby gets flagged, nobody else does, and everything travels through
/// the real export wire format.
#[test]
fn office_outbreak_end_to_end() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut devices: Vec<Device> = (0..30).map(Device::new).collect();
    let day0 = EnIntervalNumber(18_000 * DAY);

    // Day 0, core hours: device 0 is infectious. Devices 1–9 sit close
    // (25 dB), devices 10–19 far (80 dB), devices 20–29 absent.
    for interval in 0..6u32 {
        let t = day0.advance(54 + interval);
        for d in devices.iter_mut() {
            d.roll_key_if_needed(&mut rng, t);
        }
        let adv = devices[0].advertise(t);
        let payload = adv.encode_full();
        let received = BleAdvertisement::decode(&payload).expect("valid BLE payload");
        for (i, d) in devices.iter_mut().enumerate() {
            match i {
                1..=9 => d.observe(&received, t, 25, 10),
                10..=19 => d.observe(&received, t, 80, 10),
                _ => {}
            }
        }
    }

    // Day 2: device 0 tests positive, uploads via the real file format.
    let day2 = EnIntervalNumber(day0.0 + 2 * DAY);
    for d in devices.iter_mut() {
        d.roll_key_if_needed(&mut rng, day2);
        d.expire(day2);
    }
    let keys = devices[0].upload_diagnosis_keys(day2, 6);
    assert!(!keys.is_empty());
    let export = TemporaryExposureKeyExport::new_de(0, 86_400, keys);
    let wire = export.encode();
    let downloaded = TemporaryExposureKeyExport::decode(&wire).expect("round-trip");

    let mut flagged = Vec::new();
    for (i, d) in devices.iter().enumerate().skip(1) {
        let matches = d.check_exposure(&downloaded.keys, day2);
        let risk = matches.iter().map(|m| m.risk_score.0).max().unwrap_or(0);
        if risk > 0 {
            flagged.push(i);
        }
    }
    assert_eq!(
        flagged,
        (1..=9).collect::<Vec<_>>(),
        "exactly the close contacts flagged"
    );
}

/// Privacy: an eavesdropper recording all broadcasts cannot link a
/// device across intervals, but the owner of the diagnosis keys can
/// retroactively match.
#[test]
fn eavesdropper_cannot_link_but_matcher_can() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut phone = Device::new(1);
    let day0 = EnIntervalNumber(18_100 * DAY);
    phone.roll_key_if_needed(&mut rng, day0);

    // 144 broadcasts of one day: all distinct, no common structure.
    let rpis: Vec<[u8; 16]> = (0..DAY)
        .map(|i| phone.advertise(day0.advance(i)).rpi.0)
        .collect();
    let distinct: std::collections::HashSet<_> = rpis.iter().collect();
    assert_eq!(distinct.len(), rpis.len());

    // Byte-position frequency looks uniform-ish: no stable byte.
    for pos in 0..16 {
        let values: std::collections::HashSet<u8> = rpis.iter().map(|r| r[pos]).collect();
        assert!(
            values.len() > 64,
            "byte {pos} takes {} values over 144 RPIs",
            values.len()
        );
    }

    // Yet the published key re-derives every one of them.
    let day1 = EnIntervalNumber(day0.0 + DAY);
    phone.roll_key_if_needed(&mut rng, day1);
    let keys = phone.upload_diagnosis_keys(day1, 5);
    let derived: std::collections::HashSet<[u8; 16]> = keys
        .iter()
        .flat_map(|k| k.tek.all_rpis())
        .map(|r| r.0)
        .collect();
    assert!(rpis.iter().all(|r| derived.contains(r)));
}

/// Retention: encounters and keys older than 14 days disappear, so an
/// upload never discloses more than the retention window.
#[test]
fn fourteen_day_retention_bounds_disclosure() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut phone = Device::new(1);
    for day in 0..30u32 {
        let t = EnIntervalNumber((18_200 + day) * DAY);
        phone.roll_key_if_needed(&mut rng, t);
        phone.expire(t);
    }
    let now = EnIntervalNumber((18_200 + 30) * DAY);
    phone.roll_key_if_needed(&mut rng, now);
    let keys = phone.upload_diagnosis_keys(now, 5);
    assert!(keys.len() <= 15, "disclosed {} keys", keys.len());
    for k in &keys {
        assert!(
            now.0 - k.tek.rolling_start_interval_number <= 15 * DAY,
            "key older than retention window disclosed"
        );
    }
}

/// The export file size drives the paper's measured download flows; it
/// must scale like the real format (~28 bytes/key + header).
#[test]
fn export_sizes_match_expected_wire_overhead() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut sizes = Vec::new();
    for n in [0usize, 1, 10, 100, 1000] {
        let keys: Vec<_> = (0..n)
            .map(|_| {
                let tek = cwa_repro::exposure::TemporaryExposureKey::generate(
                    &mut rng,
                    EnIntervalNumber(18_300 * DAY),
                );
                cwa_repro::exposure::DiagnosisKey::new(tek, 4)
            })
            .collect();
        let export = TemporaryExposureKeyExport::new_de(0, 86_400, keys);
        sizes.push(export.encoded_len());
    }
    assert!(sizes.windows(2).all(|w| w[1] > w[0]));
    let per_key = (sizes[4] - sizes[3]) as f64 / 900.0;
    assert!(
        (24.0..36.0).contains(&per_key),
        "marginal key cost {per_key} bytes"
    );
}
