//! Merge correctness for the sharded pipeline: for a realistic record
//! stream and *any* split into `k` parts, merging the per-part partial
//! accumulators with `absorb` must equal the single-pass accumulator —
//! for all four analysis consumers plus the stream counters. Together
//! with absorbing an always-empty part this exercises associativity and
//! identity of the merge, which is exactly what `Study::run_sharded`
//! relies on.

use std::collections::HashMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use cwa_repro::analysis::geoloc::{GeoDayAccumulator, GeolocationPipeline, IspInfo};
use cwa_repro::analysis::outbreak::OutbreakAccumulator;
use cwa_repro::analysis::persistence::PersistenceAnalysis;
use cwa_repro::analysis::stream::StreamCounts;
use cwa_repro::analysis::timeseries::HourlySeries;
use cwa_repro::netflow::FlowSink;
use cwa_repro::simnet::{SimConfig, SimOutput, Simulation};

/// One shared small simulation: a realistic anonymized record stream
/// plus the side tables the geo/outbreak consumers need.
fn world() -> &'static SimOutput {
    static WORLD: OnceLock<SimOutput> = OnceLock::new();
    WORLD.get_or_init(|| {
        let config = SimConfig {
            scale: 0.001,
            ..SimConfig::test_small()
        };
        Simulation::new(config).run()
    })
}

fn isp_info_table(sim: &SimOutput) -> HashMap<u32, IspInfo> {
    sim.isp_table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect()
}

/// Deterministic per-index part assignment (splitmix64 finalizer).
fn part_of(seed: u64, index: usize, parts: usize) -> usize {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % parts
}

/// One full consumer set, as `Study::run_sharded` builds per shard.
struct Consumers<'a> {
    series: HourlySeries,
    geo: GeoDayAccumulator<'a>,
    persistence: PersistenceAnalysis,
    outbreak: OutbreakAccumulator<'a, Box<dyn Fn(std::net::Ipv4Addr) -> Option<u8> + 'a>>,
    counts: StreamCounts,
}

fn consumers<'a>(
    sim: &'a SimOutput,
    pipeline: &'a GeolocationPipeline<'a>,
    isp_table: &'a HashMap<u32, IspInfo>,
) -> Consumers<'a> {
    let days = sim.config.days;
    let hours = days * 24;
    let prefix_len = sim.config.plan.prefix_len;
    let isp_of: Box<dyn Fn(std::net::Ipv4Addr) -> Option<u8>> = Box::new(move |client| {
        let net = cwa_repro::geo::geodb::mask(client, prefix_len);
        isp_table.get(&net).map(|e| e.isp)
    });
    Consumers {
        series: HourlySeries::new(hours),
        geo: GeoDayAccumulator::new(pipeline, days.min(11)),
        persistence: PersistenceAnalysis::new(20, days),
        outbreak: OutbreakAccumulator::new(&sim.germany, pipeline, isp_of, days),
        counts: StreamCounts::zeroed(&["timeseries", "geoloc", "persistence", "outbreak"]),
    }
}

impl Consumers<'_> {
    fn observe(&mut self, rec: &cwa_repro::netflow::FlowRecord) {
        self.counts.records_in += 1;
        self.counts.records_matched += 1;
        self.series.observe(rec);
        self.geo.observe(rec);
        self.persistence.observe(rec);
        self.outbreak.observe(rec);
        for (_, n) in &mut self.counts.consumers {
            *n += 1;
        }
    }

    fn finish(&mut self) {
        FlowSink::finish(&mut self.series);
        FlowSink::finish(&mut self.geo);
        FlowSink::finish(&mut self.persistence);
        FlowSink::finish(&mut self.outbreak);
    }

    fn absorb(&mut self, other: &Consumers<'_>) {
        self.series.absorb(&other.series);
        self.geo.absorb(&other.geo);
        self.persistence.absorb(&other.persistence);
        self.outbreak.absorb(&other.outbreak);
        self.counts.absorb(&other.counts);
    }
}

/// Order-independent persistence summary: the per-prefix presence
/// triples (the underlying map iterates in arbitrary order).
fn persistence_summary(p: &PersistenceAnalysis) -> Vec<(u32, u32, u32)> {
    let mut v: Vec<(u32, u32, u32)> = p
        .presences()
        .iter()
        .map(|pr| (pr.first_day, pr.last_day, pr.days_observed))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    // Each case replays the whole record pool k+1 times; keep the case
    // count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// k-way split + merge == single pass, for any assignment of
    /// records to parts (including parts that stay empty).
    #[test]
    fn merged_partials_equal_single_pass(k in 1usize..6, seed: u64) {
        let sim = world();
        let isp_table = isp_info_table(sim);
        let pipeline = GeolocationPipeline::new(
            &sim.germany,
            &sim.geodb,
            &isp_table,
            sim.config.plan.prefix_len,
        );
        prop_assume!(!sim.records.is_empty());

        // Single pass over the whole stream, in order.
        let mut single = consumers(sim, &pipeline, &isp_table);
        for rec in &sim.records {
            single.observe(rec);
        }
        single.finish();

        // The same stream split across k parts, each observing only its
        // own records (in stream order), plus one part that stays empty
        // — merging it must be the identity.
        let mut parts: Vec<Consumers> = (0..k + 1)
            .map(|_| consumers(sim, &pipeline, &isp_table))
            .collect();
        for (i, rec) in sim.records.iter().enumerate() {
            parts[part_of(seed, i, k)].observe(rec);
        }
        for part in &mut parts {
            part.finish();
        }
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.absorb(part);
        }

        // Time series: element-wise equality.
        prop_assert_eq!(&merged.series, &single.series);
        // Geolocation: identical per-district attribution for both the
        // 10-day and the day-1 windows.
        let days = sim.config.days;
        for (from, to) in [(1, days.min(11)), (1, 2)] {
            let m = merged.geo.result(from, to);
            let s = single.geo.result(from, to);
            prop_assert_eq!(&m.district_flows, &s.district_flows);
            prop_assert_eq!(&m.attribution_counts, &s.attribution_counts);
        }
        // Persistence: same prefix population and presence bitsets.
        prop_assert_eq!(merged.persistence.prefix_count(), single.persistence.prefix_count());
        prop_assert_eq!(
            persistence_summary(&merged.persistence),
            persistence_summary(&single.persistence)
        );
        let mq = merged.persistence.fraction_quantile(0.5);
        let sq = single.persistence.fraction_quantile(0.5);
        prop_assert!(mq == sq || (mq.is_nan() && sq.is_nan()));
        // Outbreak: identical district, state, and Berlin-ISP tables.
        let m = merged.outbreak.into_analysis();
        let s = single.outbreak.into_analysis();
        prop_assert_eq!(&m.district_flows, &s.district_flows);
        prop_assert_eq!(&m.state_flows, &s.state_flows);
        prop_assert_eq!(&m.berlin_isp_flows, &s.berlin_isp_flows);
        // Stream counters: exact totals, consumer by consumer.
        prop_assert_eq!(&merged.counts, &single.counts);
    }
}
