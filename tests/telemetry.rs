//! Live telemetry integration: the heartbeat sampler + scrape server
//! attached to a real study run must (a) answer every endpoint with a
//! valid response *while the run is in flight*, with `/progress`
//! reporting nonzero per-shard throughput and a finite ETA, (b) stream
//! an append-valid `metrics.jsonl`, and (c) never perturb the study
//! output — serve on/off reports stay bit-identical after
//! `strip_volatile()` across the serial and sharded drivers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cwa_repro::core::{Study, StudyConfig};
use cwa_repro::obs::{
    Heartbeat, HeartbeatConfig, LiveSnapshot, Registry, TelemetryServer, TelemetryState,
};

/// Minimal HTTP/1.0 GET against the scrape server; returns
/// (status, content-type, body).
fn get_full(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let content_type = head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Type: "))
        .expect("Content-Type header present")
        .to_string();
    (status, content_type, body.to_string())
}

/// Minimal HTTP/1.0 GET against the scrape server; returns (status, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let (status, _content_type, body) = get_full(addr, path);
    (status, body)
}

fn json_f64(v: &serde_json::Value, key: &str) -> Option<f64> {
    match v.get(key)? {
        serde_json::Value::Num(n) => Some(n.as_f64()),
        _ => None,
    }
}

/// Drive a 2-shard study with the full telemetry stack attached and
/// scrape all four endpoints concurrently mid-run.
#[test]
fn live_endpoints_answer_during_sharded_run() {
    let registry = Arc::new(Registry::new());
    let dir = std::env::temp_dir();
    let jsonl = dir.join(format!("cwa-telemetry-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&jsonl);

    let heartbeat = Heartbeat::start(
        Arc::clone(&registry),
        HeartbeatConfig {
            interval: Duration::from_millis(10),
            capacity: 512,
            jsonl: Some(jsonl.clone()),
        },
    )
    .expect("heartbeat starts");
    let server = TelemetryServer::serve(
        "127.0.0.1:0",
        TelemetryState {
            registry: Arc::clone(&registry),
            ring: heartbeat.ring(),
            stall_heartbeats: 50,
            live: None,
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    // The run is long enough (~seconds at scale 0.02) that a polling
    // loop on this thread reliably observes the "running" state.
    let study_registry = Arc::clone(&registry);
    let run = thread::spawn(move || {
        Study::new(StudyConfig::at_scale(0.02))
            .with_metrics(study_registry)
            .run_sharded(2)
            .expect("sharded study succeeds")
    });

    let mut saw_midrun_rates = false;
    let mut saw_finite_eta = false;
    let mut saw_all_endpoints_midrun = false;
    while !run.is_finished() {
        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200, "/progress answers while running");
        let v: serde_json::Value =
            serde_json::from_str(&body).expect("/progress body is valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("cwa-progress/v1")
        );
        let running = v.get("state").and_then(|s| s.as_str()) == Some("running");
        let shards = v.get("shards").and_then(|s| s.as_array()).unwrap_or(&[]);
        if running && shards.len() == 2 {
            let all_rates_nonzero = shards
                .iter()
                .all(|s| json_f64(s, "records_per_s").is_some_and(|r| r > 0.0));
            if all_rates_nonzero {
                saw_midrun_rates = true;
            }
            if json_f64(&v, "eta_s").is_some_and(f64::is_finite) {
                saw_finite_eta = true;
            }
            if !saw_all_endpoints_midrun {
                // All four endpoints answer concurrently mid-run.
                let handles: Vec<_> = ["/metrics", "/metrics.json", "/progress", "/healthz"]
                    .into_iter()
                    .map(|path| thread::spawn(move || get(addr, path)))
                    .collect();
                let mut ok = true;
                for (path, handle) in ["/metrics", "/metrics.json", "/progress", "/healthz"]
                    .iter()
                    .zip(handles)
                {
                    let (status, body) = handle.join().expect("scrape thread");
                    ok &= status == 200 && !body.is_empty();
                    match *path {
                        "/metrics" => ok &= body.starts_with("# TYPE ") && body.ends_with('\n'),
                        "/metrics.json" => ok &= body.contains("\"cwa-obs/v1\""),
                        "/progress" => ok &= body.contains("\"cwa-progress/v1\""),
                        "/healthz" => ok &= body.contains("\"ready\":true"),
                        _ => unreachable!(),
                    }
                }
                saw_all_endpoints_midrun = ok;
            }
        }
        thread::sleep(Duration::from_millis(20));
    }
    let report = run.join().expect("study thread");
    assert!(report.total_records > 0);
    assert!(
        saw_midrun_rates,
        "both shards reported records/s > 0 mid-run"
    );
    assert!(saw_finite_eta, "progress reported a finite ETA mid-run");
    assert!(
        saw_all_endpoints_midrun,
        "all four endpoints answered concurrently mid-run"
    );

    // After the run the driver marks completion; /progress converges.
    registry.gauge("sim.progress.done").set(1);
    let (status, body) = get(addr, "/progress");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("done"));
    assert_eq!(json_f64(&v, "eta_s"), Some(0.0));
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"done\":true"));

    server.shutdown();
    heartbeat.stop();

    // The heartbeat streamed an append-valid metrics.jsonl: every line
    // is a standalone timestamped cwa-obs/v1 snapshot, timestamps are
    // monotone non-decreasing, and the final line reflects the end
    // state (progress marked done).
    let file = std::fs::File::open(&jsonl).expect("jsonl exists");
    let mut lines = 0u64;
    let mut last_ts = 0u64;
    let mut last_line = String::new();
    for line in BufReader::new(file).lines() {
        let line = line.expect("read jsonl line");
        let v: serde_json::Value = serde_json::from_str(&line).expect("jsonl line parses");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("cwa-obs/v1"));
        let ts = match v.get("ts_ms").expect("ts_ms present") {
            serde_json::Value::Num(n) => n.as_u64().expect("ts_ms is unsigned"),
            other => panic!("ts_ms not a number: {other:?}"),
        };
        assert!(ts >= last_ts, "timestamps are monotone");
        last_ts = ts;
        lines += 1;
        last_line = line;
    }
    assert!(lines >= 3, "heartbeat wrote multiple samples, got {lines}");
    assert!(
        last_line.contains("\"sim.progress.done\""),
        "final sample reflects the end state"
    );
    let _ = std::fs::remove_file(&jsonl);
}

/// Telemetry is observation-only: a run with the full heartbeat +
/// scrape-server stack attached produces a report bit-identical (after
/// `strip_volatile()`) to a bare run — for both the serial and the
/// sharded drivers.
#[test]
fn telemetry_never_perturbs_reports() {
    let run_with_telemetry = |sharded: bool| {
        let registry = Arc::new(Registry::new());
        let heartbeat = Heartbeat::start(
            Arc::clone(&registry),
            HeartbeatConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
                jsonl: None,
            },
        )
        .expect("heartbeat starts");
        let server = TelemetryServer::serve(
            "127.0.0.1:0",
            TelemetryState {
                registry: Arc::clone(&registry),
                ring: heartbeat.ring(),
                stall_heartbeats: 50,
                live: None,
            },
        )
        .expect("server binds");
        let study = Study::new(StudyConfig::test_small()).with_metrics(registry);
        let report = if sharded {
            study.run_sharded(2)
        } else {
            study.run()
        }
        .expect("study succeeds");
        server.shutdown();
        heartbeat.stop();
        report
    };
    let run_plain = |sharded: bool| {
        let study = Study::new(StudyConfig::test_small());
        if sharded {
            study.run_sharded(2)
        } else {
            study.run()
        }
        .expect("study succeeds")
    };

    assert_eq!(
        run_with_telemetry(false).strip_volatile(),
        run_plain(false).strip_volatile(),
        "serial: serve on == off"
    );
    assert_eq!(
        run_with_telemetry(true).strip_volatile(),
        run_plain(true).strip_volatile(),
        "sharded(2): serve on == off"
    );
}

/// Response-header and status-code semantics across the scrape server:
/// every endpoint declares the right `Content-Type`, unknown paths are
/// JSON 404s, and the live document endpoints distinguish "not a live
/// run" (404) from "live run, nothing published yet" (503).
#[test]
fn scrape_server_headers_and_live_status_semantics() {
    let serve = |live: Option<Arc<LiveSnapshot>>| {
        let registry = Arc::new(Registry::new());
        let heartbeat = Heartbeat::start(
            Arc::clone(&registry),
            HeartbeatConfig {
                interval: Duration::from_millis(50),
                capacity: 16,
                jsonl: None,
            },
        )
        .expect("heartbeat starts");
        let server = TelemetryServer::serve(
            "127.0.0.1:0",
            TelemetryState {
                registry,
                ring: heartbeat.ring(),
                stall_heartbeats: 50,
                live,
            },
        )
        .expect("server binds");
        (server, heartbeat)
    };

    // Batch run: no live mailbox attached, so the live document
    // endpoints do not exist on this server → 404, as JSON errors.
    let (server, heartbeat) = serve(None);
    let addr = server.local_addr();
    for path in [
        "/report",
        "/figures/adoption",
        "/figures/geo",
        "/figures/outbreak",
    ] {
        let (status, content_type, body) = get_full(addr, path);
        assert_eq!(status, 404, "{path} is absent on a batch run");
        assert_eq!(content_type, "application/json");
        assert!(
            body.contains("\"error\""),
            "404 body is a JSON error: {body}"
        );
    }
    // Content-Type is exact on every always-on endpoint.
    let expectations = [
        ("/", "text/plain"),
        ("/metrics", "text/plain; version=0.0.4"),
        ("/metrics.json", "application/json"),
        ("/progress", "application/json"),
        ("/healthz", "application/json"),
        ("/dashboard", "text/html; charset=utf-8"),
    ];
    for (path, want) in expectations {
        let (status, content_type, _body) = get_full(addr, path);
        assert_eq!(status, 200, "{path} answers");
        assert_eq!(content_type, want, "{path} declares its media type");
    }
    let (status, content_type, _body) = get_full(addr, "/no-such-endpoint");
    assert_eq!(status, 404);
    assert_eq!(
        content_type, "application/json",
        "unknown paths are JSON 404s"
    );
    server.shutdown();
    heartbeat.stop();

    // Live run, nothing published yet: the endpoints exist but the
    // first document has not arrived → 503 (retryable), then 200 once
    // a publication lands.
    let live = Arc::new(LiveSnapshot::new());
    let (server, heartbeat) = serve(Some(Arc::clone(&live)));
    let addr = server.local_addr();
    for path in [
        "/report",
        "/figures/adoption",
        "/figures/geo",
        "/figures/outbreak",
    ] {
        let (status, content_type, body) = get_full(addr, path);
        assert_eq!(status, 503, "{path} is pending before the first publish");
        assert_eq!(content_type, "application/json");
        assert!(
            body.contains("\"error\""),
            "503 body is a JSON error: {body}"
        );
    }
    live.publish_report("{\"schema\": \"cwa-live/v1\"}".to_string());
    let (status, content_type, body) = get_full(addr, "/report");
    assert_eq!(status, 200, "/report serves the published document");
    assert_eq!(content_type, "application/json");
    assert!(body.contains("cwa-live/v1"));
    server.shutdown();
    heartbeat.stop();
}
