//! Chunk-capacity invariance: the columnar batch size on the record
//! path is a pure performance knob. Any capacity — including the
//! degenerate 1 (per-record chunks) and a prime that never divides an
//! export hour evenly — must produce reports byte-identical to the
//! default, on every execution path. Because the capacity is not part
//! of [`StudyConfig`], the manifest's `config_hash` is covered by the
//! same byte-level comparison: tuning the batch size can never change
//! a run's identity.

use cwa_repro::core::{Study, StudyConfig};

/// Strips the volatile timings and serializes — byte-level equality is
/// the strongest statement we can make about two runs.
fn canonical_json(report: &cwa_repro::core::StudyReport) -> String {
    serde_json::to_string(&report.strip_volatile()).expect("report serializes")
}

#[test]
fn reports_are_invariant_to_chunk_capacity() {
    let config = StudyConfig::test_small();
    let baseline = Study::new(config)
        .run_streaming()
        .expect("small study produces matching flows");
    let baseline_json = canonical_json(&baseline);

    for capacity in [1usize, 7, 4096] {
        let streaming = Study::new(config)
            .with_chunk_capacity(capacity)
            .run_streaming()
            .expect("small study produces matching flows");
        assert_eq!(
            baseline_json,
            canonical_json(&streaming),
            "run_streaming(capacity {capacity}) == default capacity"
        );

        let sharded = Study::new(config)
            .with_chunk_capacity(capacity)
            .run_sharded(2)
            .expect("small study produces matching flows");
        assert_eq!(
            baseline_json,
            canonical_json(&sharded),
            "run_sharded(2, capacity {capacity}) == default capacity"
        );
    }

    // The batch path drains through the same chunked collector; the
    // worst-case capacity must leave it untouched too.
    let batch = Study::new(config)
        .with_chunk_capacity(1)
        .run()
        .expect("small study produces matching flows");
    assert_eq!(
        baseline_json,
        canonical_json(&batch),
        "run(capacity 1) == streaming default"
    );
}
