//! Streaming-pipeline equivalence: the fused single-pass
//! simulate+analyze path (`Study::run_streaming`) must produce a report
//! byte-identical to the batch path (`Study::run`) once the volatile
//! wall-clock phase timings are stripped — with metrics on or off, and
//! under both the serial and the parallel traffic driver — while never
//! materializing the full flow-record vector. The sharded path
//! (`Study::run_sharded`) must in turn match the streaming report for
//! any shard count, with per-shard memory still bounded to one
//! export-hour chunk.

use std::sync::Arc;

use cwa_repro::core::study::persistence_len_for_scale;
use cwa_repro::core::{Study, StudyConfig, StudyError};
use cwa_repro::netflow::CountingSink;
use cwa_repro::obs::Registry;
use cwa_repro::simnet::{ShardKeyMode, Simulation};

fn small_config(parallel: bool) -> StudyConfig {
    let mut config = StudyConfig::test_small();
    config.sim.parallel = parallel;
    config
}

/// Strips the volatile timings and serializes — byte-level equality is
/// the strongest statement we can make about the two paths.
fn canonical_json(report: &cwa_repro::core::StudyReport) -> String {
    serde_json::to_string(&report.strip_volatile()).expect("report serializes")
}

#[test]
fn streaming_report_is_bit_identical_to_batch() {
    let batch = Study::new(small_config(false))
        .run()
        .expect("small study produces matching flows");
    let streaming = Study::new(small_config(false))
        .run_streaming()
        .expect("small study produces matching flows");
    assert_eq!(
        canonical_json(&batch),
        canonical_json(&streaming),
        "streaming == batch (serial, metrics off)"
    );
    // The scientific payload is populated, not just trivially equal.
    assert_eq!(streaming.claims.len(), 14);
    assert!(streaming.matching_flows > 0);
    assert!(streaming.total_records > streaming.matching_flows);
}

#[test]
fn streaming_matches_batch_with_metrics_and_parallel_driver() {
    // Metrics on, serial driver.
    let reg_batch = Arc::new(Registry::new());
    let batch = Study::new(small_config(false))
        .with_metrics(Arc::clone(&reg_batch))
        .run()
        .expect("small study produces matching flows");
    let reg_stream = Arc::new(Registry::new());
    let streaming = Study::new(small_config(false))
        .with_metrics(Arc::clone(&reg_stream))
        .run_streaming()
        .expect("small study produces matching flows");
    assert_eq!(
        canonical_json(&batch),
        canonical_json(&streaming),
        "streaming == batch (serial, metrics on)"
    );

    // Parallel driver: normalize the driver-choice fields exactly as
    // the metrics test does — the driver is part of the config hash.
    let parallel = Study::new(small_config(true))
        .run_streaming()
        .expect("small study produces matching flows");
    let mut parallel_stripped = parallel.strip_volatile();
    assert!(parallel_stripped.manifest.parallel);
    parallel_stripped.manifest.parallel = false;
    parallel_stripped.config.sim.parallel = false;
    parallel_stripped.manifest.config_hash = batch.manifest.config_hash.clone();
    assert_eq!(
        batch.strip_volatile(),
        parallel_stripped,
        "streaming parallel == batch serial"
    );

    // The streaming registry carries the per-consumer stream counters …
    let json = reg_stream.to_json_pretty();
    for key in [
        "\"analysis.stream.records_in\"",
        "\"analysis.stream.records_matched\"",
        "\"analysis.stream.timeseries.records\"",
        "\"analysis.stream.geoloc.records\"",
        "\"analysis.stream.persistence.records\"",
        "\"analysis.stream.outbreak.records\"",
        "\"phase.simulate_analyze\"",
    ] {
        assert!(json.contains(key), "streaming snapshot missing {key}");
    }
    // … that are live and consistent with the report and with the
    // batch pipeline's counter vocabulary.
    assert_eq!(
        reg_stream.counter("analysis.stream.records_in").get(),
        streaming.total_records
    );
    assert_eq!(
        reg_stream.counter("analysis.stream.records_matched").get(),
        streaming.matching_flows
    );
    assert_eq!(
        reg_stream.counter("analysis.stream.geoloc.records").get(),
        streaming.matching_flows,
        "every consumer sees every matching record exactly once"
    );
    assert_eq!(
        reg_stream.counter("analysis.filter.records_matched").get(),
        reg_batch.counter("analysis.filter.records_matched").get(),
        "legacy counter parity between the two paths"
    );
}

#[test]
fn chunked_emission_bounds_resident_records() {
    let config = StudyConfig::test_small();
    let prepared = Simulation::new(config.sim).prepare();
    let mut sink = CountingSink::default();
    let (_truth, stats) = prepared.run_traffic(&mut sink);
    assert!(sink.finished, "producer closes the stream");
    assert!(sink.records > 0);
    assert!(
        stats.peak_resident_records < sink.records,
        "peak resident ({}) must stay below the total emitted ({}) — \
         only one export hour is buffered at a time",
        stats.peak_resident_records,
        sink.records
    );
}

#[test]
fn sharded_report_matches_streaming_for_all_shard_counts() {
    let baseline = Study::new(small_config(false))
        .run_streaming()
        .expect("small study produces matching flows");
    let baseline_json = canonical_json(&baseline);

    for shards in [1usize, 2, 4] {
        for metrics in [false, true] {
            let registry = metrics.then(|| Arc::new(Registry::new()));
            let mut study = Study::new(small_config(false));
            if let Some(registry) = &registry {
                study = study.with_metrics(Arc::clone(registry));
            }
            let sharded = study
                .run_sharded(shards)
                .expect("small study produces matching flows");
            assert_eq!(
                baseline_json,
                canonical_json(&sharded),
                "run_sharded({shards}) == run_streaming (metrics {})",
                if metrics { "on" } else { "off" },
            );

            // The sharded run's registry carries per-shard throughput
            // counters, channel-depth gauges, and the merge timer on
            // top of the shared streaming vocabulary.
            if let Some(registry) = &registry {
                let json = registry.to_json_pretty();
                for i in 0..shards {
                    for stem in ["records", "channel_depth", "peak_resident_records"] {
                        let key = format!("\"sim.shard.{i:02}.{stem}\"");
                        assert!(json.contains(&key), "sharded snapshot missing {key}");
                    }
                }
                for key in [
                    "\"phase.merge\"",
                    "\"phase.simulate_analyze\"",
                    "\"analysis.stream.records_in\"",
                    "\"analysis.stream.records_matched\"",
                ] {
                    assert!(json.contains(key), "sharded snapshot missing {key}");
                }
                assert_eq!(
                    registry.counter("analysis.stream.records_in").get(),
                    sharded.total_records
                );
                let per_shard: u64 = (0..shards)
                    .map(|i| registry.counter(&format!("sim.shard.{i:02}.records")).get())
                    .sum();
                assert_eq!(
                    per_shard, sharded.total_records,
                    "shard throughput counters partition the record stream"
                );
            }
        }
    }
}

#[test]
fn sharded_emission_bounds_resident_records_per_shard() {
    let config = StudyConfig::test_small();
    let prepared = Simulation::new(config.sim).prepare();

    // Unsharded baseline: total record count and fleet-wide peak.
    let mut baseline = CountingSink::default();
    let (_truth, fleet_stats) = prepared.run_traffic(&mut baseline);

    let (_truth, results) =
        prepared.run_traffic_sharded(ShardKeyMode::Common, vec![CountingSink::default(); 2]);
    assert_eq!(results.len(), 2);
    let mut total = 0u64;
    for (i, (sink, stats)) in results.iter().enumerate() {
        assert!(sink.finished, "shard {i} closes its stream");
        assert!(sink.records > 0, "shard {i} owns part of the fleet");
        assert!(
            stats.peak_resident_records < sink.records,
            "shard {i}: peak resident ({}) must stay below its total ({})",
            stats.peak_resident_records,
            sink.records
        );
        assert!(
            stats.peak_resident_records <= fleet_stats.peak_resident_records,
            "shard {i}: a shard's export-hour chunk ({}) cannot exceed \
             the fleet-wide one ({})",
            stats.peak_resident_records,
            fleet_stats.peak_resident_records
        );
        total += sink.records;
    }
    assert_eq!(
        total, baseline.records,
        "the shards partition exactly the unsharded record stream"
    );
}

/// The scale-sweep starvation edge: a scale too small for any CWA flow
/// to survive sampling must degrade into per-claim `Starved` verdicts,
/// not abort the whole report — and all three execution paths must
/// degrade identically. The old all-or-nothing abort survives only
/// behind `--strict`.
#[test]
fn starved_scale_degrades_identically_across_paths() {
    // Sparse but populated: scale 0.001 still produces matching flows
    // and a full report (this used to starve C5b / panic in the
    // outbreak median before starvation was handled at all).
    let mut sparse = StudyConfig::test_small();
    sparse.sim.scale = 0.001;
    sparse.persistence_prefix_len = persistence_len_for_scale(sparse.sim.scale);
    let report = Study::new(sparse)
        .run()
        .expect("scale 0.001 still yields matching flows");
    assert!(report.matching_flows > 0);

    // Fully starved: nothing survives 1-in-N sampling. The report is
    // still produced; every claim reads `starved`, none reads `fail`.
    let mut starved = StudyConfig::test_small();
    starved.sim.scale = 1e-7;
    starved.persistence_prefix_len = persistence_len_for_scale(starved.sim.scale);
    let batch = Study::new(starved)
        .run()
        .expect("starvation degrades, it does not abort");
    assert_eq!(batch.matching_flows, 0);
    // Starvation is per input cell: every flow-derived claim starves,
    // while the side-data claims (C3 adoption milestones, C7a/C7b
    // Umbrella DNS) keep their verdicts — their inputs never drained.
    let side_data = ["C3a", "C3b", "C7a", "C7b"];
    for claim in &batch.claims {
        if side_data.contains(&claim.id.code()) {
            assert!(
                !claim.verdict.is_starved(),
                "{}: side-data claims have no flow cell to starve",
                claim.id.code()
            );
        } else {
            assert!(
                claim.verdict.is_starved(),
                "{}: with zero matching flows every flow-derived cell is starved",
                claim.id.code()
            );
        }
    }
    assert!(
        batch.failures().is_empty(),
        "starvation is insufficient data, not a failed claim"
    );

    // The streaming and sharded paths degrade bit-identically.
    let streaming = Study::new(starved)
        .run_streaming()
        .expect("streaming path degrades too");
    let sharded = Study::new(starved)
        .run_sharded(2)
        .expect("sharded path degrades too");
    assert_eq!(canonical_json(&batch), canonical_json(&streaming));
    assert_eq!(canonical_json(&batch), canonical_json(&sharded));

    // Opt-in strict mode restores the old abort, on every path.
    for result in [
        Study::new(starved).strict(true).run(),
        Study::new(starved).strict(true).run_streaming(),
        Study::new(starved).strict(true).run_sharded(2),
    ] {
        match result {
            Err(StudyError::NoMatchingFlows {
                scale,
                total_records,
            }) => {
                assert_eq!(scale, 1e-7);
                assert_eq!(total_records, 0);
            }
            other => panic!("expected NoMatchingFlows under strict, got {other:?}"),
        }
    }
}

#[test]
fn invalid_shard_counts_are_rejected() {
    let config = StudyConfig::test_small();
    let routers = config.sim.vantage.routers;
    for bad in [0usize, usize::from(routers) + 1] {
        match Study::new(config).run_sharded(bad) {
            Err(StudyError::InvalidShardCount {
                requested,
                routers: r,
            }) => {
                assert_eq!(requested, bad);
                assert_eq!(r, routers);
            }
            other => panic!("expected InvalidShardCount for {bad}, got {other:?}"),
        }
    }
}
