//! Streaming-pipeline equivalence: the fused single-pass
//! simulate+analyze path (`Study::run_streaming`) must produce a report
//! byte-identical to the batch path (`Study::run`) once the volatile
//! wall-clock phase timings are stripped — with metrics on or off, and
//! under both the serial and the parallel traffic driver — while never
//! materializing the full flow-record vector.

use std::sync::Arc;

use cwa_repro::core::{Study, StudyConfig};
use cwa_repro::netflow::CountingSink;
use cwa_repro::obs::Registry;
use cwa_repro::simnet::Simulation;

fn small_config(parallel: bool) -> StudyConfig {
    let mut config = StudyConfig::test_small();
    config.sim.parallel = parallel;
    config
}

/// Strips the volatile timings and serializes — byte-level equality is
/// the strongest statement we can make about the two paths.
fn canonical_json(report: &cwa_repro::core::StudyReport) -> String {
    serde_json::to_string(&report.strip_volatile()).expect("report serializes")
}

#[test]
fn streaming_report_is_bit_identical_to_batch() {
    let batch = Study::new(small_config(false)).run();
    let streaming = Study::new(small_config(false)).run_streaming();
    assert_eq!(
        canonical_json(&batch),
        canonical_json(&streaming),
        "streaming == batch (serial, metrics off)"
    );
    // The scientific payload is populated, not just trivially equal.
    assert_eq!(streaming.claims.len(), 14);
    assert!(streaming.matching_flows > 0);
    assert!(streaming.total_records > streaming.matching_flows);
}

#[test]
fn streaming_matches_batch_with_metrics_and_parallel_driver() {
    // Metrics on, serial driver.
    let reg_batch = Arc::new(Registry::new());
    let batch = Study::new(small_config(false))
        .with_metrics(Arc::clone(&reg_batch))
        .run();
    let reg_stream = Arc::new(Registry::new());
    let streaming = Study::new(small_config(false))
        .with_metrics(Arc::clone(&reg_stream))
        .run_streaming();
    assert_eq!(
        canonical_json(&batch),
        canonical_json(&streaming),
        "streaming == batch (serial, metrics on)"
    );

    // Parallel driver: normalize the driver-choice fields exactly as
    // the metrics test does — the driver is part of the config hash.
    let parallel = Study::new(small_config(true)).run_streaming();
    let mut parallel_stripped = parallel.strip_volatile();
    assert!(parallel_stripped.manifest.parallel);
    parallel_stripped.manifest.parallel = false;
    parallel_stripped.config.sim.parallel = false;
    parallel_stripped.manifest.config_hash = batch.manifest.config_hash.clone();
    assert_eq!(
        batch.strip_volatile(),
        parallel_stripped,
        "streaming parallel == batch serial"
    );

    // The streaming registry carries the per-consumer stream counters …
    let json = reg_stream.to_json_pretty();
    for key in [
        "\"analysis.stream.records_in\"",
        "\"analysis.stream.records_matched\"",
        "\"analysis.stream.timeseries.records\"",
        "\"analysis.stream.geoloc.records\"",
        "\"analysis.stream.persistence.records\"",
        "\"analysis.stream.outbreak.records\"",
        "\"phase.simulate_analyze\"",
    ] {
        assert!(json.contains(key), "streaming snapshot missing {key}");
    }
    // … that are live and consistent with the report and with the
    // batch pipeline's counter vocabulary.
    assert_eq!(
        reg_stream.counter("analysis.stream.records_in").get(),
        streaming.total_records
    );
    assert_eq!(
        reg_stream.counter("analysis.stream.records_matched").get(),
        streaming.matching_flows
    );
    assert_eq!(
        reg_stream.counter("analysis.stream.geoloc.records").get(),
        streaming.matching_flows,
        "every consumer sees every matching record exactly once"
    );
    assert_eq!(
        reg_stream.counter("analysis.filter.records_matched").get(),
        reg_batch.counter("analysis.filter.records_matched").get(),
        "legacy counter parity between the two paths"
    );
}

#[test]
fn chunked_emission_bounds_resident_records() {
    let config = StudyConfig::test_small();
    let prepared = Simulation::new(config.sim).prepare();
    let mut sink = CountingSink::default();
    let (_truth, stats) = prepared.run_traffic(&mut sink);
    assert!(sink.finished, "producer closes the stream");
    assert!(sink.records > 0);
    assert!(
        stats.peak_resident_records < sink.records,
        "peak resident ({}) must stay below the total emitted ({}) — \
         only one export hour is buffered at a time",
        stats.peak_resident_records,
        sink.records
    );
}
