//! Observability integration: the `cwa-obs` registry wired through the
//! full sim → vantage → analysis pipeline must (a) produce a valid
//! JSON snapshot covering every pipeline stage, and (b) never perturb
//! the study output — serial and parallel reports stay bit-identical
//! with metrics enabled or disabled.

use std::sync::Arc;

use cwa_repro::core::{Study, StudyConfig};
use cwa_repro::obs::{Registry, Tracer};

fn small_config(parallel: bool) -> StudyConfig {
    let mut config = StudyConfig::test_small();
    config.sim.parallel = parallel;
    config
}

#[test]
fn metrics_snapshot_covers_pipeline_and_reports_match() {
    let reg_serial = Arc::new(Registry::new());
    let serial = Study::new(small_config(false))
        .with_metrics(Arc::clone(&reg_serial))
        .run()
        .expect("small study produces matching flows");
    let reg_parallel = Arc::new(Registry::new());
    let parallel = Study::new(small_config(true))
        .with_metrics(Arc::clone(&reg_parallel))
        .run()
        .expect("small study produces matching flows");
    let plain = Study::new(small_config(false))
        .run()
        .expect("small study produces matching flows");

    // Identical reports across {serial, parallel} × {metrics on, off}
    // once the volatile wall-clock phase timings are stripped. The
    // driver choice is itself part of the configuration (and thus the
    // config hash), so normalize those fields before comparing — the
    // scientific payload (figures, claims, counts) must be identical.
    let mut parallel_stripped = parallel.strip_volatile();
    assert!(parallel_stripped.manifest.parallel);
    parallel_stripped.manifest.parallel = false;
    parallel_stripped.config.sim.parallel = false;
    parallel_stripped.manifest.config_hash = serial.manifest.config_hash.clone();
    assert_eq!(
        serial.strip_volatile(),
        parallel_stripped,
        "parallel == serial"
    );
    assert_eq!(
        serial.strip_volatile(),
        plain.strip_volatile(),
        "metrics on == off"
    );

    // The manifest carries provenance either way.
    assert_eq!(plain.manifest.seed, plain.config.sim.seed);
    assert_eq!(plain.manifest.config_hash, serial.manifest.config_hash);
    assert!(!plain.manifest.phase_timings.is_empty());

    // The snapshot is valid JSON (parseable by the workspace parser) …
    let json = reg_serial.to_json_pretty();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("snapshot is valid JSON");
    drop(parsed);

    // … and covers every stage of the pipeline: traffic generation,
    // sampling, cache evictions, collection, anonymization, sequence
    // accounting, and each analysis stage's duration.
    for key in [
        "\"schema\"",
        "\"simnet.traffic.flow_events\"",
        "\"simnet.traffic.flow_events.day00\"",
        "\"simnet.router.00.sampled_packets\"",
        "\"simnet.router.00.unsampled_packets\"",
        "\"simnet.cache.evictions\"",
        "\"simnet.cache.packets_seen\"",
        "\"netflow.collector.records\"",
        "\"netflow.collector.anonymized_addresses\"",
        "\"netflow.collector.sequence_lost\"",
        "\"netflow.collector.decode_errors\"",
        "\"phase.simulate\"",
        "\"analysis.filter\"",
        "\"analysis.timeseries\"",
        "\"analysis.geoloc\"",
        "\"analysis.persistence\"",
        "\"analysis.outbreak\"",
        "\"analysis.filter.records_matched\"",
    ] {
        assert!(json.contains(key), "metrics snapshot missing {key}");
    }

    // The parallel driver additionally reports worker utilization.
    let parallel_json = reg_parallel.to_json();
    assert!(parallel_json.contains("\"simnet.worker.00.busy\""));
    assert!(parallel_json.contains("\"simnet.worker.00.events\""));

    // Headline counters are live and consistent with the report.
    assert!(reg_serial.counter("simnet.traffic.flow_events").get() > 0);
    assert_eq!(
        reg_serial.counter("netflow.collector.records").get(),
        serial.total_records,
        "collector counter equals the report's record count"
    );
    assert_eq!(
        reg_serial.counter("analysis.filter.records_matched").get(),
        serial.matching_flows,
    );
}

/// The flight recorder is observation-only: with a tracer attached the
/// report stays bit-identical (after `strip_volatile`) to the untraced
/// run — across the batch, streaming, and sharded drivers alike.
#[test]
fn tracer_never_perturbs_reports() {
    let traced_batch = Study::new(small_config(false))
        .with_trace(Arc::new(Tracer::new()))
        .run()
        .expect("small study produces matching flows");
    let plain_batch = Study::new(small_config(false))
        .run()
        .expect("small study produces matching flows");
    assert_eq!(
        traced_batch.strip_volatile(),
        plain_batch.strip_volatile(),
        "batch: tracer on == off"
    );

    let traced_streaming = Study::new(small_config(false))
        .with_trace(Arc::new(Tracer::new()))
        .run_streaming()
        .expect("small study produces matching flows");
    let plain_streaming = Study::new(small_config(false))
        .run_streaming()
        .expect("small study produces matching flows");
    assert_eq!(
        traced_streaming.strip_volatile(),
        plain_streaming.strip_volatile(),
        "streaming: tracer on == off"
    );

    let traced_sharded = Study::new(small_config(false))
        .with_trace(Arc::new(Tracer::new()))
        .run_sharded(2)
        .expect("small study produces matching flows");
    let plain_sharded = Study::new(small_config(false))
        .run_sharded(2)
        .expect("small study produces matching flows");
    assert_eq!(
        traced_sharded.strip_volatile(),
        plain_sharded.strip_volatile(),
        "sharded(2): tracer on == off"
    );
}

/// A sharded run's trace carries one Chrome "process" per shard with
/// the full stage vocabulary: produce and stall accounting on the
/// worker track, coalesced filter/analyze spans on the analysis track,
/// plus the study-level phase spans.
#[test]
fn sharded_trace_covers_every_stage() {
    let tracer = Arc::new(Tracer::new());
    Study::new(small_config(false))
        .with_trace(Arc::clone(&tracer))
        .run_sharded(2)
        .expect("small study produces matching flows");

    let json = tracer.to_chrome_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    assert!(
        parsed.get("traceEvents").is_some(),
        "chrome trace has a traceEvents array"
    );
    for needle in [
        // Process/thread layout: shard i is pid i+1 with feed, worker
        // and analysis tracks; the generator and study run on pid 0.
        "\"shard00\"",
        "\"shard01\"",
        "\"generator\"",
        "\"feed\"",
        "\"worker\"",
        "\"analysis\"",
        "\"study\"",
        // Worker-side stage spans and stall accounting.
        "\"produce\"",
        "\"export\"",
        "\"drain\"",
        "\"recv_idle\"",
        "\"collect.ingest\"",
        // Coalesced per-record analysis spans.
        "\"filter\"",
        "\"analyze\"",
        "\"timeseries\"",
        "\"geoloc\"",
        "\"persistence\"",
        "\"outbreak\"",
        // Study-level phases.
        "\"phase.simulate_analyze\"",
        "\"phase.merge\"",
    ] {
        assert!(json.contains(needle), "trace missing {needle}");
    }
    // Both shard processes actually emitted span events (not just
    // metadata): pid 1 and pid 2 appear as complete events.
    for pid in [1, 2] {
        let marker = format!("\"ph\":\"X\",\"pid\":{pid},");
        assert!(json.contains(&marker), "no spans for shard pid {pid}");
    }
}
