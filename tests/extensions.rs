//! Integration tests for the extension features: CSV interchange,
//! diurnal-profile extraction, biflow merging, per-ISP persistence, the
//! verification server at population scale, and commuting-coupled
//! epidemics.

use std::collections::HashMap;

use cwa_repro::analysis::filter::FlowFilter;
use cwa_repro::analysis::persistence::PersistenceAnalysis;
use cwa_repro::analysis::stats;
use cwa_repro::analysis::timeseries::HourlySeries;
use cwa_repro::analysis::zipmap::ZipAreaMap;
use cwa_repro::epidemic::ActivityModel;
use cwa_repro::geo::AccessKind;
use cwa_repro::netflow::biflow::{merge_biflows, BiflowConfig};
use cwa_repro::netflow::csvio;
use cwa_repro::simnet::{SimConfig, SimOutput, Simulation};
use std::sync::OnceLock;

fn sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| {
        Simulation::new(SimConfig {
            scale: 0.01,
            ..SimConfig::test_small()
        })
        .run()
    })
}

/// Records exported to CSV and re-imported must drive the pipeline to
/// identical results — the interchange path for external data.
#[test]
fn csv_interchange_preserves_analysis() {
    let out = sim();
    let csv = csvio::to_csv(&out.records);
    let back = csvio::from_csv(&csv).expect("own CSV parses");
    assert_eq!(back, out.records);

    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    assert_eq!(filter.apply(&back).len(), filter.apply(&out.records).len());
}

/// The measured diurnal profile must correlate with the behavioural
/// model that generated the traffic — shape survives sampling, caching
/// and anonymization.
#[test]
fn measured_diurnal_profile_matches_behaviour() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let series = HourlySeries::from_records(matching.iter(), out.config.days * 24);

    // Settled post-release days only.
    let measured = series.diurnal_profile(3, 11);
    let expected: Vec<f64> = (0..24).map(ActivityModel::diurnal).collect();
    let corr = stats::pearson(&measured, &expected);
    assert!(corr > 0.85, "diurnal correlation {corr}: {measured:?}");
}

/// Biflow merging on the sampled records: under 1:1000 sampling almost
/// no connection has both directions observed.
#[test]
fn sampling_leaves_biflows_one_sided() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    // Use *all* CWA-related records (both directions): match either side.
    let cwa_records: Vec<_> = out
        .records
        .iter()
        .filter(|r| out.cdn.is_service_addr(r.key.src_ip) || out.cdn.is_service_addr(r.key.dst_ip))
        .copied()
        .collect();
    let biflows = merge_biflows(&cwa_records, &BiflowConfig::default());
    let complete = biflows.iter().filter(|b| b.is_complete()).count() as f64;
    let rate = complete / biflows.len() as f64;
    assert!(
        rate < 0.05,
        "{:.2}% of biflows complete under heavy sampling",
        rate * 100.0
    );
    // And the observed direction is dominated by the downstream side.
    let down = biflows.iter().filter(|b| b.reverse.is_some()).count() as f64;
    assert!(down / biflows.len() as f64 > 0.5, "downstream dominates");
    let _ = filter;
}

/// Prefix persistence split by ISP access kind: static-lease ISPs pin
/// subscribers to the low part of each prefix, concentrating traffic on
/// fewer /24s, which are then re-observed on more days than the daily
/// rotating DSL pools.
#[test]
fn persistence_differs_by_isp_access_kind() {
    // Needs the realistic address plan: /22 routing prefixes with ~1024
    // subscriber slots, so static-lease ISPs concentrate their customers
    // on the low /24s while daily-reconnect DSL pools rotate over the
    // whole prefix — thinning each /24 and lowering its persistence.
    let out = Simulation::new(SimConfig {
        scale: 0.01,
        ..SimConfig::default()
    })
    .run();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);

    let mut by_access: HashMap<AccessKind, Vec<cwa_repro::netflow::FlowRecord>> = HashMap::new();
    for rec in &matching {
        let net = cwa_repro::geo::geodb::mask(rec.key.dst_ip, out.config.plan.prefix_len);
        if let Some(entry) = out.isp_table.get(&net) {
            let access = out.plan.isp(entry.isp).access;
            by_access.entry(access).or_default().push(*rec);
        }
    }

    // Mean presence fraction over multi-day prefixes (the median is
    // degenerate at this scale: sparse one-off prefixes sit at 1.0).
    let mean_for = |records: &[cwa_repro::netflow::FlowRecord]| -> f64 {
        let mut p = PersistenceAnalysis::new(24, out.config.days);
        p.ingest(records.iter());
        let fr: Vec<f64> = p
            .presences()
            .iter()
            .filter(|x| x.last_day > x.first_day + 1)
            .map(|x| x.fraction())
            .collect();
        fr.iter().sum::<f64>() / fr.len() as f64
    };
    let static_mean = mean_for(&by_access[&AccessKind::StaticLease]);
    let dynamic_mean = mean_for(&by_access[&AccessKind::Dynamic24h]);
    assert!(
        static_mean > dynamic_mean * 1.02,
        "static {static_mean} vs dynamic {dynamic_mean}"
    );
}

/// ZIP-area roll-up of the district map: near-total coverage, metros on
/// top — the actual spatial unit of Figure 3.
#[test]
fn zip_area_map_covers_germany() {
    use cwa_repro::analysis::geoloc::{GeolocationPipeline, IspInfo};
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let isp_table: HashMap<u32, IspInfo> = out
        .isp_table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect();
    let pipeline = GeolocationPipeline::new(
        &out.germany,
        &out.geodb,
        &isp_table,
        out.config.plan.prefix_len,
    );
    let geo = pipeline.run(&out.records, &filter, 1, 11);
    let map = ZipAreaMap::build(&out.germany, &geo);
    assert!(map.coverage() > 0.9, "ZIP-area coverage {}", map.coverage());
    assert!((map.areas[0].intensity - 1.0).abs() < 1e-12);
    // Berlin's zone tops the map at this adoption skew.
    assert_eq!(
        map.areas[0].zip, "10",
        "Berlin's ZIP zone leads: {:?}",
        map.areas[0]
    );
}

/// The verification server gates uploads at population scale: with a
/// capacity of N teleTANs/day, no more than N uploads can complete.
#[test]
fn verification_capacity_bounds_uploads() {
    use cwa_repro::exposure::verification::{VerificationError, VerificationServer};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let mut server = VerificationServer::new(&mut rng, 30);

    let mut completed = 0u32;
    let mut rejected = 0u32;
    for case in 0..100u64 {
        let now = 1000 + case * 60; // all within one day
        match server.mint_teletan(&mut rng, now) {
            Ok(tele) => {
                let token = server.register(&mut rng, &tele, now + 5).unwrap();
                let tan = server
                    .request_upload_tan(&mut rng, &token, now + 10)
                    .unwrap();
                server.redeem_upload_tan(&tan, now + 15).unwrap();
                completed += 1;
            }
            Err(VerificationError::RateLimited) => rejected += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!(completed, 30);
    assert_eq!(rejected, 70);
}

/// Gini concentration of the district map: adoption skews urban, so the
/// distribution is concentrated but far from degenerate.
#[test]
fn district_traffic_concentration() {
    use cwa_repro::analysis::geoloc::{GeolocationPipeline, IspInfo};
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let isp_table: HashMap<u32, IspInfo> = out
        .isp_table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect();
    let pipeline = GeolocationPipeline::new(
        &out.germany,
        &out.geodb,
        &isp_table,
        out.config.plan.prefix_len,
    );
    let geo = pipeline.run(&out.records, &filter, 1, 11);
    let g = stats::gini(&geo.district_flows);
    // Population itself is unevenly distributed; traffic follows it.
    assert!((0.3..0.8).contains(&g), "Gini {g}");
}
