//! End-to-end reproduction test: one moderate-scale study run must
//! reproduce **every** figure shape and claim band of the paper.
//!
//! This is the repository's headline test. It simulates ~2 % of Germany
//! (enough density for every claim to stabilize), runs the paper's
//! analysis pipeline on the anonymized sampled records, and asserts the
//! full claim table.

use cwa_core::{Study, StudyConfig};
use cwa_repro::core::report::StudyReport;
use std::sync::OnceLock;

/// One shared run for all assertions in this file (the simulation is the
/// expensive part; the assertions are cheap).
fn report() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        Study::new(StudyConfig::at_scale(0.02))
            .run()
            .expect("study failed")
    })
}

#[test]
fn all_claims_pass() {
    let r = report();
    let failures: Vec<String> = r
        .failures()
        .iter()
        .map(|c| {
            format!(
                "{}: measured {:.4}, band {:?} — {}",
                c.id.code(),
                c.measured,
                c.band,
                c.detail
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "claims outside bands:\n{}",
        failures.join("\n")
    );
}

#[test]
fn figure2_shape() {
    let r = report();
    let flows = &r.figure2.flows_normed;
    assert_eq!(flows.len(), 264, "one point per hour of June 15–25");

    // (a) Pre-release day is the low plateau: its mean is well below the
    // post-release mean.
    let day0_mean: f64 = flows[..24].iter().sum::<f64>() / 24.0;
    let day2_mean: f64 = flows[48..72].iter().sum::<f64>() / 24.0;
    assert!(
        day2_mean > day0_mean * 3.0,
        "release lift: day0 {day0_mean:.2}, day2 {day2_mean:.2}"
    );

    // (b) The diurnal pattern exists after release: within a settled day,
    // the evening peak is a multiple of the night trough.
    let day5 = &flows[5 * 24..6 * 24];
    let trough = day5.iter().cloned().fold(f64::INFINITY, f64::min);
    let peak = day5.iter().cloned().fold(0.0, f64::max);
    assert!(
        peak > trough * 2.0,
        "diurnal: trough {trough:.2}, peak {peak:.2}"
    );

    // (c) The June-23 news re-surge: day 8 exceeds day 7.
    let day = |d: usize| flows[d * 24..(d + 1) * 24].iter().sum::<f64>();
    assert!(
        day(8) > day(7) * 1.1,
        "June-23 re-surge: day7 {:.1}, day8 {:.1}",
        day(7),
        day(8)
    );

    // (d) The download overlay starts June 17 and is monotone.
    assert!(r.figure2.downloads_millions[47].is_none());
    assert!(r.figure2.downloads_millions[48].is_some());
    let dl: Vec<f64> = r
        .figure2
        .downloads_millions
        .iter()
        .flatten()
        .copied()
        .collect();
    assert!(dl.windows(2).all(|w| w[1] >= w[0]), "downloads monotone");
    assert!(
        *dl.last().unwrap() > 10.0,
        "double-digit millions by June 25"
    );
}

#[test]
fn figure3_shape() {
    let r = report();
    // Near-total district coverage …
    assert!(r.figure3.coverage > 0.95, "coverage {}", r.figure3.coverage);
    // … with the metros on top (population + urban affinity).
    let top5: Vec<&str> = r
        .figure3
        .rows
        .iter()
        .take(5)
        .map(|x| x.state.as_str())
        .collect();
    assert!(
        r.figure3.rows[0].name == "Berlin",
        "Berlin leads the intensity map, got {:?}",
        r.figure3.rows[0]
    );
    let _ = top5;
    // Intensities normalized to [0, 1] with exactly one 1.0.
    assert!((r.figure3.rows[0].intensity - 1.0).abs() < 1e-12);
    assert!(r
        .figure3
        .rows
        .iter()
        .all(|x| (0.0..=1.0).contains(&x.intensity)));
}

#[test]
fn measured_values_near_paper_values() {
    // Tighter-than-band sanity on the headline numbers at this scale.
    let r = report();
    assert!(
        (0.5..0.95).contains(&r.persistence_median),
        "persistence median {}",
        r.persistence_median
    );
    assert!(r.persistence_p75 >= r.persistence_median);
    assert!(
        (0.12..0.25).contains(&r.ground_truth_share),
        "gt share {}",
        r.ground_truth_share
    );
    assert!(r.release_jump > 3.0, "release jump {}", r.release_jump);
    // The API rank improves (falls) over the window.
    let first_half_best = *r.api_rank_by_day[..5].iter().min().unwrap();
    let second_half_best = *r.api_rank_by_day[6..].iter().min().unwrap();
    assert!(second_half_best < first_half_best);
}

#[test]
fn report_serializes_and_renders() {
    let r = report();
    let json = r.to_json();
    assert!(json.len() > 10_000, "substantive JSON report");
    let text = r.render_text();
    assert!(text.contains("C1"));
    assert!(text.contains("Figure 3"));
    let md = r.to_markdown_rows();
    assert_eq!(md.lines().count(), r.claims.len());
}
