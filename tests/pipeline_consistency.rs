//! Cross-crate consistency: the *measured* pipeline outputs must agree
//! with the simulator's ground truth within the distortions the
//! measurement apparatus is supposed to introduce (sampling, cache
//! splitting, anonymization) — and with nothing else.

use std::collections::HashSet;

use cwa_analysis::filter::FlowFilter;
use cwa_analysis::timeseries::HourlySeries;
use cwa_repro::simnet::sim::ScenarioKind;
use cwa_repro::simnet::{SimConfig, SimOutput, Simulation};
use std::sync::OnceLock;

fn sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| {
        Simulation::new(SimConfig {
            scale: 0.01,
            ..SimConfig::test_small()
        })
        .run()
    })
}

#[test]
fn observed_flow_count_matches_sampling_expectation() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply(&out.records);

    // Expectation: each true downstream CWA flow with ~16–24 median
    // packets survives 1-in-1000 packet sampling with probability
    // ≈ packets/1000 (few-percent regime). Observed/true must sit in
    // that regime — far below 1, far above 0.
    let true_flows = (out.truth.api_flows + out.truth.web_flows) as f64;
    let observed = matching.len() as f64;
    let rate = observed / true_flows;
    assert!(
        (0.005..0.10).contains(&rate),
        "observation rate {rate:.4} ({observed} of {true_flows})"
    );
}

#[test]
fn observed_records_show_few_packets() {
    // §2: "only observing few packets for most flows".
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply(&out.records);
    let single_packet = matching.iter().filter(|r| r.packets <= 2).count() as f64;
    assert!(
        single_packet / matching.len() as f64 > 0.8,
        "{}        of {} records have ≤2 packets",
        single_packet,
        matching.len()
    );
}

#[test]
fn hourly_shape_tracks_ground_truth() {
    // The *sampled* hourly series must correlate strongly with the true
    // generated per-hour flow counts (sampling is unbiased).
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let hours = out.config.days * 24;
    let series = HourlySeries::from_records(matching.iter(), hours);

    let truth = &out.truth.cwa_flows_by_hour;
    let measured = &series.flows;
    let corr = pearson(
        &truth.iter().map(|&x| x as f64).collect::<Vec<_>>(),
        &measured.iter().map(|&x| x as f64).collect::<Vec<_>>(),
    );
    assert!(corr > 0.95, "hourly correlation {corr}");
}

#[test]
fn anonymization_hides_but_preserves_structure() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply(&out.records);

    // Hidden: observed client addresses do not resolve in the raw plan.
    let leaked = matching
        .iter()
        .filter(|r| out.plan.lookup(r.key.dst_ip).is_some())
        .count() as f64;
    let leak_rate = leaked / matching.len() as f64;
    assert!(
        leak_rate < 0.05,
        "{leaked} of {} anonymized clients resolve in the raw plan",
        matching.len()
    );

    // Preserved: the number of distinct client /16s is in the same
    // ballpark before/after anonymization (prefix structure intact).
    let distinct_16: HashSet<u32> = matching
        .iter()
        .map(|r| u32::from(r.key.dst_ip) >> 16)
        .collect();
    assert!(distinct_16.len() > 10, "client prefix diversity survives");
}

#[test]
fn filter_rejects_background_and_upstream() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply(&out.records);
    // Background + upstream exist in the record stream …
    assert!(out.records.len() > matching.len() * 2);
    // … and every matching record really originates at the CDN on 443.
    for r in &matching {
        assert!(out.cdn.is_service_addr(r.key.src_ip));
        assert_eq!(r.key.src_port, 443);
    }
}

#[test]
fn ablation_no_news_kills_the_resurge() {
    // The paper's conclusion: the June-23 increase is news-driven, not
    // infection-driven. Remove the media pulses (outbreaks still happen)
    // and the re-surge must disappear.
    let paper = sim();
    let silent = Simulation::new(SimConfig {
        scale: 0.01,
        scenario: ScenarioKind::OutbreaksWithoutNews,
        ..SimConfig::test_small()
    })
    .run();

    let growth = |out: &SimOutput| -> f64 {
        let t = &out.truth.cwa_flows_by_hour;
        let pre: u64 = t[5 * 24..8 * 24].iter().sum();
        let post: u64 = t[8 * 24..11 * 24].iter().sum();
        post as f64 / pre as f64
    };
    let with_news = growth(paper);
    let without_news = growth(&silent);
    assert!(
        with_news > without_news * 1.15,
        "news effect: with {with_news:.3}, without {without_news:.3}"
    );
    assert!(
        without_news < 1.15,
        "without news the curve is flat-to-declining: {without_news:.3}"
    );
}

/// Blind event detection: a CUSUM change-point detector on the measured
/// daily series must find exactly the two events the paper identifies
/// by eye — the June-16 release and the June-23 news surge.
#[test]
fn changepoints_recover_the_papers_events() {
    use cwa_repro::analysis::changepoint::{detect_increases, CusumConfig};
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let series = HourlySeries::from_records(matching.iter(), out.config.days * 24);
    let daily = series.daily_flows();

    let config = CusumConfig {
        window: 1,
        ..CusumConfig::default()
    };
    let changes = detect_increases(&daily, &config);
    let days: Vec<u32> = changes.iter().map(|c| c.day).collect();
    assert!(days.contains(&1), "June 16 release detected: {changes:?}");
    assert!(days.contains(&8), "June 23 surge detected: {changes:?}");
    assert!(days.len() <= 3, "no spurious events: {changes:?}");
    // The release jump is the larger of the two.
    let release = changes.iter().find(|c| c.day == 1).unwrap();
    let surge = changes.iter().find(|c| c.day == 8).unwrap();
    assert!(release.log_ratio > surge.log_ratio);
}

/// Sampling inversion: the Horvitz–Thompson estimator applied to the
/// anonymized sampled records must recover the *true* generated flow
/// count within its model-error budget — the paper could have reported
/// estimated true volumes this way.
#[test]
fn volume_estimation_recovers_ground_truth() {
    use cwa_repro::netflow::estimate::{estimate_volumes, mean_size_from_lognormal};
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);

    // The analyst's prior: CWA downloads are small HTTPS transfers; the
    // generator's configured size distribution is the honest stand-in.
    // (Mixture of api/web flows — use the api-dominated blend.)
    let mean_size = mean_size_from_lognormal(17.0, 0.85);
    let est = estimate_volumes(&matching, out.config.vantage.sampling_interval, mean_size);

    let true_flows = (out.truth.api_flows + out.truth.web_flows) as f64;
    let rel = (est.flows - true_flows).abs() / true_flows;
    assert!(
        rel < 0.35,
        "estimated {:.0} vs true {true_flows} ({:.1}% off)",
        est.flows,
        rel * 100.0
    );
    // And the estimate must beat the raw record count by an order of
    // magnitude (records ≪ true flows under 1:1000 sampling).
    assert!(est.flows > matching.len() as f64 * 5.0);
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt())
}
