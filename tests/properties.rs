//! Property-based tests (proptest) on the core invariants of every
//! substrate: crypto, Crypto-PAn, the NetFlow codec and cache, the
//! Exposure Notification key schedule and export format, and the
//! analysis normalizations.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use cwa_repro::analysis::timeseries::HourlySeries;
use cwa_repro::crypto::{hkdf_sha256, hmac_sha256, sha256, Aes128, Sha256};
use cwa_repro::exposure::export::TemporaryExposureKeyExport;
use cwa_repro::exposure::protobuf::{Reader, Writer};
use cwa_repro::exposure::tek::{DiagnosisKey, TemporaryExposureKey};
use cwa_repro::exposure::time::EnIntervalNumber;
use cwa_repro::netflow::anonymize::common_prefix_len;
use cwa_repro::netflow::cache::{FlowCache, FlowCacheConfig};
use cwa_repro::netflow::flow::{FlowKey, FlowRecord, Protocol};
use cwa_repro::netflow::v5::packetize;
use cwa_repro::netflow::{Collector, CryptoPan};

proptest! {
    // ---------------- crypto ----------------

    /// Streaming SHA-256 equals one-shot for any chunking.
    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cut in 0usize..2048,
    ) {
        let cut = cut.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// HMAC differs whenever the key differs (no trivial collisions on
    /// random inputs).
    #[test]
    fn hmac_key_sensitivity(
        k1 in proptest::collection::vec(any::<u8>(), 1..80),
        k2 in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// HKDF prefix property: a shorter output is a prefix of a longer one.
    #[test]
    fn hkdf_prefix_property(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..32),
        short in 1usize..64,
        extra in 1usize..64,
    ) {
        let a = hkdf_sha256(None, &ikm, &info, short);
        let b = hkdf_sha256(None, &ikm, &info, short + extra);
        prop_assert_eq!(&b[..short], &a[..]);
    }

    /// AES-128 is a permutation: distinct plaintexts encrypt distinctly.
    #[test]
    fn aes_injective(key: [u8; 16], a: [u8; 16], b: [u8; 16]) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    // ---------------- Crypto-PAn ----------------

    /// THE Crypto-PAn property: common prefix lengths are preserved
    /// exactly for arbitrary address pairs and keys.
    #[test]
    fn cryptopan_preserves_prefixes(key: [u8; 32], a: u32, b: u32) {
        let cp = CryptoPan::new(&key);
        let (ia, ib) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
        prop_assert_eq!(
            common_prefix_len(ia, ib),
            common_prefix_len(cp.anonymize(ia), cp.anonymize(ib))
        );
    }

    /// Anonymization inverts exactly.
    #[test]
    fn cryptopan_roundtrip(key: [u8; 32], addr: u32) {
        let cp = CryptoPan::new(&key);
        let a = Ipv4Addr::from(addr);
        prop_assert_eq!(cp.deanonymize(cp.anonymize(a)), a);
    }

    // ---------------- NetFlow v5 ----------------

    /// Arbitrary record batches round-trip through the v5 wire format
    /// (with the format's documented 32-bit truncations applied).
    #[test]
    fn v5_roundtrip(records in proptest::collection::vec(arb_record(), 0..100)) {
        let (packets, _) = packetize(&records, 3, 1000, 1_592_179_200, 7);
        let mut collector = Collector::new_raw();
        for p in &packets {
            collector.ingest(p.encode()).unwrap();
        }
        let out = collector.records();
        prop_assert_eq!(out.len(), records.len());
        for (got, want) in out.iter().zip(&records) {
            prop_assert_eq!(got.key, want.key);
            prop_assert_eq!(got.packets, want.packets.min(u32::MAX as u64));
            prop_assert_eq!(got.bytes, want.bytes.min(u32::MAX as u64));
            prop_assert_eq!(got.first_ms, want.first_ms & 0xFFFF_FFFF);
            prop_assert_eq!(got.tcp_flags, want.tcp_flags);
        }
    }

    /// Flow-cache packet conservation: every accounted packet ends up in
    /// exactly one exported record, for arbitrary packet schedules.
    #[test]
    fn cache_conserves_packets(
        schedule in proptest::collection::vec((0u8..6, 0u64..400_000, 40u64..1500), 1..300)
    ) {
        let mut cache = FlowCache::new(FlowCacheConfig {
            inactive_timeout_ms: 15_000,
            active_timeout_ms: 60_000,
            max_entries: 16,
        });
        let mut sorted = schedule.clone();
        sorted.sort_by_key(|&(_, t, _)| t);
        let mut total_bytes = 0u64;
        for &(host, t, bytes) in &sorted {
            let key = FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 1), 443,
                Ipv4Addr::new(10, 0, 0, host), 50_000,
            );
            cache.account(key, bytes, 0x18, t);
            total_bytes += bytes;
        }
        cache.flush();
        let records = cache.take_expired();
        let packets: u64 = records.iter().map(|r| r.packets).sum();
        let bytes: u64 = records.iter().map(|r| r.bytes).sum();
        prop_assert_eq!(packets, sorted.len() as u64);
        prop_assert_eq!(bytes, total_bytes);
    }

    // ---------------- protobuf / export ----------------

    /// Varints round-trip for arbitrary u64.
    #[test]
    fn varint_roundtrip(v: u64) {
        let mut w = Writer::new();
        w.varint(v);
        let mut r = Reader::new(w.finish());
        prop_assert_eq!(r.varint().unwrap(), v);
        prop_assert!(r.is_done());
    }

    /// Diagnosis-key exports round-trip for arbitrary key sets.
    #[test]
    fn export_roundtrip(
        start in 0u64..2_000_000_000,
        span in 1u64..200_000,
        keys in proptest::collection::vec((any::<[u8; 16]>(), 0u8..8, 1u32..200_000, 1u32..145), 0..40),
    ) {
        let dks: Vec<DiagnosisKey> = keys
            .iter()
            .map(|&(key, risk, start_iv, period)| DiagnosisKey {
                tek: TemporaryExposureKey {
                    key,
                    rolling_start_interval_number: start_iv,
                    rolling_period: period,
                },
                transmission_risk_level: risk,
            })
            .collect();
        let export = TemporaryExposureKeyExport::new_de(start, start + span, dks);
        let back = TemporaryExposureKeyExport::decode(&export.encode()).unwrap();
        prop_assert_eq!(back, export);
    }

    /// The EN key schedule is a pure function of the TEK: equal keys give
    /// equal RPIs; different keys give fully disjoint RPI sets.
    #[test]
    fn en_key_schedule_determinism(key: [u8; 16], other: [u8; 16], day in 1u32..20_000) {
        let t1 = TemporaryExposureKey {
            key, rolling_start_interval_number: day * 144, rolling_period: 144,
        };
        let t2 = TemporaryExposureKey { ..t1 };
        prop_assert_eq!(t1.all_rpis(), t2.all_rpis());
        if key != other {
            let t3 = TemporaryExposureKey { key: other, ..t1 };
            let set: std::collections::HashSet<_> = t1.all_rpis().into_iter().collect();
            prop_assert!(t3.all_rpis().iter().all(|r| !set.contains(r)));
        }
    }

    /// RPIs never collide with a different interval of the same key.
    #[test]
    fn rpi_interval_binding(key: [u8; 16], day in 1u32..20_000, i in 0u32..144, j in 0u32..144) {
        prop_assume!(i != j);
        let tek = TemporaryExposureKey {
            key, rolling_start_interval_number: day * 144, rolling_period: 144,
        };
        let a = tek.rpi(EnIntervalNumber(day * 144 + i));
        let b = tek.rpi(EnIntervalNumber(day * 144 + j));
        prop_assert_ne!(a, b);
    }

    // ---------------- analysis ----------------

    /// Normalization invariants: output in [0, max/minpos], zeros map to
    /// zero, minimum positive maps to 1.
    #[test]
    fn normed_to_min_invariants(flows in proptest::collection::vec(0u64..10_000, 1..300)) {
        let series = HourlySeries { flows: flows.clone(), bytes: flows.clone() };
        let normed = series.flows_normed_to_min();
        prop_assert_eq!(normed.len(), flows.len());
        if let Some(&minpos) = flows.iter().filter(|&&f| f > 0).min() {
            let idx = flows.iter().position(|&f| f == minpos).unwrap();
            prop_assert!((normed[idx] - 1.0).abs() < 1e-12);
        }
        for (n, f) in normed.iter().zip(&flows) {
            prop_assert_eq!(*n == 0.0, *f == 0);
            prop_assert!(*n >= 0.0);
        }
    }
}

proptest! {
    // ---------------- 256-bit arithmetic / ECDSA ----------------

    /// U256 byte/hex round-trips.
    #[test]
    fn u256_roundtrip(bytes: [u8; 32]) {
        use cwa_repro::crypto::u256::U256;
        let x = U256::from_be_bytes(&bytes);
        prop_assert_eq!(x.to_be_bytes(), bytes);
    }

    /// Modular add/sub are inverses; mul commutes (against the P-256
    /// group order as a representative large prime modulus).
    #[test]
    fn u256_modular_algebra(a: [u8; 32], b: [u8; 32]) {
        use cwa_repro::crypto::u256::U256;
        let n = U256::from_hex(
            "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
        );
        // Reduce inputs below the modulus first.
        let a = U256::from_be_bytes(&a).mul_mod(&U256::ONE, &n);
        let b = U256::from_be_bytes(&b).mul_mod(&U256::ONE, &n);
        let sum = a.add_mod(&b, &n);
        prop_assert_eq!(sum.sub_mod(&b, &n), a);
        prop_assert_eq!(a.mul_mod(&b, &n), b.mul_mod(&a, &n));
        // Distributivity: (a+b)·a = a·a + b·a.
        let lhs = sum.mul_mod(&a, &n);
        let rhs = a.mul_mod(&a, &n).add_mod(&b.mul_mod(&a, &n), &n);
        prop_assert_eq!(lhs, rhs);
    }

    /// Nonzero residues have working Fermat inverses.
    #[test]
    fn u256_inverse(a: [u8; 32]) {
        use cwa_repro::crypto::u256::U256;
        let p = U256::from_hex(
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
        );
        let a = U256::from_be_bytes(&a).mul_mod(&U256::ONE, &p);
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul_mod(&a.inv_mod(&p), &p), U256::ONE);
    }
}

proptest! {
    // ---------------- decoder totality (fuzz) ----------------
    // Every wire decoder must be total: arbitrary bytes produce
    // Ok or Err, never a panic.

    #[test]
    fn v5_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        use cwa_repro::netflow::v5::ExportPacket;
        let _ = ExportPacket::decode(bytes::Bytes::from(data));
    }

    #[test]
    fn v9_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        use cwa_repro::netflow::v9::V9Decoder;
        let mut decoder = V9Decoder::new();
        let _ = decoder.decode(bytes::Bytes::from(data));
    }

    #[test]
    fn export_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = TemporaryExposureKeyExport::decode(&data);
    }

    /// …including inputs that *start* like a valid export.
    #[test]
    fn export_decoder_survives_valid_prefix(tail in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut data = b"EK Export v1    ".to_vec();
        data.extend_from_slice(&tail);
        let _ = TemporaryExposureKeyExport::decode(&data);
    }

    #[test]
    fn csv_parser_never_panics(text in "\\PC{0,400}") {
        use cwa_repro::netflow::csvio;
        let _ = csvio::from_csv(&text);
    }

    #[test]
    fn ble_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        use cwa_repro::exposure::BleAdvertisement;
        let _ = BleAdvertisement::decode(&data);
    }
}

proptest! {
    // ECDSA is expensive (~30 ms/case): fewer cases, still randomized.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sign/verify round-trips for random keys and messages; a flipped
    /// message must not verify.
    #[test]
    fn ecdsa_sign_verify(mut secret: [u8; 32], msg in proptest::collection::vec(any::<u8>(), 1..200)) {
        use cwa_repro::crypto::p256::SigningKey;
        secret[0] &= 0x7f; // keep the scalar < n
        prop_assume!(secret.iter().any(|&b| b != 0));
        let key = SigningKey::from_bytes(&secret);
        let vk = key.verifying_key();
        let sig = key.sign(&msg);
        prop_assert!(vk.verify(&msg, &sig));
        let mut tampered = msg.clone();
        tampered[0] ^= 1;
        prop_assert!(!vk.verify(&tampered, &sig));
    }
}

/// Strategy for arbitrary flow records (fields within v5 wire limits
/// where lossless round-tripping is expected).
fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        1u64..=u32::MAX as u64,
        1u64..=u32::MAX as u64,
        0u64..=u32::MAX as u64,
        any::<u8>(),
    )
        .prop_map(
            |(src, dst, sport, dport, packets, bytes, first, flags)| FlowRecord {
                key: FlowKey {
                    src_ip: Ipv4Addr::from(src),
                    dst_ip: Ipv4Addr::from(dst),
                    src_port: sport,
                    dst_port: dport,
                    protocol: Protocol::Tcp,
                },
                packets,
                bytes,
                first_ms: first,
                last_ms: first,
                tcp_flags: flags,
            },
        )
}
