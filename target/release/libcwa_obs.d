/root/repo/target/release/libcwa_obs.rlib: /root/repo/crates/obs/src/lib.rs
