/root/repo/target/release/deps/cwa_epidemic-b70d6f8ca95f13b7.d: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/release/deps/libcwa_epidemic-b70d6f8ca95f13b7.rlib: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/release/deps/libcwa_epidemic-b70d6f8ca95f13b7.rmeta: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

crates/epidemic/src/lib.rs:
crates/epidemic/src/activity.rs:
crates/epidemic/src/adoption.rs:
crates/epidemic/src/events.rs:
crates/epidemic/src/seir.rs:
crates/epidemic/src/timeline.rs:
crates/epidemic/src/uploads.rs:
