/root/repo/target/release/deps/cwa_obs-4d49a36e005355d9.d: crates/obs/src/lib.rs

/root/repo/target/release/deps/libcwa_obs-4d49a36e005355d9.rlib: crates/obs/src/lib.rs

/root/repo/target/release/deps/libcwa_obs-4d49a36e005355d9.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:
