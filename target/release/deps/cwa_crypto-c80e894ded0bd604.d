/root/repo/target/release/deps/cwa_crypto-c80e894ded0bd604.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

/root/repo/target/release/deps/libcwa_crypto-c80e894ded0bd604.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

/root/repo/target/release/deps/libcwa_crypto-c80e894ded0bd604.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ctr.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/p256.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/u256.rs:
