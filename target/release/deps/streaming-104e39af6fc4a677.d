/root/repo/target/release/deps/streaming-104e39af6fc4a677.d: crates/bench/benches/streaming.rs

/root/repo/target/release/deps/streaming-104e39af6fc4a677: crates/bench/benches/streaming.rs

crates/bench/benches/streaming.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
