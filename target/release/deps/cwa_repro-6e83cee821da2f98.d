/root/repo/target/release/deps/cwa_repro-6e83cee821da2f98.d: src/main.rs

/root/repo/target/release/deps/cwa_repro-6e83cee821da2f98: src/main.rs

src/main.rs:
