/root/repo/target/release/deps/cwa_repro-8549b961ff38594b.d: src/lib.rs

/root/repo/target/release/deps/libcwa_repro-8549b961ff38594b.rlib: src/lib.rs

/root/repo/target/release/deps/libcwa_repro-8549b961ff38594b.rmeta: src/lib.rs

src/lib.rs:
