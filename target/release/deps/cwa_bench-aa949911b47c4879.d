/root/repo/target/release/deps/cwa_bench-aa949911b47c4879.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcwa_bench-aa949911b47c4879.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcwa_bench-aa949911b47c4879.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
