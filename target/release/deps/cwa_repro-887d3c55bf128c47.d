/root/repo/target/release/deps/cwa_repro-887d3c55bf128c47.d: src/main.rs

/root/repo/target/release/deps/cwa_repro-887d3c55bf128c47: src/main.rs

src/main.rs:
