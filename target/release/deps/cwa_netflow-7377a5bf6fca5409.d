/root/repo/target/release/deps/cwa_netflow-7377a5bf6fca5409.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

/root/repo/target/release/deps/libcwa_netflow-7377a5bf6fca5409.rlib: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

/root/repo/target/release/deps/libcwa_netflow-7377a5bf6fca5409.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/biflow.rs:
crates/netflow/src/cache.rs:
crates/netflow/src/collector.rs:
crates/netflow/src/csvio.rs:
crates/netflow/src/estimate.rs:
crates/netflow/src/flow.rs:
crates/netflow/src/sampling.rs:
crates/netflow/src/sink.rs:
crates/netflow/src/v5.rs:
crates/netflow/src/v9.rs:
