/root/repo/target/release/deps/serde_derive-c645b47e79376b90.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-c645b47e79376b90.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
