/root/repo/target/release/deps/streaming-ad44f112213c1f5c.d: crates/bench/benches/streaming.rs

/root/repo/target/release/deps/streaming-ad44f112213c1f5c: crates/bench/benches/streaming.rs

crates/bench/benches/streaming.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
