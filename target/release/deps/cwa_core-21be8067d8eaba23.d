/root/repo/target/release/deps/cwa_core-21be8067d8eaba23.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libcwa_core-21be8067d8eaba23.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libcwa_core-21be8067d8eaba23.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
