/root/repo/target/release/deps/cwa_bench-6641efb85dd254e7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcwa_bench-6641efb85dd254e7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcwa_bench-6641efb85dd254e7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
