/root/repo/target/release/deps/serde_json-bc124b3c80252488.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-bc124b3c80252488.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-bc124b3c80252488.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
