/root/repo/target/release/deps/rand_chacha-b2866cd50fcf3ae9.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b2866cd50fcf3ae9.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-b2866cd50fcf3ae9.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
