/root/repo/target/release/deps/serde-7905ec925a407b95.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7905ec925a407b95.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7905ec925a407b95.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
