/root/repo/target/release/deps/cwa_analysis-8cbb48e4077bc63a.d: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/release/deps/libcwa_analysis-8cbb48e4077bc63a.rlib: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/release/deps/libcwa_analysis-8cbb48e4077bc63a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

crates/analysis/src/lib.rs:
crates/analysis/src/changepoint.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/filter.rs:
crates/analysis/src/geoloc.rs:
crates/analysis/src/outbreak.rs:
crates/analysis/src/persistence.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/svg.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/zipmap.rs:
