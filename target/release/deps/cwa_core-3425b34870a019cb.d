/root/repo/target/release/deps/cwa_core-3425b34870a019cb.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libcwa_core-3425b34870a019cb.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/release/deps/libcwa_core-3425b34870a019cb.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
