/root/repo/target/release/deps/serde_derive-daa0e568d87f9fea.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-daa0e568d87f9fea.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
