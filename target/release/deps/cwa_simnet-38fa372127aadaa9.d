/root/repo/target/release/deps/cwa_simnet-38fa372127aadaa9.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/release/deps/libcwa_simnet-38fa372127aadaa9.rlib: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/release/deps/libcwa_simnet-38fa372127aadaa9.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
