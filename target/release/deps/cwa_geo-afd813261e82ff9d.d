/root/repo/target/release/deps/cwa_geo-afd813261e82ff9d.d: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/release/deps/libcwa_geo-afd813261e82ff9d.rlib: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/release/deps/libcwa_geo-afd813261e82ff9d.rmeta: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

crates/geo/src/lib.rs:
crates/geo/src/commuting.rs:
crates/geo/src/district.rs:
crates/geo/src/geodb.rs:
crates/geo/src/germany.rs:
crates/geo/src/isp.rs:
crates/geo/src/routers.rs:
crates/geo/src/state.rs:
