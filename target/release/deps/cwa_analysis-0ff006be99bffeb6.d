/root/repo/target/release/deps/cwa_analysis-0ff006be99bffeb6.d: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/release/deps/libcwa_analysis-0ff006be99bffeb6.rlib: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/release/deps/libcwa_analysis-0ff006be99bffeb6.rmeta: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

crates/analysis/src/lib.rs:
crates/analysis/src/changepoint.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/filter.rs:
crates/analysis/src/geoloc.rs:
crates/analysis/src/outbreak.rs:
crates/analysis/src/persistence.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/stream.rs:
crates/analysis/src/svg.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/zipmap.rs:
