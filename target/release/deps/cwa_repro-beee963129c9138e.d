/root/repo/target/release/deps/cwa_repro-beee963129c9138e.d: src/lib.rs

/root/repo/target/release/deps/libcwa_repro-beee963129c9138e.rlib: src/lib.rs

/root/repo/target/release/deps/libcwa_repro-beee963129c9138e.rmeta: src/lib.rs

src/lib.rs:
