/root/repo/target/debug/libcwa_obs.rlib: /root/repo/crates/obs/src/lib.rs
