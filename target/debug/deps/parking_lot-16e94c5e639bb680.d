/root/repo/target/debug/deps/parking_lot-16e94c5e639bb680.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-16e94c5e639bb680.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-16e94c5e639bb680.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
