/root/repo/target/debug/deps/proptest-b8ef3356cee34647.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-b8ef3356cee34647: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
