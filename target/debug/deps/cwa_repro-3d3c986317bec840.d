/root/repo/target/debug/deps/cwa_repro-3d3c986317bec840.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-3d3c986317bec840: src/main.rs

src/main.rs:
