/root/repo/target/debug/deps/streaming-eb1d0ad380ccf8ce.d: crates/bench/benches/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-eb1d0ad380ccf8ce.rmeta: crates/bench/benches/streaming.rs Cargo.toml

crates/bench/benches/streaming.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
