/root/repo/target/debug/deps/cwa_repro-5ee2d13429dec3aa.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_repro-5ee2d13429dec3aa.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
