/root/repo/target/debug/deps/bytes-774e2eb365a88270.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-774e2eb365a88270.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-774e2eb365a88270.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
