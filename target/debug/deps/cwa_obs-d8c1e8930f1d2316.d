/root/repo/target/debug/deps/cwa_obs-d8c1e8930f1d2316.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/cwa_obs-d8c1e8930f1d2316: crates/obs/src/lib.rs

crates/obs/src/lib.rs:
