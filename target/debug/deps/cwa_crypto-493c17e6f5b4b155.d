/root/repo/target/debug/deps/cwa_crypto-493c17e6f5b4b155.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_crypto-493c17e6f5b4b155.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ctr.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/p256.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/u256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
