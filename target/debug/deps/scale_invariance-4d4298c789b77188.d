/root/repo/target/debug/deps/scale_invariance-4d4298c789b77188.d: tests/scale_invariance.rs

/root/repo/target/debug/deps/scale_invariance-4d4298c789b77188: tests/scale_invariance.rs

tests/scale_invariance.rs:
