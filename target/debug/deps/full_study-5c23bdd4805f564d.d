/root/repo/target/debug/deps/full_study-5c23bdd4805f564d.d: tests/full_study.rs Cargo.toml

/root/repo/target/debug/deps/libfull_study-5c23bdd4805f564d.rmeta: tests/full_study.rs Cargo.toml

tests/full_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
