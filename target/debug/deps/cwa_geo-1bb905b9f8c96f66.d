/root/repo/target/debug/deps/cwa_geo-1bb905b9f8c96f66.d: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/debug/deps/libcwa_geo-1bb905b9f8c96f66.rlib: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/debug/deps/libcwa_geo-1bb905b9f8c96f66.rmeta: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

crates/geo/src/lib.rs:
crates/geo/src/commuting.rs:
crates/geo/src/district.rs:
crates/geo/src/geodb.rs:
crates/geo/src/germany.rs:
crates/geo/src/isp.rs:
crates/geo/src/routers.rs:
crates/geo/src/state.rs:
