/root/repo/target/debug/deps/rand-ceb1c0a65b3d59e7.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-ceb1c0a65b3d59e7: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
