/root/repo/target/debug/deps/cwa_obs-b727333a83dad264.d: crates/obs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_obs-b727333a83dad264.rmeta: crates/obs/src/lib.rs Cargo.toml

crates/obs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
