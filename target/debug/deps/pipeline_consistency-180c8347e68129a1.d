/root/repo/target/debug/deps/pipeline_consistency-180c8347e68129a1.d: tests/pipeline_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_consistency-180c8347e68129a1.rmeta: tests/pipeline_consistency.rs Cargo.toml

tests/pipeline_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
