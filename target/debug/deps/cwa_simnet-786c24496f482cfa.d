/root/repo/target/debug/deps/cwa_simnet-786c24496f482cfa.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-786c24496f482cfa.rlib: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-786c24496f482cfa.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
