/root/repo/target/debug/deps/cwa_bench-222d6370e5643bc8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-222d6370e5643bc8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-222d6370e5643bc8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
