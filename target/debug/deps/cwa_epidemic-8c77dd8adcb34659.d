/root/repo/target/debug/deps/cwa_epidemic-8c77dd8adcb34659.d: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_epidemic-8c77dd8adcb34659.rmeta: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs Cargo.toml

crates/epidemic/src/lib.rs:
crates/epidemic/src/activity.rs:
crates/epidemic/src/adoption.rs:
crates/epidemic/src/events.rs:
crates/epidemic/src/seir.rs:
crates/epidemic/src/timeline.rs:
crates/epidemic/src/uploads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
