/root/repo/target/debug/deps/cwa_epidemic-2bfbfa095534ef92.d: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/debug/deps/libcwa_epidemic-2bfbfa095534ef92.rlib: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/debug/deps/libcwa_epidemic-2bfbfa095534ef92.rmeta: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

crates/epidemic/src/lib.rs:
crates/epidemic/src/activity.rs:
crates/epidemic/src/adoption.rs:
crates/epidemic/src/events.rs:
crates/epidemic/src/seir.rs:
crates/epidemic/src/timeline.rs:
crates/epidemic/src/uploads.rs:
