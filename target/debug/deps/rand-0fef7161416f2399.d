/root/repo/target/debug/deps/rand-0fef7161416f2399.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0fef7161416f2399.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0fef7161416f2399.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
