/root/repo/target/debug/deps/fig2_timeseries-6b10d1f1032d32e2.d: crates/bench/benches/fig2_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_timeseries-6b10d1f1032d32e2.rmeta: crates/bench/benches/fig2_timeseries.rs Cargo.toml

crates/bench/benches/fig2_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
