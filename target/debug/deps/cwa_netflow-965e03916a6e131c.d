/root/repo/target/debug/deps/cwa_netflow-965e03916a6e131c.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

/root/repo/target/debug/deps/libcwa_netflow-965e03916a6e131c.rlib: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

/root/repo/target/debug/deps/libcwa_netflow-965e03916a6e131c.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/biflow.rs:
crates/netflow/src/cache.rs:
crates/netflow/src/collector.rs:
crates/netflow/src/csvio.rs:
crates/netflow/src/estimate.rs:
crates/netflow/src/flow.rs:
crates/netflow/src/sampling.rs:
crates/netflow/src/sink.rs:
crates/netflow/src/v5.rs:
crates/netflow/src/v9.rs:
