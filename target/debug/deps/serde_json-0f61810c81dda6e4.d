/root/repo/target/debug/deps/serde_json-0f61810c81dda6e4.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0f61810c81dda6e4.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0f61810c81dda6e4.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
