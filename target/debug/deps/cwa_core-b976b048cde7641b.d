/root/repo/target/debug/deps/cwa_core-b976b048cde7641b.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-b976b048cde7641b.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-b976b048cde7641b.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
