/root/repo/target/debug/deps/cwa_epidemic-11f27131eda1f635.d: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/debug/deps/libcwa_epidemic-11f27131eda1f635.rlib: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

/root/repo/target/debug/deps/libcwa_epidemic-11f27131eda1f635.rmeta: crates/epidemic/src/lib.rs crates/epidemic/src/activity.rs crates/epidemic/src/adoption.rs crates/epidemic/src/events.rs crates/epidemic/src/seir.rs crates/epidemic/src/timeline.rs crates/epidemic/src/uploads.rs

crates/epidemic/src/lib.rs:
crates/epidemic/src/activity.rs:
crates/epidemic/src/adoption.rs:
crates/epidemic/src/events.rs:
crates/epidemic/src/seir.rs:
crates/epidemic/src/timeline.rs:
crates/epidemic/src/uploads.rs:
