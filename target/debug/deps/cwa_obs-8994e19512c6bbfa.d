/root/repo/target/debug/deps/cwa_obs-8994e19512c6bbfa.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/libcwa_obs-8994e19512c6bbfa.rlib: crates/obs/src/lib.rs

/root/repo/target/debug/deps/libcwa_obs-8994e19512c6bbfa.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:
