/root/repo/target/debug/deps/scale_invariance-385400aacd910d9c.d: tests/scale_invariance.rs Cargo.toml

/root/repo/target/debug/deps/libscale_invariance-385400aacd910d9c.rmeta: tests/scale_invariance.rs Cargo.toml

tests/scale_invariance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
