/root/repo/target/debug/deps/cwa_obs-181f715375329633.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/libcwa_obs-181f715375329633.rlib: crates/obs/src/lib.rs

/root/repo/target/debug/deps/libcwa_obs-181f715375329633.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:
