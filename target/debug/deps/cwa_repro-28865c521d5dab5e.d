/root/repo/target/debug/deps/cwa_repro-28865c521d5dab5e.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-28865c521d5dab5e: src/main.rs

src/main.rs:
