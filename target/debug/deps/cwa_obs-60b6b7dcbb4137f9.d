/root/repo/target/debug/deps/cwa_obs-60b6b7dcbb4137f9.d: crates/obs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_obs-60b6b7dcbb4137f9.rmeta: crates/obs/src/lib.rs Cargo.toml

crates/obs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
