/root/repo/target/debug/deps/claims-a43d77100d7346dc.d: crates/bench/benches/claims.rs Cargo.toml

/root/repo/target/debug/deps/libclaims-a43d77100d7346dc.rmeta: crates/bench/benches/claims.rs Cargo.toml

crates/bench/benches/claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
