/root/repo/target/debug/deps/pipeline_consistency-92bbb63668ca039a.d: tests/pipeline_consistency.rs

/root/repo/target/debug/deps/pipeline_consistency-92bbb63668ca039a: tests/pipeline_consistency.rs

tests/pipeline_consistency.rs:
