/root/repo/target/debug/deps/extensions-84be52ebd67e2276.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-84be52ebd67e2276: tests/extensions.rs

tests/extensions.rs:
