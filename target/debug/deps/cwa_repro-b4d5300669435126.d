/root/repo/target/debug/deps/cwa_repro-b4d5300669435126.d: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-b4d5300669435126.rlib: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-b4d5300669435126.rmeta: src/lib.rs

src/lib.rs:
