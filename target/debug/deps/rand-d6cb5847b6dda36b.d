/root/repo/target/debug/deps/rand-d6cb5847b6dda36b.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d6cb5847b6dda36b.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
