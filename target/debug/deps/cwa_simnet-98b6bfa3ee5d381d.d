/root/repo/target/debug/deps/cwa_simnet-98b6bfa3ee5d381d.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/cwa_simnet-98b6bfa3ee5d381d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
