/root/repo/target/debug/deps/cwa_repro-1f0dcab085674704.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-1f0dcab085674704: src/main.rs

src/main.rs:
