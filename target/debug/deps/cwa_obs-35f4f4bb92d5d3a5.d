/root/repo/target/debug/deps/cwa_obs-35f4f4bb92d5d3a5.d: crates/obs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_obs-35f4f4bb92d5d3a5.rmeta: crates/obs/src/lib.rs Cargo.toml

crates/obs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
