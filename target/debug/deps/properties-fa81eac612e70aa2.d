/root/repo/target/debug/deps/properties-fa81eac612e70aa2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-fa81eac612e70aa2: tests/properties.rs

tests/properties.rs:
