/root/repo/target/debug/deps/cwa_simnet-0c0378bde678db9f.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_simnet-0c0378bde678db9f.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
