/root/repo/target/debug/deps/serde_json-db13004b56dc50b6.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-db13004b56dc50b6.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-db13004b56dc50b6.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
