/root/repo/target/debug/deps/cwa_analysis-919ae19d46eda1e4.d: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_analysis-919ae19d46eda1e4.rmeta: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/changepoint.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/filter.rs:
crates/analysis/src/geoloc.rs:
crates/analysis/src/outbreak.rs:
crates/analysis/src/persistence.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/stream.rs:
crates/analysis/src/svg.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/zipmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
