/root/repo/target/debug/deps/cwa_exposure-11614cdd45578ef1.d: crates/exposure/src/lib.rs crates/exposure/src/advertisement.rs crates/exposure/src/contact.rs crates/exposure/src/device.rs crates/exposure/src/export.rs crates/exposure/src/federation.rs crates/exposure/src/matching.rs crates/exposure/src/protobuf.rs crates/exposure/src/risk.rs crates/exposure/src/risk_v2.rs crates/exposure/src/signature.rs crates/exposure/src/tek.rs crates/exposure/src/time.rs crates/exposure/src/verification.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_exposure-11614cdd45578ef1.rmeta: crates/exposure/src/lib.rs crates/exposure/src/advertisement.rs crates/exposure/src/contact.rs crates/exposure/src/device.rs crates/exposure/src/export.rs crates/exposure/src/federation.rs crates/exposure/src/matching.rs crates/exposure/src/protobuf.rs crates/exposure/src/risk.rs crates/exposure/src/risk_v2.rs crates/exposure/src/signature.rs crates/exposure/src/tek.rs crates/exposure/src/time.rs crates/exposure/src/verification.rs Cargo.toml

crates/exposure/src/lib.rs:
crates/exposure/src/advertisement.rs:
crates/exposure/src/contact.rs:
crates/exposure/src/device.rs:
crates/exposure/src/export.rs:
crates/exposure/src/federation.rs:
crates/exposure/src/matching.rs:
crates/exposure/src/protobuf.rs:
crates/exposure/src/risk.rs:
crates/exposure/src/risk_v2.rs:
crates/exposure/src/signature.rs:
crates/exposure/src/tek.rs:
crates/exposure/src/time.rs:
crates/exposure/src/verification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
