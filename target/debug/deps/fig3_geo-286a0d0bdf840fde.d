/root/repo/target/debug/deps/fig3_geo-286a0d0bdf840fde.d: crates/bench/benches/fig3_geo.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_geo-286a0d0bdf840fde.rmeta: crates/bench/benches/fig3_geo.rs Cargo.toml

crates/bench/benches/fig3_geo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
