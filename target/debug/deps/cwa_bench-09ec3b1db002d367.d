/root/repo/target/debug/deps/cwa_bench-09ec3b1db002d367.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-09ec3b1db002d367.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-09ec3b1db002d367.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
