/root/repo/target/debug/deps/serde-1f11c4e670175e75.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1f11c4e670175e75.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1f11c4e670175e75.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
