/root/repo/target/debug/deps/cwa_core-fecc976b04e8f021.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/cwa_core-fecc976b04e8f021: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
