/root/repo/target/debug/deps/cwa_repro-ea4e12666980ba2e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_repro-ea4e12666980ba2e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
