/root/repo/target/debug/deps/rand_chacha-496546e2c83e4ce6.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-496546e2c83e4ce6.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-496546e2c83e4ce6.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
