/root/repo/target/debug/deps/fig2_timeseries-754ad22e030e49cf.d: crates/bench/benches/fig2_timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_timeseries-754ad22e030e49cf.rmeta: crates/bench/benches/fig2_timeseries.rs Cargo.toml

crates/bench/benches/fig2_timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
