/root/repo/target/debug/deps/cwa_bench-db7f2ef09b52319a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-db7f2ef09b52319a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-db7f2ef09b52319a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
