/root/repo/target/debug/deps/cwa_analysis-8b135c8ba16b4bdc.d: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/debug/deps/libcwa_analysis-8b135c8ba16b4bdc.rlib: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/debug/deps/libcwa_analysis-8b135c8ba16b4bdc.rmeta: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

crates/analysis/src/lib.rs:
crates/analysis/src/changepoint.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/filter.rs:
crates/analysis/src/geoloc.rs:
crates/analysis/src/outbreak.rs:
crates/analysis/src/persistence.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/svg.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/zipmap.rs:
