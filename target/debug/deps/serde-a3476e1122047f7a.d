/root/repo/target/debug/deps/serde-a3476e1122047f7a.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-a3476e1122047f7a: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
