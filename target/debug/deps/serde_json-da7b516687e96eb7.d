/root/repo/target/debug/deps/serde_json-da7b516687e96eb7.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-da7b516687e96eb7: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
