/root/repo/target/debug/deps/cwa_repro-3c68350ca38c2a04.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_repro-3c68350ca38c2a04.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
