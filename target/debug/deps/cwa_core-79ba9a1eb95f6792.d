/root/repo/target/debug/deps/cwa_core-79ba9a1eb95f6792.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-79ba9a1eb95f6792.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-79ba9a1eb95f6792.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
