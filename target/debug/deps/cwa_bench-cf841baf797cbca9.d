/root/repo/target/debug/deps/cwa_bench-cf841baf797cbca9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cwa_bench-cf841baf797cbca9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
