/root/repo/target/debug/deps/cwa_analysis-a4928c0792663937.d: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/debug/deps/libcwa_analysis-a4928c0792663937.rlib: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

/root/repo/target/debug/deps/libcwa_analysis-a4928c0792663937.rmeta: crates/analysis/src/lib.rs crates/analysis/src/changepoint.rs crates/analysis/src/figures.rs crates/analysis/src/filter.rs crates/analysis/src/geoloc.rs crates/analysis/src/outbreak.rs crates/analysis/src/persistence.rs crates/analysis/src/stats.rs crates/analysis/src/stream.rs crates/analysis/src/svg.rs crates/analysis/src/timeseries.rs crates/analysis/src/zipmap.rs

crates/analysis/src/lib.rs:
crates/analysis/src/changepoint.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/filter.rs:
crates/analysis/src/geoloc.rs:
crates/analysis/src/outbreak.rs:
crates/analysis/src/persistence.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/stream.rs:
crates/analysis/src/svg.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/zipmap.rs:
