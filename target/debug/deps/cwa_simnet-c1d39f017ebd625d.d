/root/repo/target/debug/deps/cwa_simnet-c1d39f017ebd625d.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-c1d39f017ebd625d.rlib: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-c1d39f017ebd625d.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
