/root/repo/target/debug/deps/bytes-b9ea512331724f4f.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-b9ea512331724f4f: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
