/root/repo/target/debug/deps/cwa_repro-2666a0e50b1a1d98.d: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-2666a0e50b1a1d98.rlib: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-2666a0e50b1a1d98.rmeta: src/lib.rs

src/lib.rs:
