/root/repo/target/debug/deps/scale_invariance-3caff0be75299bf2.d: tests/scale_invariance.rs

/root/repo/target/debug/deps/scale_invariance-3caff0be75299bf2: tests/scale_invariance.rs

tests/scale_invariance.rs:
