/root/repo/target/debug/deps/streaming-86f4c4504e0eea80.d: tests/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-86f4c4504e0eea80.rmeta: tests/streaming.rs Cargo.toml

tests/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
