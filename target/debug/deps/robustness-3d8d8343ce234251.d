/root/repo/target/debug/deps/robustness-3d8d8343ce234251.d: crates/bench/benches/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-3d8d8343ce234251.rmeta: crates/bench/benches/robustness.rs Cargo.toml

crates/bench/benches/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
