/root/repo/target/debug/deps/fig3_geo-2a4bc76cddaad58d.d: crates/bench/benches/fig3_geo.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_geo-2a4bc76cddaad58d.rmeta: crates/bench/benches/fig3_geo.rs Cargo.toml

crates/bench/benches/fig3_geo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
