/root/repo/target/debug/deps/cwa_repro-75a0e672206d6890.d: src/lib.rs

/root/repo/target/debug/deps/cwa_repro-75a0e672206d6890: src/lib.rs

src/lib.rs:
