/root/repo/target/debug/deps/cwa_bench-18caeb7438fc98ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cwa_bench-18caeb7438fc98ea: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
