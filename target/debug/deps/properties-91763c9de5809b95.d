/root/repo/target/debug/deps/properties-91763c9de5809b95.d: tests/properties.rs

/root/repo/target/debug/deps/properties-91763c9de5809b95: tests/properties.rs

tests/properties.rs:
