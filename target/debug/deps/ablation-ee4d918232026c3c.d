/root/repo/target/debug/deps/ablation-ee4d918232026c3c.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-ee4d918232026c3c.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
