/root/repo/target/debug/deps/metrics-9b999e3b9a5b6225.d: tests/metrics.rs

/root/repo/target/debug/deps/metrics-9b999e3b9a5b6225: tests/metrics.rs

tests/metrics.rs:
