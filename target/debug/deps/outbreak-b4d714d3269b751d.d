/root/repo/target/debug/deps/outbreak-b4d714d3269b751d.d: crates/bench/benches/outbreak.rs Cargo.toml

/root/repo/target/debug/deps/liboutbreak-b4d714d3269b751d.rmeta: crates/bench/benches/outbreak.rs Cargo.toml

crates/bench/benches/outbreak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
