/root/repo/target/debug/deps/metrics-105e119473d788e8.d: tests/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics-105e119473d788e8.rmeta: tests/metrics.rs Cargo.toml

tests/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
