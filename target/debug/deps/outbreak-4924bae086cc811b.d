/root/repo/target/debug/deps/outbreak-4924bae086cc811b.d: crates/bench/benches/outbreak.rs Cargo.toml

/root/repo/target/debug/deps/liboutbreak-4924bae086cc811b.rmeta: crates/bench/benches/outbreak.rs Cargo.toml

crates/bench/benches/outbreak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
