/root/repo/target/debug/deps/cwa_geo-3a90019a46463e27.d: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_geo-3a90019a46463e27.rmeta: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/commuting.rs:
crates/geo/src/district.rs:
crates/geo/src/geodb.rs:
crates/geo/src/germany.rs:
crates/geo/src/isp.rs:
crates/geo/src/routers.rs:
crates/geo/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
