/root/repo/target/debug/deps/streaming-f1e994978d924079.d: tests/streaming.rs

/root/repo/target/debug/deps/streaming-f1e994978d924079: tests/streaming.rs

tests/streaming.rs:
