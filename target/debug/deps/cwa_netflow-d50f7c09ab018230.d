/root/repo/target/debug/deps/cwa_netflow-d50f7c09ab018230.d: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_netflow-d50f7c09ab018230.rmeta: crates/netflow/src/lib.rs crates/netflow/src/anonymize.rs crates/netflow/src/biflow.rs crates/netflow/src/cache.rs crates/netflow/src/collector.rs crates/netflow/src/csvio.rs crates/netflow/src/estimate.rs crates/netflow/src/flow.rs crates/netflow/src/sampling.rs crates/netflow/src/sink.rs crates/netflow/src/v5.rs crates/netflow/src/v9.rs Cargo.toml

crates/netflow/src/lib.rs:
crates/netflow/src/anonymize.rs:
crates/netflow/src/biflow.rs:
crates/netflow/src/cache.rs:
crates/netflow/src/collector.rs:
crates/netflow/src/csvio.rs:
crates/netflow/src/estimate.rs:
crates/netflow/src/flow.rs:
crates/netflow/src/sampling.rs:
crates/netflow/src/sink.rs:
crates/netflow/src/v5.rs:
crates/netflow/src/v9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
