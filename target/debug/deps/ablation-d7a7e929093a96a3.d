/root/repo/target/debug/deps/ablation-d7a7e929093a96a3.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-d7a7e929093a96a3.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
