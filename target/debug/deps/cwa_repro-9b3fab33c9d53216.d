/root/repo/target/debug/deps/cwa_repro-9b3fab33c9d53216.d: src/lib.rs

/root/repo/target/debug/deps/cwa_repro-9b3fab33c9d53216: src/lib.rs

src/lib.rs:
