/root/repo/target/debug/deps/cwa_core-6ab58c06590a9981.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-6ab58c06590a9981.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-6ab58c06590a9981.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
