/root/repo/target/debug/deps/cwa_bench-b93adf048e8b5c76.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-b93adf048e8b5c76.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcwa_bench-b93adf048e8b5c76.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
