/root/repo/target/debug/deps/cwa_repro-4b5aeb602979c152.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-4b5aeb602979c152: src/main.rs

src/main.rs:
