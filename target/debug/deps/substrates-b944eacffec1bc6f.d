/root/repo/target/debug/deps/substrates-b944eacffec1bc6f.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-b944eacffec1bc6f.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
