/root/repo/target/debug/deps/cwa_core-3a358bc69e446a0f.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/cwa_core-3a358bc69e446a0f: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
