/root/repo/target/debug/deps/serde_derive-a3f1efe4c014909b.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-a3f1efe4c014909b.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
