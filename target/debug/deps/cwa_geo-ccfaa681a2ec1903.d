/root/repo/target/debug/deps/cwa_geo-ccfaa681a2ec1903.d: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/debug/deps/cwa_geo-ccfaa681a2ec1903: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

crates/geo/src/lib.rs:
crates/geo/src/commuting.rs:
crates/geo/src/district.rs:
crates/geo/src/geodb.rs:
crates/geo/src/germany.rs:
crates/geo/src/isp.rs:
crates/geo/src/routers.rs:
crates/geo/src/state.rs:
