/root/repo/target/debug/deps/exposure_e2e-fc19dd54c2e0746d.d: tests/exposure_e2e.rs

/root/repo/target/debug/deps/exposure_e2e-fc19dd54c2e0746d: tests/exposure_e2e.rs

tests/exposure_e2e.rs:
