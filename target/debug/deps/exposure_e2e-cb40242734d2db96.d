/root/repo/target/debug/deps/exposure_e2e-cb40242734d2db96.d: tests/exposure_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libexposure_e2e-cb40242734d2db96.rmeta: tests/exposure_e2e.rs Cargo.toml

tests/exposure_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
