/root/repo/target/debug/deps/cwa_core-54b8cec3507fd6c6.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_core-54b8cec3507fd6c6.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
