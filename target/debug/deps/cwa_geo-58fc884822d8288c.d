/root/repo/target/debug/deps/cwa_geo-58fc884822d8288c.d: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/debug/deps/libcwa_geo-58fc884822d8288c.rlib: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

/root/repo/target/debug/deps/libcwa_geo-58fc884822d8288c.rmeta: crates/geo/src/lib.rs crates/geo/src/commuting.rs crates/geo/src/district.rs crates/geo/src/geodb.rs crates/geo/src/germany.rs crates/geo/src/isp.rs crates/geo/src/routers.rs crates/geo/src/state.rs

crates/geo/src/lib.rs:
crates/geo/src/commuting.rs:
crates/geo/src/district.rs:
crates/geo/src/geodb.rs:
crates/geo/src/germany.rs:
crates/geo/src/isp.rs:
crates/geo/src/routers.rs:
crates/geo/src/state.rs:
