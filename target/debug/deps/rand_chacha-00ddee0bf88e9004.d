/root/repo/target/debug/deps/rand_chacha-00ddee0bf88e9004.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-00ddee0bf88e9004: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
