/root/repo/target/debug/deps/serde_json-7df7f3f21a8bcec8.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7df7f3f21a8bcec8.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7df7f3f21a8bcec8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
