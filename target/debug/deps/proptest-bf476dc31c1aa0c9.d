/root/repo/target/debug/deps/proptest-bf476dc31c1aa0c9.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bf476dc31c1aa0c9.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bf476dc31c1aa0c9.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
