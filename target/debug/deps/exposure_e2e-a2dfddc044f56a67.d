/root/repo/target/debug/deps/exposure_e2e-a2dfddc044f56a67.d: tests/exposure_e2e.rs

/root/repo/target/debug/deps/exposure_e2e-a2dfddc044f56a67: tests/exposure_e2e.rs

tests/exposure_e2e.rs:
