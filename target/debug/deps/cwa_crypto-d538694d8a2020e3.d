/root/repo/target/debug/deps/cwa_crypto-d538694d8a2020e3.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

/root/repo/target/debug/deps/libcwa_crypto-d538694d8a2020e3.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

/root/repo/target/debug/deps/libcwa_crypto-d538694d8a2020e3.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ctr.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/p256.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/u256.rs:
