/root/repo/target/debug/deps/parking_lot-93810cbbd3f22c23.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-93810cbbd3f22c23: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
