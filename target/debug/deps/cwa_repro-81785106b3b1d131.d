/root/repo/target/debug/deps/cwa_repro-81785106b3b1d131.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_repro-81785106b3b1d131.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
