/root/repo/target/debug/deps/cwa_core-d962127074dd5064.d: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-d962127074dd5064.rlib: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libcwa_core-d962127074dd5064.rmeta: crates/core/src/lib.rs crates/core/src/claims.rs crates/core/src/report.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/claims.rs:
crates/core/src/report.rs:
crates/core/src/study.rs:
