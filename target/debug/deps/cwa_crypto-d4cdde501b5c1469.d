/root/repo/target/debug/deps/cwa_crypto-d4cdde501b5c1469.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

/root/repo/target/debug/deps/cwa_crypto-d4cdde501b5c1469: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ctr.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/p256.rs crates/crypto/src/sha256.rs crates/crypto/src/u256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ctr.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/p256.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/u256.rs:
