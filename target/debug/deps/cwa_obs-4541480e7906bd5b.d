/root/repo/target/debug/deps/cwa_obs-4541480e7906bd5b.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/cwa_obs-4541480e7906bd5b: crates/obs/src/lib.rs

crates/obs/src/lib.rs:
