/root/repo/target/debug/deps/cwa_simnet-edbde4766efa9677.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-edbde4766efa9677.rlib: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-edbde4766efa9677.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
