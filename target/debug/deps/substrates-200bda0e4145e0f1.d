/root/repo/target/debug/deps/substrates-200bda0e4145e0f1.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-200bda0e4145e0f1.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
