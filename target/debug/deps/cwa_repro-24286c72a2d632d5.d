/root/repo/target/debug/deps/cwa_repro-24286c72a2d632d5.d: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-24286c72a2d632d5.rlib: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-24286c72a2d632d5.rmeta: src/lib.rs

src/lib.rs:
