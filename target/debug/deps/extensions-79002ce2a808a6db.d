/root/repo/target/debug/deps/extensions-79002ce2a808a6db.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-79002ce2a808a6db: tests/extensions.rs

tests/extensions.rs:
