/root/repo/target/debug/deps/cwa_bench-3bec59183facad24.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cwa_bench-3bec59183facad24: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
