/root/repo/target/debug/deps/claims-8f2854044ee435df.d: crates/bench/benches/claims.rs Cargo.toml

/root/repo/target/debug/deps/libclaims-8f2854044ee435df.rmeta: crates/bench/benches/claims.rs Cargo.toml

crates/bench/benches/claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
