/root/repo/target/debug/deps/full_study-b92194154d06ef1a.d: tests/full_study.rs

/root/repo/target/debug/deps/full_study-b92194154d06ef1a: tests/full_study.rs

tests/full_study.rs:
