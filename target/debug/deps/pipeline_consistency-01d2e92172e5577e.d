/root/repo/target/debug/deps/pipeline_consistency-01d2e92172e5577e.d: tests/pipeline_consistency.rs

/root/repo/target/debug/deps/pipeline_consistency-01d2e92172e5577e: tests/pipeline_consistency.rs

tests/pipeline_consistency.rs:
