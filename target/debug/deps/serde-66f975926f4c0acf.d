/root/repo/target/debug/deps/serde-66f975926f4c0acf.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-66f975926f4c0acf.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-66f975926f4c0acf.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
