/root/repo/target/debug/deps/robustness-ec494c4e7cb80f85.d: crates/bench/benches/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-ec494c4e7cb80f85.rmeta: crates/bench/benches/robustness.rs Cargo.toml

crates/bench/benches/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
