/root/repo/target/debug/deps/cwa_bench-ccf9975bcb944f3e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_bench-ccf9975bcb944f3e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
