/root/repo/target/debug/deps/cwa_simnet-abab9571e4203eb2.d: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-abab9571e4203eb2.rlib: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

/root/repo/target/debug/deps/libcwa_simnet-abab9571e4203eb2.rmeta: crates/simnet/src/lib.rs crates/simnet/src/cdn.rs crates/simnet/src/dns.rs crates/simnet/src/sim.rs crates/simnet/src/stats.rs crates/simnet/src/traffic.rs crates/simnet/src/vantage.rs

crates/simnet/src/lib.rs:
crates/simnet/src/cdn.rs:
crates/simnet/src/dns.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/stats.rs:
crates/simnet/src/traffic.rs:
crates/simnet/src/vantage.rs:
