/root/repo/target/debug/deps/serde_derive-8d96dc7f8e0203ea.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-8d96dc7f8e0203ea: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
