/root/repo/target/debug/deps/cwa_bench-a1afc65dfcdc6290.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcwa_bench-a1afc65dfcdc6290.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
