/root/repo/target/debug/deps/full_study-ed0b679a5617922d.d: tests/full_study.rs

/root/repo/target/debug/deps/full_study-ed0b679a5617922d: tests/full_study.rs

tests/full_study.rs:
