/root/repo/target/debug/deps/cwa_repro-732888ee161c4da3.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-732888ee161c4da3: src/main.rs

src/main.rs:
