/root/repo/target/debug/deps/cwa_repro-9592976c10290068.d: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-9592976c10290068.rlib: src/lib.rs

/root/repo/target/debug/deps/libcwa_repro-9592976c10290068.rmeta: src/lib.rs

src/lib.rs:
