/root/repo/target/debug/deps/proptest-03990987c136181f.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-03990987c136181f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-03990987c136181f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
