/root/repo/target/debug/deps/cwa_repro-40afd0679da3cb3a.d: src/main.rs

/root/repo/target/debug/deps/cwa_repro-40afd0679da3cb3a: src/main.rs

src/main.rs:
