/root/repo/target/debug/deps/cwa_exposure-985fa7760399121e.d: crates/exposure/src/lib.rs crates/exposure/src/advertisement.rs crates/exposure/src/contact.rs crates/exposure/src/device.rs crates/exposure/src/export.rs crates/exposure/src/federation.rs crates/exposure/src/matching.rs crates/exposure/src/protobuf.rs crates/exposure/src/risk.rs crates/exposure/src/risk_v2.rs crates/exposure/src/signature.rs crates/exposure/src/tek.rs crates/exposure/src/time.rs crates/exposure/src/verification.rs

/root/repo/target/debug/deps/libcwa_exposure-985fa7760399121e.rlib: crates/exposure/src/lib.rs crates/exposure/src/advertisement.rs crates/exposure/src/contact.rs crates/exposure/src/device.rs crates/exposure/src/export.rs crates/exposure/src/federation.rs crates/exposure/src/matching.rs crates/exposure/src/protobuf.rs crates/exposure/src/risk.rs crates/exposure/src/risk_v2.rs crates/exposure/src/signature.rs crates/exposure/src/tek.rs crates/exposure/src/time.rs crates/exposure/src/verification.rs

/root/repo/target/debug/deps/libcwa_exposure-985fa7760399121e.rmeta: crates/exposure/src/lib.rs crates/exposure/src/advertisement.rs crates/exposure/src/contact.rs crates/exposure/src/device.rs crates/exposure/src/export.rs crates/exposure/src/federation.rs crates/exposure/src/matching.rs crates/exposure/src/protobuf.rs crates/exposure/src/risk.rs crates/exposure/src/risk_v2.rs crates/exposure/src/signature.rs crates/exposure/src/tek.rs crates/exposure/src/time.rs crates/exposure/src/verification.rs

crates/exposure/src/lib.rs:
crates/exposure/src/advertisement.rs:
crates/exposure/src/contact.rs:
crates/exposure/src/device.rs:
crates/exposure/src/export.rs:
crates/exposure/src/federation.rs:
crates/exposure/src/matching.rs:
crates/exposure/src/protobuf.rs:
crates/exposure/src/risk.rs:
crates/exposure/src/risk_v2.rs:
crates/exposure/src/signature.rs:
crates/exposure/src/tek.rs:
crates/exposure/src/time.rs:
crates/exposure/src/verification.rs:
