/root/repo/target/debug/examples/netflow_tour-66caeaaf962a2efd.d: examples/netflow_tour.rs

/root/repo/target/debug/examples/netflow_tour-66caeaaf962a2efd: examples/netflow_tour.rs

examples/netflow_tour.rs:
