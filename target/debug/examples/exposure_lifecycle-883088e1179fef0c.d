/root/repo/target/debug/examples/exposure_lifecycle-883088e1179fef0c.d: examples/exposure_lifecycle.rs

/root/repo/target/debug/examples/exposure_lifecycle-883088e1179fef0c: examples/exposure_lifecycle.rs

examples/exposure_lifecycle.rs:
