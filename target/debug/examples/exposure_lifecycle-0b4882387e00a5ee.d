/root/repo/target/debug/examples/exposure_lifecycle-0b4882387e00a5ee.d: examples/exposure_lifecycle.rs Cargo.toml

/root/repo/target/debug/examples/libexposure_lifecycle-0b4882387e00a5ee.rmeta: examples/exposure_lifecycle.rs Cargo.toml

examples/exposure_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
