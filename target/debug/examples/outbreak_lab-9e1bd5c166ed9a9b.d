/root/repo/target/debug/examples/outbreak_lab-9e1bd5c166ed9a9b.d: examples/outbreak_lab.rs Cargo.toml

/root/repo/target/debug/examples/liboutbreak_lab-9e1bd5c166ed9a9b.rmeta: examples/outbreak_lab.rs Cargo.toml

examples/outbreak_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
