/root/repo/target/debug/examples/outbreak_lab-92e4609742a0f9c5.d: examples/outbreak_lab.rs

/root/repo/target/debug/examples/outbreak_lab-92e4609742a0f9c5: examples/outbreak_lab.rs

examples/outbreak_lab.rs:
