/root/repo/target/debug/examples/risk_scoring-62356e9bf07c6ede.d: examples/risk_scoring.rs

/root/repo/target/debug/examples/risk_scoring-62356e9bf07c6ede: examples/risk_scoring.rs

examples/risk_scoring.rs:
