/root/repo/target/debug/examples/nationwide_study-bb232694d4dcc4bb.d: examples/nationwide_study.rs Cargo.toml

/root/repo/target/debug/examples/libnationwide_study-bb232694d4dcc4bb.rmeta: examples/nationwide_study.rs Cargo.toml

examples/nationwide_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
