/root/repo/target/debug/examples/nationwide_study-734dbac1ab0fa85c.d: examples/nationwide_study.rs

/root/repo/target/debug/examples/nationwide_study-734dbac1ab0fa85c: examples/nationwide_study.rs

examples/nationwide_study.rs:
