/root/repo/target/debug/examples/quickstart-292de8da734e6a3b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-292de8da734e6a3b: examples/quickstart.rs

examples/quickstart.rs:
