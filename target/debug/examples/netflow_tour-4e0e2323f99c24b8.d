/root/repo/target/debug/examples/netflow_tour-4e0e2323f99c24b8.d: examples/netflow_tour.rs

/root/repo/target/debug/examples/netflow_tour-4e0e2323f99c24b8: examples/netflow_tour.rs

examples/netflow_tour.rs:
