/root/repo/target/debug/examples/quickstart-db28ef69adf35fa6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-db28ef69adf35fa6: examples/quickstart.rs

examples/quickstart.rs:
