/root/repo/target/debug/examples/nationwide_study-88188229641e8246.d: examples/nationwide_study.rs

/root/repo/target/debug/examples/nationwide_study-88188229641e8246: examples/nationwide_study.rs

examples/nationwide_study.rs:
