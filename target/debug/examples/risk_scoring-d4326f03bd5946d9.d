/root/repo/target/debug/examples/risk_scoring-d4326f03bd5946d9.d: examples/risk_scoring.rs Cargo.toml

/root/repo/target/debug/examples/librisk_scoring-d4326f03bd5946d9.rmeta: examples/risk_scoring.rs Cargo.toml

examples/risk_scoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
