/root/repo/target/debug/examples/outbreak_lab-efa51892ba546496.d: examples/outbreak_lab.rs

/root/repo/target/debug/examples/outbreak_lab-efa51892ba546496: examples/outbreak_lab.rs

examples/outbreak_lab.rs:
