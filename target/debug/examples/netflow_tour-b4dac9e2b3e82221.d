/root/repo/target/debug/examples/netflow_tour-b4dac9e2b3e82221.d: examples/netflow_tour.rs Cargo.toml

/root/repo/target/debug/examples/libnetflow_tour-b4dac9e2b3e82221.rmeta: examples/netflow_tour.rs Cargo.toml

examples/netflow_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
