/root/repo/target/debug/examples/exposure_lifecycle-c26d6dafdbf0630f.d: examples/exposure_lifecycle.rs

/root/repo/target/debug/examples/exposure_lifecycle-c26d6dafdbf0630f: examples/exposure_lifecycle.rs

examples/exposure_lifecycle.rs:
