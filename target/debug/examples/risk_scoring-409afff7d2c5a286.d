/root/repo/target/debug/examples/risk_scoring-409afff7d2c5a286.d: examples/risk_scoring.rs

/root/repo/target/debug/examples/risk_scoring-409afff7d2c5a286: examples/risk_scoring.rs

examples/risk_scoring.rs:
