//! # cwa-repro — umbrella crate
//!
//! Re-exports every subsystem of the reproduction of *"Corona-Warn-App:
//! Tracing the Start of the Official COVID-19 Exposure Notification App
//! for Germany"* (SIGCOMM '20 Posters) so that the root `examples/` and
//! `tests/` can exercise the full public API from one place.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use cwa_analysis as analysis;
pub use cwa_core as core;
pub use cwa_crypto as crypto;
pub use cwa_epidemic as epidemic;
pub use cwa_exposure as exposure;
pub use cwa_geo as geo;
pub use cwa_netflow as netflow;
pub use cwa_obs as obs;
pub use cwa_simnet as simnet;
