//! `cwa-repro` — command-line front end for the reproduction.
//!
//! ```text
//! cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE] [--trace FILE]
//!                 [--strict] [--scenario FILE]
//!                 [--live] [--replay-speed N] [--days N|inf]
//!                 [--serve ADDR] [--heartbeat-ms N] [--heartbeat-jsonl FILE] [--serve-linger-ms N]
//! cwa-repro sweep --scenarios FILE [--scale S] [--seed N] [--seeds N] [--shards N] [--json FILE]
//! cwa-repro watch [--claims] ADDR [--interval-ms N]
//! cwa-repro scrape ADDR PATH
//! cwa-repro obs-diff A.json B.json [--threshold PCT]
//! cwa-repro trace-summary FILE
//! cwa-repro dns   [--days N]
//! cwa-repro ablation
//! cwa-repro help
//! ```

use std::process::ExitCode;

use cwa_core::{run_seed_sweep, run_sweep, LiveOptions, ScenarioMatrix, Study, StudyConfig};
use cwa_simnet::sim::ScenarioKind;
use cwa_simnet::{SimConfig, Simulation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("study") => study(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("watch") => watch(&args[1..]),
        Some("scrape") => scrape(&args[1..]),
        Some("obs-diff") => obs_diff(&args[1..]),
        Some("trace-summary") => trace_summary(&args[1..]),
        Some("dns") => dns(&args[1..]),
        Some("ablation") => ablation(),
        Some("help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "cwa-repro — reproduction of the SIGCOMM'20 Corona-Warn-App measurement study\n\
     \n\
     USAGE:\n\
     \x20 cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE] [--trace FILE]\n\
     \x20     run the full study and print the paper-vs-measured report;\n\
     \x20     --streaming fuses simulate+analyze into one single-pass\n\
     \x20     pipeline that never materializes the full record set\n\
     \x20     (same report modulo phase timings);\n\
     \x20     --shards N splits the router fleet across N worker threads,\n\
     \x20     each filtering+analyzing its own record partition, merged\n\
     \x20     deterministically at the end (same report as --streaming);\n\
     \x20     --metrics writes an observability snapshot — cwa-obs/v1\n\
     \x20     JSON, or Prometheus text exposition when FILE ends in .prom;\n\
     \x20     --trace records a flight-recorder timeline of every pipeline\n\
     \x20     stage (produce/export/drain/filter/analyze + channel stalls)\n\
     \x20     as Chrome trace-event JSON — load it in Perfetto or summarize\n\
     \x20     it with `cwa-repro trace-summary`;\n\
     \x20     --live replays day by day through the windowed incremental\n\
     \x20     view and (with --serve) publishes an interim report after\n\
     \x20     every simulated day plus figure documents every hour on\n\
     \x20     /report and /figures/{adoption,geo,outbreak}; the end state\n\
     \x20     equals the batch --streaming report; --replay-speed N paces\n\
     \x20     the replay at N× simulated time (an export hour every\n\
     \x20     3600/N wall seconds; default: as fast as possible) and\n\
     \x20     --days N|inf stretches the horizon (`inf` ≈ ten years; the\n\
     \x20     sliding window keeps resident state bounded regardless);\n\
     \x20     --serve ADDR starts a live-telemetry HTTP server (endpoints\n\
     \x20     /metrics, /metrics.json, /progress, /healthz, and for --live\n\
     \x20     runs /report + /figures/*) for the run's\n\
     \x20     duration; --serve-linger-ms keeps it up after the run ends;\n\
     \x20     --heartbeat-ms sets the sampling interval (default 250) and\n\
     \x20     --heartbeat-jsonl streams one cwa-obs/v1 snapshot per\n\
     \x20     heartbeat to FILE, append-only;\n\
     \x20     --scenario FILE overlays a single [[scenario]] from FILE\n\
     \x20     onto the run's configuration;\n\
     \x20     --strict restores the old all-or-nothing behavior: abort\n\
     \x20     with NoMatchingFlows when nothing matched the §2 filter and\n\
     \x20     exit nonzero on *any* non-pass verdict. Without it, starved\n\
     \x20     claims are reported in the table (verdict `starved`) and\n\
     \x20     only genuine out-of-band failures exit nonzero\n\
     \x20 cwa-repro sweep --scenarios FILE [--scale S] [--seed N] [--seeds N] [--shards N] [--json FILE]\n\
     \x20     run every [[scenario]] in FILE over the sharded workers and\n\
     \x20     print the claim-survival table (scenario × claim →\n\
     \x20     pass/fail/starved); --json also writes the table as JSON,\n\
     \x20     byte-identical across --shards values; --scale/--seed set\n\
     \x20     the base configuration scenarios overlay; --seeds N runs\n\
     \x20     each scenario under N seeds and prints per-cell pass\n\
     \x20     fractions instead (flaky borderline cells vs solid ones)\n\
     \x20 cwa-repro watch [--claims] ADDR [--interval-ms N]\n\
     \x20     live terminal dashboard over a --serve endpoint: polls\n\
     \x20     /progress, renders per-shard throughput and stall ratios,\n\
     \x20     exits when the run completes; with --claims polls the\n\
     \x20     /report of a `study --live` run and renders the claim\n\
     \x20     verdict table as it evolves\n\
     \x20 cwa-repro scrape ADDR PATH\n\
     \x20     one-shot HTTP GET against a --serve endpoint (std TcpStream,\n\
     \x20     no curl needed); prints the body, exits nonzero on non-2xx\n\
     \x20 cwa-repro obs-diff A.json B.json [--threshold PCT]\n\
     \x20     compare two cwa-obs/v1 snapshots metric by metric; with\n\
     \x20     --threshold, exit nonzero when any phase.* timer regressed\n\
     \x20     by more than PCT percent\n\
     \x20 cwa-repro trace-summary FILE\n\
     \x20     print a per-thread self-time breakdown (utilization, send\n\
     \x20     block, receive idle) of a --trace capture\n\
     \x20 cwa-repro dns [--days N]\n\
     \x20     print the Umbrella-style DNS rank model output per day\n\
     \x20 cwa-repro ablation\n\
     \x20     compare the paper scenario against the no-news counterfactual\n\
     \x20 cwa-repro help\n"
        .to_owned()
}

/// Minimal `--key value` / `--flag` parser.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn study(args: &[String]) -> ExitCode {
    let scale: f64 = match opt(args, "--scale").map(|s| s.parse()) {
        Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
        None => 0.02,
        _ => {
            eprintln!("--scale must be a number in (0, 1]");
            return ExitCode::FAILURE;
        }
    };
    let mut config = StudyConfig::at_scale(scale);
    if let Some(seed) = opt(args, "--seed") {
        match seed.parse() {
            Ok(s) => config.sim.seed = s,
            Err(_) => {
                eprintln!("--seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    config.sim.parallel = flag(args, "--parallel");
    let strict = flag(args, "--strict");
    if let Some(path) = opt(args, "--scenario") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let matrix = match ScenarioMatrix::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if matrix.scenarios.len() != 1 {
            eprintln!(
                "{path} holds {} scenarios; `study --scenario` takes exactly one (use `sweep` for a matrix)",
                matrix.scenarios.len()
            );
            return ExitCode::FAILURE;
        }
        let germany = cwa_geo::Germany::build();
        config = match matrix.scenarios[0].apply(&config, &germany) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("applied scenario '{}'", matrix.scenarios[0].name);
    }
    let streaming = flag(args, "--streaming");
    let shards: Option<usize> = match opt(args, "--shards").map(|s| s.parse()) {
        Some(Ok(n)) => Some(n),
        None => None,
        Some(Err(_)) => {
            eprintln!("--shards must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let live_mode = flag(args, "--live");
    let replay_speed: Option<f64> = match opt(args, "--replay-speed").map(|s| s.parse()) {
        Some(Ok(n)) if n > 0.0 => Some(n),
        None => None,
        _ => {
            eprintln!("--replay-speed must be a positive number (simulated-time multiple)");
            return ExitCode::FAILURE;
        }
    };
    if replay_speed.is_some() && !live_mode {
        eprintln!("--replay-speed requires --live");
        return ExitCode::FAILURE;
    }
    if live_mode && streaming {
        eprintln!("--live and --streaming are exclusive (live is already single-pass)");
        return ExitCode::FAILURE;
    }
    if let Some(days) = opt(args, "--days") {
        if !live_mode {
            eprintln!("--days requires --live (the batch analysis tiers are horizon-bound)");
            return ExitCode::FAILURE;
        }
        // "inf" is endless in spirit: a ten-year replay; the windowed
        // view keeps resident state bounded regardless of the horizon.
        config.sim.days = if days == "inf" {
            3650
        } else {
            match days.parse() {
                Ok(d) if d >= 1 => d,
                _ => {
                    eprintln!("--days must be a positive integer or `inf`");
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    let metrics_path = opt(args, "--metrics");
    let serve_addr = opt(args, "--serve");
    let heartbeat_jsonl = opt(args, "--heartbeat-jsonl");
    let heartbeat_ms: u64 = match opt(args, "--heartbeat-ms").map(|s| s.parse()) {
        Some(Ok(ms)) if ms > 0 => ms,
        None => 250,
        _ => {
            eprintln!("--heartbeat-ms must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let linger_ms: u64 = match opt(args, "--serve-linger-ms").map(|s| s.parse()) {
        Some(Ok(ms)) => ms,
        None => 0,
        Some(Err(_)) => {
            eprintln!("--serve-linger-ms must be an integer");
            return ExitCode::FAILURE;
        }
    };
    // Live telemetry needs a registry even without --metrics.
    let want_registry = metrics_path.is_some() || serve_addr.is_some() || heartbeat_jsonl.is_some();
    let registry = want_registry.then(|| std::sync::Arc::new(cwa_obs::Registry::new()));
    let trace_path = opt(args, "--trace");
    let tracer = trace_path
        .as_ref()
        .map(|_| std::sync::Arc::new(cwa_obs::Tracer::new()));

    // The live mailbox: the run publishes rendered documents into it,
    // the scrape server serves them on /report and /figures/*.
    let live_snapshot = live_mode.then(|| std::sync::Arc::new(cwa_obs::LiveSnapshot::new()));

    // Heartbeat sampler + scrape server, torn down after the run (and
    // after the optional linger window that CI uses to scrape a
    // finished run deterministically).
    let mut heartbeat = None;
    let mut server = None;
    if serve_addr.is_some() || heartbeat_jsonl.is_some() {
        let registry = registry.as_ref().expect("registry exists when serving");
        let hb = match cwa_obs::Heartbeat::start(
            std::sync::Arc::clone(registry),
            cwa_obs::HeartbeatConfig {
                interval: std::time::Duration::from_millis(heartbeat_ms),
                capacity: 240,
                jsonl: heartbeat_jsonl.as_ref().map(std::path::PathBuf::from),
            },
        ) {
            Ok(hb) => hb,
            Err(e) => {
                eprintln!("cannot start heartbeat sampler: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(addr) = &serve_addr {
            let state = cwa_obs::TelemetryState {
                registry: std::sync::Arc::clone(registry),
                ring: hb.ring(),
                stall_heartbeats: 20,
                live: live_snapshot.clone(),
            };
            match cwa_obs::TelemetryServer::serve(addr.as_str(), state) {
                Ok(s) => {
                    // Stderr, parseable: with `--serve 127.0.0.1:0` this
                    // line is how scripts learn the real port. The
                    // address stays the first token after "on" so the
                    // dashboard suffix never breaks that parse.
                    eprintln!(
                        "serving telemetry on {} (dashboard: http://{}/dashboard)",
                        s.local_addr(),
                        s.local_addr()
                    );
                    server = Some(s);
                }
                Err(e) => {
                    eprintln!("cannot bind telemetry server on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        heartbeat = Some(hb);
    }

    eprintln!(
        "running study at scale {scale} (seed {:#x}{}{}{}) …",
        config.sim.seed,
        if streaming { ", streaming" } else { "" },
        if live_mode { ", live" } else { "" },
        shards.map(|n| format!(", {n} shards")).unwrap_or_default()
    );
    let start = std::time::Instant::now();
    let mut study = Study::new(config).strict(strict);
    if let Some(registry) = &registry {
        study = study.with_metrics(std::sync::Arc::clone(registry));
    }
    if let Some(tracer) = &tracer {
        study = study.with_trace(std::sync::Arc::clone(tracer));
    }
    let result = if live_mode {
        study.run_live(&LiveOptions {
            shards: shards.unwrap_or(1),
            replay_speed,
            publish: live_snapshot.clone(),
            ..LiveOptions::default()
        })
    } else if let Some(n) = shards {
        study.run_sharded(n)
    } else if streaming {
        study.run_streaming()
    } else {
        study.run()
    };

    // Telemetry teardown. A successful run already set
    // `sim.progress.done` in report assembly; set it here too so a
    // *failed* run reads as done rather than stalled during the
    // linger window. Linger keeps the endpoints scrapeable after the
    // run (CI scrapes a bound-to-port-0 server without racing run
    // completion), then the server and sampler stop cleanly.
    if heartbeat.is_some() || server.is_some() {
        if let Some(registry) = &registry {
            registry.gauge("sim.progress.done").set(1);
        }
        if linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(linger_ms));
        }
        if let Some(s) = server.take() {
            s.shutdown();
        }
        if let Some(hb) = heartbeat.take() {
            hb.stop();
        }
    }

    // The flight recorder is written even when the study itself fails —
    // a trace of a failing run is exactly what one wants to look at.
    if let (Some(path), Some(tracer)) = (&trace_path, &tracer) {
        if let Err(e) = std::fs::write(path, tracer.to_chrome_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let dropped = tracer.total_dropped();
        if dropped > 0 {
            eprintln!("wrote {path} ({dropped} events dropped to ring wraparound)");
        } else {
            eprintln!("wrote {path}");
        }
    }

    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("done in {:?}\n", start.elapsed());
    println!("{}", report.render_text());

    if let (Some(path), Some(registry)) = (&metrics_path, &registry) {
        let snapshot = if path.ends_with(".prom") {
            registry.to_prometheus()
        } else {
            registry.to_json_pretty()
        };
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(dir) = opt(args, "--out") {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let writes = [
            ("report.json", report.to_json()),
            ("figure2.csv", report.figure2.to_csv()),
            ("figure3.csv", report.figure3.to_csv()),
            ("figure2.svg", report.figure2_svg()),
            ("figure3.svg", report.figure3_svg()),
            ("claims.md", report.to_markdown_rows()),
        ];
        for (name, content) in writes {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }

    let starved = report.starved();
    if !starved.is_empty() {
        eprintln!(
            "{} claim(s) starved at scale {scale} (insufficient data, not a failure)",
            starved.len()
        );
    }
    // Starvation degrades the report but only fails the run under
    // --strict; genuine out-of-band claims fail it either way.
    let ok = if strict {
        report.all_passed()
    } else {
        report.failures().is_empty()
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        if !report.failures().is_empty() {
            eprintln!("{} claim(s) outside their bands", report.failures().len());
        }
        ExitCode::FAILURE
    }
}

fn sweep(args: &[String]) -> ExitCode {
    let Some(path) = opt(args, "--scenarios") else {
        eprintln!("sweep requires --scenarios FILE (a [[scenario]] matrix)");
        return ExitCode::FAILURE;
    };
    let scale: f64 = match opt(args, "--scale").map(|s| s.parse()) {
        Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
        None => 0.02,
        _ => {
            eprintln!("--scale must be a number in (0, 1]");
            return ExitCode::FAILURE;
        }
    };
    let shards: usize = match opt(args, "--shards").map(|s| s.parse()) {
        Some(Ok(n)) => n,
        None => 1,
        Some(Err(_)) => {
            eprintln!("--shards must be a non-negative integer");
            return ExitCode::FAILURE;
        }
    };
    let seeds: u32 = match opt(args, "--seeds").map(|s| s.parse()) {
        Some(Ok(n)) if n >= 1 => n,
        None => 1,
        _ => {
            eprintln!("--seeds must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let mut base = StudyConfig::at_scale(scale);
    if let Some(seed) = opt(args, "--seed") {
        match seed.parse() {
            Ok(s) => base.sim.seed = s,
            Err(_) => {
                eprintln!("--seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if text.trim().is_empty() {
        eprintln!("{path} is empty — not a scenario matrix");
        return ExitCode::FAILURE;
    }
    let matrix = match ScenarioMatrix::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sweeping {} scenario(s) at base scale {scale} (seed {:#x}, {shards} shard(s) requested, {seeds} seed(s)) …",
        matrix.scenarios.len(),
        base.sim.seed
    );
    let start = std::time::Instant::now();
    // --seeds 1 keeps the classic survival table; more seeds switch to
    // the pass-fraction table (per-cell robustness across seeds).
    let (text, json) = if seeds > 1 {
        match run_seed_sweep(&matrix, &base, shards, seeds) {
            Ok(t) => (t.render_text(), t.to_json()),
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run_sweep(&matrix, &base, shards) {
            Ok(t) => (t.render_text(), t.to_json()),
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!("done in {:?}\n", start.elapsed());
    println!("{text}");
    if let Some(json_path) = opt(args, "--json") {
        if let Err(e) = std::fs::write(&json_path, json) {
            eprintln!("cannot write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {json_path}");
    }
    ExitCode::SUCCESS
}

/// Minimal HTTP/1.0 GET over a std `TcpStream` (the telemetry scrape
/// client: no HTTP dependency, mirrors what the server speaks).
/// Returns `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let timeout = std::time::Duration::from_secs(5);
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad address `{addr}`: {e}"))?;
    let mut stream = std::net::TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|_| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("cannot configure socket: {e}"))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")
        .map_err(|e| format!("request failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read failed: {e}"))?;
    let status: u16 = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// `cwa-repro scrape ADDR PATH` — one-shot GET, body to stdout.
fn scrape(args: &[String]) -> ExitCode {
    let (Some(addr), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: cwa-repro scrape ADDR PATH   (e.g. scrape 127.0.0.1:9100 /healthz)");
        return ExitCode::FAILURE;
    };
    match http_get(addr, path) {
        Ok((status, body)) => {
            print!("{body}");
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("HTTP {status} from {addr}{path}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Numeric accessor for the vendored JSON value.
fn json_num(v: Option<&serde_json::Value>) -> Option<f64> {
    match v {
        Some(serde_json::Value::Num(n)) => Some(n.as_f64()),
        _ => None,
    }
}

/// Renders one `/progress` document as a dashboard frame.
fn render_progress_frame(doc: &serde_json::Value) -> String {
    let state = doc.get("state").and_then(|s| s.as_str()).unwrap_or("?");
    let num = |k: &str| json_num(doc.get(k)).unwrap_or(0.0);
    let rate = |v: Option<f64>| match v {
        Some(r) if r >= 0.0 => format!("{r:.0}"),
        _ => "—".to_string(),
    };
    let eta = match json_num(doc.get("eta_s")) {
        Some(s) if state != "done" => format!("ETA {s:.0}s"),
        _ if state == "done" => "complete".to_string(),
        _ => "ETA —".to_string(),
    };
    let mut out = format!(
        "{state} | day {}/{} (hour {}/{}) | {} records | {} rec/s | {} ev/s | {} B/s | {}\n",
        num("days_done"),
        num("days_total"),
        num("hours_done"),
        num("hours_total"),
        num("records"),
        rate(json_num(doc.get("records_per_s"))),
        rate(json_num(doc.get("events_per_s"))),
        rate(json_num(doc.get("bytes_per_s"))),
        eta,
    );
    let shards = doc
        .get("shards")
        .and_then(|s| s.as_array())
        .unwrap_or_default();
    if !shards.is_empty() {
        out.push_str("  shard  hours     records     rec/s  block%   idle%\n");
        for sh in shards {
            let pct = |k: &str| match json_num(sh.get(k)) {
                Some(r) => format!("{:.1}", 100.0 * r),
                None => "—".to_string(),
            };
            out.push_str(&format!(
                "  {:<5} {:>6} {:>11} {:>9} {:>7} {:>7}\n",
                sh.get("shard").and_then(|s| s.as_str()).unwrap_or("?"),
                json_num(sh.get("hours_done")).unwrap_or(0.0),
                json_num(sh.get("records")).unwrap_or(0.0),
                rate(json_num(sh.get("records_per_s"))),
                pct("send_block_ratio"),
                pct("recv_idle_ratio"),
            ));
        }
    }
    out
}

/// Verdict cell for the claims dashboard. The vendored serializer
/// renders `Verdict::Pass`/`Fail` as variant-name strings and the
/// data-carrying `Starved { .. }` as a single-key object.
fn verdict_cell(v: Option<&serde_json::Value>) -> &'static str {
    match v {
        Some(serde_json::Value::Str(s)) => match s.as_str() {
            "Pass" => "pass",
            "Fail" => "FAIL",
            _ => "?",
        },
        Some(serde_json::Value::Object(fields)) if fields.iter().any(|(k, _)| k == "Starved") => {
            "starved"
        }
        _ => "?",
    }
}

/// Renders one `/report` envelope (cwa-live/v1) as a claims dashboard
/// frame: stream position header plus one row per claim, with the
/// cumulative verdict and the last-14-days window verdict side by
/// side. Claims that cannot be re-judged from the window (side data,
/// lifetime persistence, evicted anchor days) show `—`.
fn render_claims_frame(doc: &serde_json::Value) -> String {
    let num = |k: &str| json_num(doc.get(k)).unwrap_or(0.0);
    let done = matches!(doc.get("done"), Some(serde_json::Value::Bool(true)));
    let mut out = format!(
        "day {}/{} (hour {}) | {} | window days {}–{}\n",
        num("day"),
        num("horizon_days"),
        num("hours_seen"),
        if done { "final" } else { "live" },
        num("window_from_day"),
        num("window_to_day"),
    );
    let claims = doc
        .get("report")
        .and_then(|r| r.get("claims"))
        .and_then(|c| c.as_array())
        .unwrap_or_default();
    let window_claims = doc
        .get("window_verdicts")
        .and_then(|c| c.as_array())
        .unwrap_or_default();
    out.push_str(&format!(
        "  {:<22} {:<10} {:<8} {:<12} window measured\n",
        "claim", "cumulative", "window", "measured"
    ));
    let fmt_measured = |claim: &serde_json::Value| match json_num(claim.get("measured")) {
        Some(m) if m.is_finite() => format!("{m:.4e}"),
        _ => "—".to_owned(),
    };
    for claim in claims {
        let id = claim.get("id").and_then(|v| v.as_str()).unwrap_or("?");
        let windowed = window_claims
            .iter()
            .find(|c| c.get("id").and_then(|v| v.as_str()) == Some(id));
        out.push_str(&format!(
            "  {id:<22} {:<10} {:<8} {:<12} {}\n",
            verdict_cell(claim.get("verdict")),
            windowed.map_or("—", |c| verdict_cell(c.get("verdict"))),
            fmt_measured(claim),
            windowed.map_or("—".to_owned(), fmt_measured),
        ));
    }
    out
}

/// `cwa-repro watch [--claims] ADDR` — polls a `--serve` endpoint until
/// the run completes or the endpoint goes away after at least one
/// successful poll (run ended and the server shut down). Default mode
/// renders `/progress` as a per-shard rate/stall table; `--claims`
/// renders the live `/report` claim table of a `study --live` run.
fn watch(args: &[String]) -> ExitCode {
    let claims_mode = flag(args, "--claims");
    let mut addr = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--claims" => i += 1,
            "--interval-ms" => i += 2,
            a if !a.starts_with("--") => {
                addr = Some(a.to_owned());
                break;
            }
            _ => i += 1,
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: cwa-repro watch [--claims] ADDR [--interval-ms N]");
        return ExitCode::FAILURE;
    };
    let interval_ms: u64 = opt(args, "--interval-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let path = if claims_mode { "/report" } else { "/progress" };
    let mut successes = 0u64;
    let mut connect_failures = 0u32;
    let mut waiting_notice = false;
    loop {
        match http_get(&addr, path) {
            Ok((200, body)) => {
                connect_failures = 0;
                successes += 1;
                let doc: serde_json::Value = match serde_json::from_str(&body) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bad {path} payload: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if claims_mode {
                    print!("{}", render_claims_frame(&doc));
                    if matches!(doc.get("done"), Some(serde_json::Value::Bool(true))) {
                        println!("replay complete.");
                        return ExitCode::SUCCESS;
                    }
                } else {
                    print!("{}", render_progress_frame(&doc));
                    if doc.get("state").and_then(|s| s.as_str()) == Some("done") {
                        println!("run complete.");
                        return ExitCode::SUCCESS;
                    }
                }
            }
            // 503 on /report: the live run is up but has not published
            // its first day yet — keep polling.
            Ok((503, _)) if claims_mode => {
                connect_failures = 0;
                successes += 1;
                if !waiting_notice {
                    eprintln!("server up, waiting for the first published report …");
                    waiting_notice = true;
                }
            }
            Ok((status, body)) => {
                eprintln!("HTTP {status} from {addr}{path}");
                if status == 404 && claims_mode {
                    // The server explains itself ("not a live run …").
                    eprintln!("{}", body.trim_end());
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                if successes > 0 {
                    // Watched the run and the server is gone: it ended.
                    println!("endpoint gone after {successes} poll(s); run ended.");
                    return ExitCode::SUCCESS;
                }
                connect_failures += 1;
                if connect_failures >= 10 {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Flattens a parsed cwa-obs/v1 snapshot to `name → value` exactly
/// like `Registry::sample` does for the live registry: counters and
/// gauges by name, timers as `.total_ns`/`.count`, histograms as
/// `.count`/`.sum`.
fn flatten_obs_snapshot(
    doc: &serde_json::Value,
) -> Result<std::collections::BTreeMap<String, i64>, String> {
    if doc.get("schema").and_then(|s| s.as_str()) != Some("cwa-obs/v1") {
        return Err("not a cwa-obs/v1 snapshot (missing/unknown schema)".to_string());
    }
    let metrics = doc
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or_else(|| "snapshot has no metrics object".to_string())?;
    let mut out = std::collections::BTreeMap::new();
    for (name, m) in metrics {
        let geti = |k: &str| match m.get(k) {
            Some(serde_json::Value::Num(n)) => n.as_i64().unwrap_or(0),
            _ => 0,
        };
        match m.get("type").and_then(|t| t.as_str()).unwrap_or("") {
            "counter" | "gauge" => {
                out.insert(name.clone(), geti("value"));
            }
            "timer" => {
                out.insert(format!("{name}.total_ns"), geti("total_ns"));
                out.insert(format!("{name}.count"), geti("count"));
            }
            "histogram" => {
                out.insert(format!("{name}.count"), geti("count"));
                out.insert(format!("{name}.sum"), geti("sum"));
            }
            _ => {}
        }
    }
    Ok(out)
}

/// One row of an obs-diff: values in A and B (None = absent).
type DiffRow = (String, Option<i64>, Option<i64>);

/// Joins two flattened snapshots over the union of their metric names.
fn diff_snapshots(
    a: &std::collections::BTreeMap<String, i64>,
    b: &std::collections::BTreeMap<String, i64>,
) -> Vec<DiffRow> {
    let names: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    names
        .into_iter()
        .map(|name| (name.clone(), a.get(name).copied(), b.get(name).copied()))
        .collect()
}

/// Relative change B vs A in percent (None when A is 0 or absent).
fn rel_change_pct(a: Option<i64>, b: Option<i64>) -> Option<f64> {
    match (a, b) {
        (Some(a), Some(b)) if a != 0 => Some(100.0 * (b - a) as f64 / a.abs() as f64),
        _ => None,
    }
}

/// `phase.*` timer rows whose total grew by more than `threshold_pct`.
fn phase_regressions(rows: &[DiffRow], threshold_pct: f64) -> Vec<(String, f64)> {
    rows.iter()
        .filter(|(name, ..)| name.starts_with("phase.") && name.ends_with(".total_ns"))
        .filter_map(|(name, a, b)| {
            let rel = rel_change_pct(*a, *b)?;
            (rel > threshold_pct).then(|| (name.clone(), rel))
        })
        .collect()
}

/// `cwa-repro obs-diff A.json B.json [--threshold PCT]`.
fn obs_diff(args: &[String]) -> ExitCode {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (Some(path_a), Some(path_b)) = (files.first(), files.get(1)) else {
        eprintln!("usage: cwa-repro obs-diff A.json B.json [--threshold PCT]");
        return ExitCode::FAILURE;
    };
    let threshold: Option<f64> = match opt(args, "--threshold").map(|s| s.parse()) {
        Some(Ok(pct)) => Some(pct),
        None => None,
        Some(Err(_)) => {
            eprintln!("--threshold must be a number (percent)");
            return ExitCode::FAILURE;
        }
    };
    let load = |path: &str| -> Result<std::collections::BTreeMap<String, i64>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if text.trim().is_empty() {
            return Err(format!("{path} is empty — not a metrics snapshot"));
        }
        let doc: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
        flatten_obs_snapshot(&doc).map_err(|e| format!("{path}: {e}"))
    };
    let (a, b) = match (load(path_a), load(path_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let rows = diff_snapshots(&a, &b);
    let changed: Vec<&DiffRow> = rows.iter().filter(|(_, a, b)| a != b).collect();
    println!(
        "{} metrics compared ({} changed, {} only in A, {} only in B)",
        rows.len(),
        changed
            .iter()
            .filter(|(_, a, b)| a.is_some() && b.is_some())
            .count(),
        rows.iter().filter(|(_, _, b)| b.is_none()).count(),
        rows.iter().filter(|(_, a, _)| a.is_none()).count(),
    );
    if !changed.is_empty() {
        println!(
            "{:<52} {:>16} {:>16} {:>12} {:>9}",
            "metric", "A", "B", "delta", "rel"
        );
        for (name, va, vb) in &changed {
            let fmt = |v: Option<i64>| match v {
                Some(v) => v.to_string(),
                None => "—".to_string(),
            };
            let delta = match (va, vb) {
                (Some(a), Some(b)) => format!("{:+}", b - a),
                _ => "—".to_string(),
            };
            let rel = match rel_change_pct(*va, *vb) {
                Some(pct) => format!("{pct:+.1}%"),
                None => "—".to_string(),
            };
            println!(
                "{name:<52} {:>16} {:>16} {delta:>12} {rel:>9}",
                fmt(*va),
                fmt(*vb)
            );
        }
    }

    if let Some(threshold) = threshold {
        let regressions = phase_regressions(&rows, threshold);
        if regressions.is_empty() {
            println!("no phase.* timer regressed beyond {threshold}%");
        } else {
            for (name, rel) in &regressions {
                eprintln!("REGRESSION {name}: {rel:+.1}% (threshold {threshold}%)");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One (pid, tid) track's complete spans: `(ts_us, dur_us, name)`.
type TrackSpans = Vec<(f64, f64, String)>;

/// Computes per-name *self* time for one track: a span's self time is
/// its duration minus the durations of spans nested inside it (the
/// standard flame-graph attribution). Returns the self-time map plus
/// the track's wall-clock extent `(first_start, last_end)`.
fn track_self_times(spans: &mut TrackSpans) -> (std::collections::BTreeMap<String, f64>, f64) {
    // Parents before children: ascending start, longest-first on ties.
    spans.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite ts")
            .then(b.1.partial_cmp(&a.1).expect("finite dur"))
    });
    let mut selfs: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    // Open-span stack: (end_us, dur_us, name, nested_child_dur_us).
    let mut stack: Vec<(f64, f64, String, f64)> = Vec::new();
    let close = |stack: &mut Vec<(f64, f64, String, f64)>,
                 selfs: &mut std::collections::BTreeMap<String, f64>| {
        let (_, dur, name, child) = stack.pop().expect("non-empty stack");
        *selfs.entry(name).or_insert(0.0) += (dur - child).max(0.0);
        if let Some(parent) = stack.last_mut() {
            parent.3 += dur;
        }
    };
    let mut first = f64::INFINITY;
    let mut last = 0.0f64;
    for (ts, dur, name) in spans.iter() {
        first = first.min(*ts);
        last = last.max(ts + dur);
        while stack.last().is_some_and(|top| *ts >= top.0 - 1e-6) {
            close(&mut stack, &mut selfs);
        }
        stack.push((ts + dur, *dur, name.clone(), 0.0));
    }
    while !stack.is_empty() {
        close(&mut stack, &mut selfs);
    }
    let wall = if first.is_finite() { last - first } else { 0.0 };
    (selfs, wall)
}

/// Summarizes a `--trace` capture: per-thread self-time broken down by
/// span name, with the stall split (send-block / receive-idle) the
/// sharded pipeline records, so a backpressured shard is visible at a
/// glance without loading the trace into Perfetto.
fn trace_summary(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cwa-repro trace-summary FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if text.trim().is_empty() {
        eprintln!("{path} is empty — not a trace capture");
        return ExitCode::FAILURE;
    }
    let root: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let num_u32 = |v: &serde_json::Value| -> Option<u32> {
        match v {
            serde_json::Value::Num(n) => n.as_u64().map(|x| x as u32),
            _ => None,
        }
    };
    let num_f64 = |v: &serde_json::Value| -> Option<f64> {
        match v {
            serde_json::Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    };
    let Some(events) = root.get("traceEvents").and_then(|e| e.as_array()) else {
        eprintln!("{path}: no traceEvents array — not a cwa --trace capture?");
        return ExitCode::FAILURE;
    };
    let dropped = root
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(num_f64)
        .unwrap_or(0.0);

    let mut proc_names: std::collections::BTreeMap<u32, String> = std::collections::BTreeMap::new();
    let mut thread_names: std::collections::BTreeMap<(u32, u32), String> =
        std::collections::BTreeMap::new();
    let mut tracks: std::collections::BTreeMap<(u32, u32), TrackSpans> =
        std::collections::BTreeMap::new();
    let mut instants = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let pid = ev.get("pid").and_then(&num_u32).unwrap_or(0);
        let tid = ev.get("tid").and_then(&num_u32).unwrap_or(0);
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        match ph {
            "M" => {
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str().map(str::to_owned));
                match (name, label) {
                    ("process_name", Some(label)) => {
                        proc_names.insert(pid, label);
                    }
                    ("thread_name", Some(label)) => {
                        thread_names.insert((pid, tid), label);
                    }
                    _ => {}
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(&num_f64).unwrap_or(0.0);
                let dur = ev.get("dur").and_then(&num_f64).unwrap_or(0.0);
                // A hand-edited or truncated capture can hold NaN here;
                // track_self_times sorts on ts/dur and requires finite.
                if !ts.is_finite() || !dur.is_finite() {
                    continue;
                }
                tracks
                    .entry((pid, tid))
                    .or_default()
                    .push((ts, dur, name.to_owned()));
            }
            "i" => instants += 1,
            _ => {}
        }
    }

    let span_total: usize = tracks.values().map(Vec::len).sum();
    println!("{path}: {span_total} spans, {instants} instants, {dropped} dropped");
    for ((pid, tid), spans) in &mut tracks {
        let process = proc_names
            .get(pid)
            .cloned()
            .unwrap_or_else(|| format!("pid{pid}"));
        let thread = thread_names
            .get(&(*pid, *tid))
            .cloned()
            .unwrap_or_else(|| format!("tid{tid}"));
        let (selfs, wall) = track_self_times(spans);
        let wall = wall.max(1e-9);
        let block = selfs.get("send_block").copied().unwrap_or(0.0);
        let idle = selfs.get("recv_idle").copied().unwrap_or(0.0);
        // `+ 0.0` normalizes a negative zero out of the float sum so a
        // stall-only track prints "util 0.0%", not "util -0.0%".
        let busy: f64 = selfs
            .iter()
            .filter(|(name, _)| name.as_str() != "send_block" && name.as_str() != "recv_idle")
            .map(|(_, us)| us)
            .sum::<f64>()
            .max(0.0)
            + 0.0;
        println!(
            "\n[{process}/{thread}] wall {:.3} ms — util {:.1}%, block {:.1}%, idle {:.1}%",
            wall / 1000.0,
            100.0 * busy / wall,
            100.0 * block / wall,
            100.0 * idle / wall,
        );
        let mut rows: Vec<(&String, &f64)> = selfs.iter().collect();
        rows.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite self time"));
        for (name, self_us) in rows {
            println!(
                "    {name:<14} {:>10.3} ms  {:>5.1}%",
                self_us / 1000.0,
                100.0 * self_us / wall,
            );
        }
    }
    ExitCode::SUCCESS
}

fn dns(args: &[String]) -> ExitCode {
    let days: u32 = opt(args, "--days")
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let out = Simulation::new(SimConfig {
        days,
        scale: 0.001,
        ..SimConfig::test_small()
    })
    .run();
    let fmt_rank = |r: u64| {
        if r > 1_000_000_000_000 {
            "—".to_owned()
        } else {
            r.to_string()
        }
    };
    println!("day  date    api_rank      website_rank  api_in_top1M");
    for d in 0..days as usize {
        println!(
            "{:<4} Jun {:<3} {:<13} {:<13} {}",
            d,
            15 + d,
            fmt_rank(out.dns.api_rank[d]),
            fmt_rank(out.dns.website_rank[d]),
            if out.dns.api_top1m_days.contains(&(d as u32)) {
                "yes"
            } else {
                ""
            }
        );
    }
    ExitCode::SUCCESS
}

fn ablation() -> ExitCode {
    println!("June-23 re-surge (Jun 23–25 / Jun 20–22 true CWA flows):");
    for (label, kind) in [
        ("paper (outbreaks + news)", ScenarioKind::Paper),
        (
            "outbreaks without news  ",
            ScenarioKind::OutbreaksWithoutNews,
        ),
        ("quiet                   ", ScenarioKind::Quiet),
    ] {
        let out = Simulation::new(SimConfig {
            scale: 0.008,
            scenario: kind,
            ..SimConfig::default()
        })
        .run();
        let t = &out.truth.cwa_flows_by_hour;
        let pre: u64 = t[5 * 24..8 * 24].iter().sum();
        let post: u64 = t[8 * 24..11 * 24].iter().sum();
        println!("  {label}: {:.3}x", post as f64 / pre.max(1) as f64);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(json: &str) -> std::collections::BTreeMap<String, i64> {
        let doc: serde_json::Value = serde_json::from_str(json).expect("valid JSON");
        flatten_obs_snapshot(&doc).expect("valid snapshot")
    }

    const A: &str = r#"{"schema":"cwa-obs/v1","metrics":{
        "netflow.collector.records":{"type":"counter","value":1000},
        "queue.depth":{"type":"gauge","value":-2},
        "sizes":{"type":"histogram","count":4,"sum":40,"min":10,"max":10,"buckets":[]},
        "phase.analyze":{"type":"timer","count":1,"total_ns":1000000,"mean_ns":1000000}}}"#;

    #[test]
    fn flatten_matches_registry_sample_layout() {
        let s = snapshot(A);
        assert_eq!(s.get("netflow.collector.records"), Some(&1000));
        assert_eq!(s.get("queue.depth"), Some(&-2));
        assert_eq!(s.get("sizes.count"), Some(&4));
        assert_eq!(s.get("sizes.sum"), Some(&40));
        assert_eq!(s.get("phase.analyze.total_ns"), Some(&1_000_000));
        assert_eq!(s.get("phase.analyze.count"), Some(&1));
    }

    #[test]
    fn flatten_rejects_foreign_schema() {
        let doc: serde_json::Value =
            serde_json::from_str(r#"{"schema":"other/v2","metrics":{}}"#).unwrap();
        assert!(flatten_obs_snapshot(&doc).is_err());
    }

    #[test]
    fn diff_joins_over_union_of_names() {
        let a = snapshot(A);
        let mut b = a.clone();
        b.insert("netflow.collector.records".into(), 1500);
        b.remove("queue.depth");
        b.insert("new.counter".into(), 7);
        let rows = diff_snapshots(&a, &b);
        let row = |name: &str| rows.iter().find(|(n, ..)| n == name).unwrap();
        assert_eq!(row("netflow.collector.records").1, Some(1000));
        assert_eq!(row("netflow.collector.records").2, Some(1500));
        assert_eq!(row("queue.depth").2, None, "absent in B");
        assert_eq!(row("new.counter").1, None, "absent in A");
    }

    #[test]
    fn relative_change_guards_division_by_zero() {
        assert_eq!(rel_change_pct(Some(100), Some(150)), Some(50.0));
        assert_eq!(rel_change_pct(Some(0), Some(10)), None);
        assert_eq!(rel_change_pct(None, Some(10)), None);
        // Negative baseline (a gauge): relative to |A|.
        assert_eq!(rel_change_pct(Some(-100), Some(-50)), Some(50.0));
    }

    #[test]
    fn claims_frame_shows_window_column_beside_cumulative() {
        let doc: serde_json::Value = serde_json::from_str(
            r#"{
            "schema":"cwa-live/v1","day":3,"hours_seen":72,"horizon_days":11,
            "done":false,"window_from_day":0,"window_to_day":3,
            "window_verdicts":[
                {"id":"C1MatchingFlows","verdict":"Pass","measured":3400000.0}
            ],
            "report":{"claims":[
                {"id":"C1MatchingFlows","verdict":"Pass","measured":3300000.0},
                {"id":"C4aPersistenceMedian","verdict":"Fail","measured":0.5}
            ]}}"#,
        )
        .expect("valid envelope");
        let frame = render_claims_frame(&doc);
        assert!(frame.contains("window days 0–3"), "{frame}");
        let c1 = frame
            .lines()
            .find(|l| l.contains("C1MatchingFlows"))
            .expect("C1 row");
        assert_eq!(c1.matches("pass").count(), 2, "both verdicts: {c1}");
        assert!(c1.contains("3.4000e6"), "window measured: {c1}");
        let c4 = frame
            .lines()
            .find(|l| l.contains("C4aPersistenceMedian"))
            .expect("C4a row");
        assert!(c4.contains("FAIL"), "{c4}");
        assert!(c4.contains("—"), "no window verdict: {c4}");
    }

    #[test]
    fn regression_gate_only_fires_on_phase_timers() {
        let a = snapshot(A);
        let mut b = a.clone();
        // Timer doubled (+100%) and a non-phase counter exploded.
        b.insert("phase.analyze.total_ns".into(), 2_000_000);
        b.insert("netflow.collector.records".into(), 1_000_000);
        let rows = diff_snapshots(&a, &b);
        assert!(
            phase_regressions(&rows, 150.0).is_empty(),
            "+100% is within a 150% threshold"
        );
        let hits = phase_regressions(&rows, 50.0);
        assert_eq!(hits.len(), 1, "only the phase timer counts: {hits:?}");
        assert_eq!(hits[0].0, "phase.analyze.total_ns");
        assert!((hits[0].1 - 100.0).abs() < 1e-9);
    }
}
