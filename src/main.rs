//! `cwa-repro` — command-line front end for the reproduction.
//!
//! ```text
//! cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE]
//! cwa-repro dns   [--days N]
//! cwa-repro ablation
//! cwa-repro help
//! ```

use std::process::ExitCode;

use cwa_core::{Study, StudyConfig};
use cwa_simnet::sim::ScenarioKind;
use cwa_simnet::{SimConfig, Simulation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("study") => study(&args[1..]),
        Some("dns") => dns(&args[1..]),
        Some("ablation") => ablation(),
        Some("help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "cwa-repro — reproduction of the SIGCOMM'20 Corona-Warn-App measurement study\n\
     \n\
     USAGE:\n\
     \x20 cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE]\n\
     \x20     run the full study and print the paper-vs-measured report;\n\
     \x20     --streaming fuses simulate+analyze into one single-pass\n\
     \x20     pipeline that never materializes the full record set\n\
     \x20     (same report modulo phase timings);\n\
     \x20     --shards N splits the router fleet across N worker threads,\n\
     \x20     each filtering+analyzing its own record partition, merged\n\
     \x20     deterministically at the end (same report as --streaming);\n\
     \x20     --metrics writes an observability snapshot (cwa-obs/v1 JSON)\n\
     \x20 cwa-repro dns [--days N]\n\
     \x20     print the Umbrella-style DNS rank model output per day\n\
     \x20 cwa-repro ablation\n\
     \x20     compare the paper scenario against the no-news counterfactual\n\
     \x20 cwa-repro help\n"
        .to_owned()
}

/// Minimal `--key value` / `--flag` parser.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn study(args: &[String]) -> ExitCode {
    let scale: f64 = match opt(args, "--scale").map(|s| s.parse()) {
        Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
        None => 0.02,
        _ => {
            eprintln!("--scale must be a number in (0, 1]");
            return ExitCode::FAILURE;
        }
    };
    let mut config = StudyConfig::at_scale(scale);
    if let Some(seed) = opt(args, "--seed") {
        match seed.parse() {
            Ok(s) => config.sim.seed = s,
            Err(_) => {
                eprintln!("--seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    config.sim.parallel = flag(args, "--parallel");
    let streaming = flag(args, "--streaming");
    let shards: Option<usize> = match opt(args, "--shards").map(|s| s.parse()) {
        Some(Ok(n)) => Some(n),
        None => None,
        Some(Err(_)) => {
            eprintln!("--shards must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let metrics_path = opt(args, "--metrics");
    let registry = metrics_path
        .as_ref()
        .map(|_| std::sync::Arc::new(cwa_obs::Registry::new()));

    eprintln!(
        "running study at scale {scale} (seed {:#x}{}{}) …",
        config.sim.seed,
        if streaming { ", streaming" } else { "" },
        shards.map(|n| format!(", {n} shards")).unwrap_or_default()
    );
    let start = std::time::Instant::now();
    let mut study = Study::new(config);
    if let Some(registry) = &registry {
        study = study.with_metrics(std::sync::Arc::clone(registry));
    }
    let result = if let Some(n) = shards {
        study.run_sharded(n)
    } else if streaming {
        study.run_streaming()
    } else {
        study.run()
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("done in {:?}\n", start.elapsed());
    println!("{}", report.render_text());

    if let (Some(path), Some(registry)) = (&metrics_path, &registry) {
        if let Err(e) = std::fs::write(path, registry.to_json_pretty()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(dir) = opt(args, "--out") {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let writes = [
            ("report.json", report.to_json()),
            ("figure2.csv", report.figure2.to_csv()),
            ("figure3.csv", report.figure3.to_csv()),
            ("figure2.svg", report.figure2_svg()),
            ("figure3.svg", report.figure3_svg()),
            ("claims.md", report.to_markdown_rows()),
        ];
        for (name, content) in writes {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }

    if report.all_passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} claim(s) outside their bands", report.failures().len());
        ExitCode::FAILURE
    }
}

fn dns(args: &[String]) -> ExitCode {
    let days: u32 = opt(args, "--days")
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let out = Simulation::new(SimConfig {
        days,
        scale: 0.001,
        ..SimConfig::test_small()
    })
    .run();
    let fmt_rank = |r: u64| {
        if r > 1_000_000_000_000 {
            "—".to_owned()
        } else {
            r.to_string()
        }
    };
    println!("day  date    api_rank      website_rank  api_in_top1M");
    for d in 0..days as usize {
        println!(
            "{:<4} Jun {:<3} {:<13} {:<13} {}",
            d,
            15 + d,
            fmt_rank(out.dns.api_rank[d]),
            fmt_rank(out.dns.website_rank[d]),
            if out.dns.api_top1m_days.contains(&(d as u32)) {
                "yes"
            } else {
                ""
            }
        );
    }
    ExitCode::SUCCESS
}

fn ablation() -> ExitCode {
    println!("June-23 re-surge (Jun 23–25 / Jun 20–22 true CWA flows):");
    for (label, kind) in [
        ("paper (outbreaks + news)", ScenarioKind::Paper),
        (
            "outbreaks without news  ",
            ScenarioKind::OutbreaksWithoutNews,
        ),
        ("quiet                   ", ScenarioKind::Quiet),
    ] {
        let out = Simulation::new(SimConfig {
            scale: 0.008,
            scenario: kind,
            ..SimConfig::default()
        })
        .run();
        let t = &out.truth.cwa_flows_by_hour;
        let pre: u64 = t[5 * 24..8 * 24].iter().sum();
        let post: u64 = t[8 * 24..11 * 24].iter().sum();
        println!("  {label}: {:.3}x", post as f64 / pre.max(1) as f64);
    }
    ExitCode::SUCCESS
}
