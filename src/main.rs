//! `cwa-repro` — command-line front end for the reproduction.
//!
//! ```text
//! cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE] [--trace FILE]
//! cwa-repro trace-summary FILE
//! cwa-repro dns   [--days N]
//! cwa-repro ablation
//! cwa-repro help
//! ```

use std::process::ExitCode;

use cwa_core::{Study, StudyConfig};
use cwa_simnet::sim::ScenarioKind;
use cwa_simnet::{SimConfig, Simulation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("study") => study(&args[1..]),
        Some("trace-summary") => trace_summary(&args[1..]),
        Some("dns") => dns(&args[1..]),
        Some("ablation") => ablation(),
        Some("help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "cwa-repro — reproduction of the SIGCOMM'20 Corona-Warn-App measurement study\n\
     \n\
     USAGE:\n\
     \x20 cwa-repro study [--scale S] [--seed N] [--parallel] [--streaming] [--shards N] [--out DIR] [--metrics FILE] [--trace FILE]\n\
     \x20     run the full study and print the paper-vs-measured report;\n\
     \x20     --streaming fuses simulate+analyze into one single-pass\n\
     \x20     pipeline that never materializes the full record set\n\
     \x20     (same report modulo phase timings);\n\
     \x20     --shards N splits the router fleet across N worker threads,\n\
     \x20     each filtering+analyzing its own record partition, merged\n\
     \x20     deterministically at the end (same report as --streaming);\n\
     \x20     --metrics writes an observability snapshot — cwa-obs/v1\n\
     \x20     JSON, or Prometheus text exposition when FILE ends in .prom;\n\
     \x20     --trace records a flight-recorder timeline of every pipeline\n\
     \x20     stage (produce/export/drain/filter/analyze + channel stalls)\n\
     \x20     as Chrome trace-event JSON — load it in Perfetto or summarize\n\
     \x20     it with `cwa-repro trace-summary`\n\
     \x20 cwa-repro trace-summary FILE\n\
     \x20     print a per-thread self-time breakdown (utilization, send\n\
     \x20     block, receive idle) of a --trace capture\n\
     \x20 cwa-repro dns [--days N]\n\
     \x20     print the Umbrella-style DNS rank model output per day\n\
     \x20 cwa-repro ablation\n\
     \x20     compare the paper scenario against the no-news counterfactual\n\
     \x20 cwa-repro help\n"
        .to_owned()
}

/// Minimal `--key value` / `--flag` parser.
fn opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn study(args: &[String]) -> ExitCode {
    let scale: f64 = match opt(args, "--scale").map(|s| s.parse()) {
        Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
        None => 0.02,
        _ => {
            eprintln!("--scale must be a number in (0, 1]");
            return ExitCode::FAILURE;
        }
    };
    let mut config = StudyConfig::at_scale(scale);
    if let Some(seed) = opt(args, "--seed") {
        match seed.parse() {
            Ok(s) => config.sim.seed = s,
            Err(_) => {
                eprintln!("--seed must be an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    config.sim.parallel = flag(args, "--parallel");
    let streaming = flag(args, "--streaming");
    let shards: Option<usize> = match opt(args, "--shards").map(|s| s.parse()) {
        Some(Ok(n)) => Some(n),
        None => None,
        Some(Err(_)) => {
            eprintln!("--shards must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let metrics_path = opt(args, "--metrics");
    let registry = metrics_path
        .as_ref()
        .map(|_| std::sync::Arc::new(cwa_obs::Registry::new()));
    let trace_path = opt(args, "--trace");
    let tracer = trace_path
        .as_ref()
        .map(|_| std::sync::Arc::new(cwa_obs::Tracer::new()));

    eprintln!(
        "running study at scale {scale} (seed {:#x}{}{}) …",
        config.sim.seed,
        if streaming { ", streaming" } else { "" },
        shards.map(|n| format!(", {n} shards")).unwrap_or_default()
    );
    let start = std::time::Instant::now();
    let mut study = Study::new(config);
    if let Some(registry) = &registry {
        study = study.with_metrics(std::sync::Arc::clone(registry));
    }
    if let Some(tracer) = &tracer {
        study = study.with_trace(std::sync::Arc::clone(tracer));
    }
    let result = if let Some(n) = shards {
        study.run_sharded(n)
    } else if streaming {
        study.run_streaming()
    } else {
        study.run()
    };

    // The flight recorder is written even when the study itself fails —
    // a trace of a failing run is exactly what one wants to look at.
    if let (Some(path), Some(tracer)) = (&trace_path, &tracer) {
        if let Err(e) = std::fs::write(path, tracer.to_chrome_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let dropped = tracer.total_dropped();
        if dropped > 0 {
            eprintln!("wrote {path} ({dropped} events dropped to ring wraparound)");
        } else {
            eprintln!("wrote {path}");
        }
    }

    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("done in {:?}\n", start.elapsed());
    println!("{}", report.render_text());

    if let (Some(path), Some(registry)) = (&metrics_path, &registry) {
        let snapshot = if path.ends_with(".prom") {
            registry.to_prometheus()
        } else {
            registry.to_json_pretty()
        };
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(dir) = opt(args, "--out") {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let writes = [
            ("report.json", report.to_json()),
            ("figure2.csv", report.figure2.to_csv()),
            ("figure3.csv", report.figure3.to_csv()),
            ("figure2.svg", report.figure2_svg()),
            ("figure3.svg", report.figure3_svg()),
            ("claims.md", report.to_markdown_rows()),
        ];
        for (name, content) in writes {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }

    if report.all_passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} claim(s) outside their bands", report.failures().len());
        ExitCode::FAILURE
    }
}

/// One (pid, tid) track's complete spans: `(ts_us, dur_us, name)`.
type TrackSpans = Vec<(f64, f64, String)>;

/// Computes per-name *self* time for one track: a span's self time is
/// its duration minus the durations of spans nested inside it (the
/// standard flame-graph attribution). Returns the self-time map plus
/// the track's wall-clock extent `(first_start, last_end)`.
fn track_self_times(spans: &mut TrackSpans) -> (std::collections::BTreeMap<String, f64>, f64) {
    // Parents before children: ascending start, longest-first on ties.
    spans.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite ts")
            .then(b.1.partial_cmp(&a.1).expect("finite dur"))
    });
    let mut selfs: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    // Open-span stack: (end_us, dur_us, name, nested_child_dur_us).
    let mut stack: Vec<(f64, f64, String, f64)> = Vec::new();
    let close = |stack: &mut Vec<(f64, f64, String, f64)>,
                 selfs: &mut std::collections::BTreeMap<String, f64>| {
        let (_, dur, name, child) = stack.pop().expect("non-empty stack");
        *selfs.entry(name).or_insert(0.0) += (dur - child).max(0.0);
        if let Some(parent) = stack.last_mut() {
            parent.3 += dur;
        }
    };
    let mut first = f64::INFINITY;
    let mut last = 0.0f64;
    for (ts, dur, name) in spans.iter() {
        first = first.min(*ts);
        last = last.max(ts + dur);
        while stack.last().is_some_and(|top| *ts >= top.0 - 1e-6) {
            close(&mut stack, &mut selfs);
        }
        stack.push((ts + dur, *dur, name.clone(), 0.0));
    }
    while !stack.is_empty() {
        close(&mut stack, &mut selfs);
    }
    let wall = if first.is_finite() { last - first } else { 0.0 };
    (selfs, wall)
}

/// Summarizes a `--trace` capture: per-thread self-time broken down by
/// span name, with the stall split (send-block / receive-idle) the
/// sharded pipeline records, so a backpressured shard is visible at a
/// glance without loading the trace into Perfetto.
fn trace_summary(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cwa-repro trace-summary FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let num_u32 = |v: &serde_json::Value| -> Option<u32> {
        match v {
            serde_json::Value::Num(n) => n.as_u64().map(|x| x as u32),
            _ => None,
        }
    };
    let num_f64 = |v: &serde_json::Value| -> Option<f64> {
        match v {
            serde_json::Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    };
    let Some(events) = root.get("traceEvents").and_then(|e| e.as_array()) else {
        eprintln!("{path}: no traceEvents array — not a cwa --trace capture?");
        return ExitCode::FAILURE;
    };
    let dropped = root
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(num_f64)
        .unwrap_or(0.0);

    let mut proc_names: std::collections::BTreeMap<u32, String> = std::collections::BTreeMap::new();
    let mut thread_names: std::collections::BTreeMap<(u32, u32), String> =
        std::collections::BTreeMap::new();
    let mut tracks: std::collections::BTreeMap<(u32, u32), TrackSpans> =
        std::collections::BTreeMap::new();
    let mut instants = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let pid = ev.get("pid").and_then(&num_u32).unwrap_or(0);
        let tid = ev.get("tid").and_then(&num_u32).unwrap_or(0);
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        match ph {
            "M" => {
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str().map(str::to_owned));
                match (name, label) {
                    ("process_name", Some(label)) => {
                        proc_names.insert(pid, label);
                    }
                    ("thread_name", Some(label)) => {
                        thread_names.insert((pid, tid), label);
                    }
                    _ => {}
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(&num_f64).unwrap_or(0.0);
                let dur = ev.get("dur").and_then(&num_f64).unwrap_or(0.0);
                tracks
                    .entry((pid, tid))
                    .or_default()
                    .push((ts, dur, name.to_owned()));
            }
            "i" => instants += 1,
            _ => {}
        }
    }

    let span_total: usize = tracks.values().map(Vec::len).sum();
    println!("{path}: {span_total} spans, {instants} instants, {dropped} dropped");
    for ((pid, tid), spans) in &mut tracks {
        let process = proc_names
            .get(pid)
            .cloned()
            .unwrap_or_else(|| format!("pid{pid}"));
        let thread = thread_names
            .get(&(*pid, *tid))
            .cloned()
            .unwrap_or_else(|| format!("tid{tid}"));
        let (selfs, wall) = track_self_times(spans);
        let wall = wall.max(1e-9);
        let block = selfs.get("send_block").copied().unwrap_or(0.0);
        let idle = selfs.get("recv_idle").copied().unwrap_or(0.0);
        // `+ 0.0` normalizes a negative zero out of the float sum so a
        // stall-only track prints "util 0.0%", not "util -0.0%".
        let busy: f64 = selfs
            .iter()
            .filter(|(name, _)| name.as_str() != "send_block" && name.as_str() != "recv_idle")
            .map(|(_, us)| us)
            .sum::<f64>()
            .max(0.0)
            + 0.0;
        println!(
            "\n[{process}/{thread}] wall {:.3} ms — util {:.1}%, block {:.1}%, idle {:.1}%",
            wall / 1000.0,
            100.0 * busy / wall,
            100.0 * block / wall,
            100.0 * idle / wall,
        );
        let mut rows: Vec<(&String, &f64)> = selfs.iter().collect();
        rows.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite self time"));
        for (name, self_us) in rows {
            println!(
                "    {name:<14} {:>10.3} ms  {:>5.1}%",
                self_us / 1000.0,
                100.0 * self_us / wall,
            );
        }
    }
    ExitCode::SUCCESS
}

fn dns(args: &[String]) -> ExitCode {
    let days: u32 = opt(args, "--days")
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let out = Simulation::new(SimConfig {
        days,
        scale: 0.001,
        ..SimConfig::test_small()
    })
    .run();
    let fmt_rank = |r: u64| {
        if r > 1_000_000_000_000 {
            "—".to_owned()
        } else {
            r.to_string()
        }
    };
    println!("day  date    api_rank      website_rank  api_in_top1M");
    for d in 0..days as usize {
        println!(
            "{:<4} Jun {:<3} {:<13} {:<13} {}",
            d,
            15 + d,
            fmt_rank(out.dns.api_rank[d]),
            fmt_rank(out.dns.website_rank[d]),
            if out.dns.api_top1m_days.contains(&(d as u32)) {
                "yes"
            } else {
                ""
            }
        );
    }
    ExitCode::SUCCESS
}

fn ablation() -> ExitCode {
    println!("June-23 re-surge (Jun 23–25 / Jun 20–22 true CWA flows):");
    for (label, kind) in [
        ("paper (outbreaks + news)", ScenarioKind::Paper),
        (
            "outbreaks without news  ",
            ScenarioKind::OutbreaksWithoutNews,
        ),
        ("quiet                   ", ScenarioKind::Quiet),
    ] {
        let out = Simulation::new(SimConfig {
            scale: 0.008,
            scenario: kind,
            ..SimConfig::default()
        })
        .run();
        let t = &out.truth.cwa_flows_by_hour;
        let pre: u64 = t[5 * 24..8 * 24].iter().sum();
        let post: u64 = t[8 * 24..11 * 24].iter().sum();
        println!("  {label}: {:.3}x", post as f64 / pre.max(1) as f64);
    }
    ExitCode::SUCCESS
}
