//! App adoption: a Bass-diffusion model with launch burst and media
//! forcing, calibrated to the official download numbers the paper plots
//! in Figure 2 (statista / Apple / Google store counts):
//!
//! * **6.4 M downloads 36 hours after release** (§3),
//! * ≈ 12 M within the first week,
//! * **16.2 M by July 24** (§3).
//!
//! The shape is a classic product launch: an enormous day-one innovation
//! burst (the app was front-page news), rapid decay into a steady
//! trickle of imitation-driven installs, plus pulses whenever national
//! news cover outbreaks. Downloads are allocated to districts by
//! population weighted with an urbanization affinity (smartphone
//! penetration and early-adopter density are higher in cities).

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, Germany, UrbanClass};

use crate::events::Scenario;
use crate::timeline::{Timeline, RELEASE_HOUR};

/// Which adoption-curve family the model integrates. The paper's
/// history is Bass-with-burst; the other families exist for scenario
/// sweeps asking "which claims survive if Germany had adopted the app
/// differently?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdoptionFamily {
    /// Bass diffusion with a decaying launch burst (the calibrated
    /// default that matches the store download milestones).
    Bass,
    /// Logistic growth: no launch burst, pure innovation + imitation.
    /// A slow-news launch — the 36 h milestone cannot be met.
    Logistic,
    /// Constant-rate installs: `p_innovation × market_size` per day
    /// (media-modulated), capped at the market size.
    Linear,
}

/// Bass-with-burst adoption parameters (rates are per day).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdoptionConfig {
    /// The curve family to integrate.
    pub family: AdoptionFamily,
    /// Potential market size (people who would ever install), persons.
    pub market_size: f64,
    /// Peak innovation rate at release.
    pub launch_burst: f64,
    /// Burst decay time constant, days.
    pub burst_decay_days: f64,
    /// Long-run innovation (external influence) rate.
    pub p_innovation: f64,
    /// Imitation (word-of-mouth) coefficient.
    pub q_imitation: f64,
    /// Urban-affinity multipliers by class [Metro, Urban, Suburban, Rural].
    pub urban_affinity: [f64; 4],
}

impl Default for AdoptionConfig {
    fn default() -> Self {
        AdoptionConfig {
            family: AdoptionFamily::Bass,
            market_size: 20.0e6,
            launch_burst: 0.34,
            burst_decay_days: 1.5,
            p_innovation: 0.010,
            q_imitation: 0.025,
            urban_affinity: [1.25, 1.10, 1.00, 0.85],
        }
    }
}

/// The integrated adoption curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdoptionCurve {
    /// `cumulative[h]`: national cumulative downloads at the *end* of
    /// hour `h`.
    pub cumulative: Vec<f64>,
    /// Per-district share of the installed base (sums to 1).
    pub district_share: Vec<f64>,
}

impl AdoptionCurve {
    /// Cumulative national downloads at the end of hour `h` (clamps to
    /// the curve's last value).
    pub fn downloads_at(&self, hour: u32) -> f64 {
        let idx = (hour as usize).min(self.cumulative.len().saturating_sub(1));
        self.cumulative[idx]
    }

    /// Installed base in one district at the end of hour `h`.
    pub fn installed_in(&self, district: DistrictId, hour: u32) -> f64 {
        self.downloads_at(hour) * self.district_share[usize::from(district.0)]
    }

    /// New national downloads during hour `h`.
    pub fn new_downloads_in_hour(&self, hour: u32) -> f64 {
        let h = hour as usize;
        if h == 0 || h >= self.cumulative.len() {
            return self.cumulative.first().copied().unwrap_or(0.0);
        }
        self.cumulative[h] - self.cumulative[h - 1]
    }
}

/// The adoption simulator.
#[derive(Debug, Clone)]
pub struct AdoptionModel {
    /// Parameters.
    pub config: AdoptionConfig,
}

impl AdoptionModel {
    /// Creates a model.
    pub fn new(config: AdoptionConfig) -> Self {
        AdoptionModel { config }
    }

    /// Integrates the adoption ODE hourly over `timeline`, with media
    /// forcing from `scenario` (national pulses only), and computes
    /// district shares for `germany`.
    pub fn run(&self, germany: &Germany, scenario: &Scenario, timeline: Timeline) -> AdoptionCurve {
        let cfg = &self.config;
        let hours = timeline.hours();
        let mut cumulative = Vec::with_capacity(hours as usize);
        let mut d = 0.0f64;

        for h in 0..hours {
            if h >= RELEASE_HOUR {
                let media = scenario.national_media_factor(h);
                let rate_per_day = match cfg.family {
                    AdoptionFamily::Bass => {
                        let t_since_release_days = f64::from(h - RELEASE_HOUR) / 24.0;
                        let p = cfg.launch_burst
                            * (-t_since_release_days / cfg.burst_decay_days).exp()
                            + cfg.p_innovation;
                        (p + cfg.q_imitation * d / cfg.market_size) * (cfg.market_size - d) * media
                    }
                    AdoptionFamily::Logistic => {
                        (cfg.p_innovation + cfg.q_imitation * d / cfg.market_size)
                            * (cfg.market_size - d)
                            * media
                    }
                    AdoptionFamily::Linear => cfg.p_innovation * cfg.market_size * media,
                };
                d = (d + rate_per_day / 24.0).min(cfg.market_size);
            }
            cumulative.push(d);
        }

        // District allocation: population × urban affinity, normalized.
        let weights: Vec<f64> = germany
            .districts()
            .iter()
            .map(|dist| {
                let aff = match dist.urban {
                    UrbanClass::Metro => cfg.urban_affinity[0],
                    UrbanClass::Urban => cfg.urban_affinity[1],
                    UrbanClass::Suburban => cfg.urban_affinity[2],
                    UrbanClass::Rural => cfg.urban_affinity[3],
                };
                f64::from(dist.population) * aff
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let district_share = weights.into_iter().map(|w| w / total).collect();

        AdoptionCurve {
            cumulative,
            district_share,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{JULY_24_DAY, MILESTONE_36H_HOUR};
    use cwa_geo::{AddressPlan, AddressPlanConfig};

    fn curve() -> (Germany, AdoptionCurve) {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt);
        let curve = AdoptionModel::new(AdoptionConfig::default()).run(
            &g,
            &scenario,
            Timeline::through_july(),
        );
        (g, curve)
    }

    #[test]
    fn zero_before_release() {
        let (_, c) = curve();
        for h in 0..RELEASE_HOUR {
            assert_eq!(c.downloads_at(h), 0.0, "hour {h}");
        }
        assert!(c.downloads_at(RELEASE_HOUR + 1) > 0.0);
    }

    /// Paper anchor: "36 hours after its release, the CWA was downloaded
    /// 6.4M times".
    #[test]
    fn milestone_36_hours() {
        let (_, c) = curve();
        let d = c.downloads_at(MILESTONE_36H_HOUR);
        assert!(
            (5.4e6..7.4e6).contains(&d),
            "36 h downloads {d:.3e}, paper: 6.4e6"
        );
    }

    /// Paper anchor: "16.2M total downloads by July 24".
    #[test]
    fn milestone_july_24() {
        let (_, c) = curve();
        let d = c.downloads_at(JULY_24_DAY * 24 + 23);
        assert!(
            (15.0e6..17.5e6).contains(&d),
            "July-24 downloads {d:.3e}, paper: 16.2e6"
        );
    }

    #[test]
    fn monotone_nondecreasing_and_bounded() {
        let (_, c) = curve();
        for w in c.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(c.cumulative.last().unwrap() <= &AdoptionConfig::default().market_size);
    }

    #[test]
    fn june_23_news_bump_visible_in_new_downloads() {
        let (_, c) = curve();
        // Daily new downloads on Jun 22 vs Jun 23 (media pulse day).
        let day = |d: u32| c.downloads_at((d + 1) * 24 - 1) - c.downloads_at(d * 24 - 1);
        let jun22 = day(7);
        let jun23 = day(8);
        assert!(
            jun23 > jun22 * 1.3,
            "news bump: Jun 22 {jun22:.3e}, Jun 23 {jun23:.3e}"
        );
    }

    #[test]
    fn district_shares_sum_to_one_and_favor_cities() {
        let (g, c) = curve();
        let sum: f64 = c.district_share.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);

        // Berlin share > its raw population share (urban affinity).
        let berlin = g.by_name("Berlin").unwrap();
        let pop_share = f64::from(berlin.population) / g.population() as f64;
        let adoption_share = c.district_share[usize::from(berlin.id.0)];
        assert!(
            adoption_share > pop_share,
            "{adoption_share} vs {pop_share}"
        );
    }

    #[test]
    fn installed_in_district_consistent() {
        let (g, c) = curve();
        let h = 24 * 9;
        let total: f64 = g.districts().iter().map(|d| c.installed_in(d.id, h)).sum();
        assert!((total - c.downloads_at(h)).abs() / c.downloads_at(h) < 1e-9);
    }

    #[test]
    fn new_downloads_in_hour_sums_to_cumulative() {
        let (_, c) = curve();
        let total: f64 = (0..c.cumulative.len() as u32)
            .map(|h| c.new_downloads_in_hour(h))
            .sum();
        let last = *c.cumulative.last().unwrap();
        assert!((total - last).abs() / last < 1e-9);
    }

    #[test]
    fn clamps_beyond_curve() {
        let (_, c) = curve();
        assert_eq!(c.downloads_at(10_000_000), *c.cumulative.last().unwrap());
    }

    fn family_curve(family: AdoptionFamily) -> AdoptionCurve {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt);
        AdoptionModel::new(AdoptionConfig {
            family,
            ..AdoptionConfig::default()
        })
        .run(&g, &scenario, Timeline::through_july())
    }

    #[test]
    fn logistic_misses_the_36h_milestone() {
        let bass = family_curve(AdoptionFamily::Bass);
        let logistic = family_curve(AdoptionFamily::Logistic);
        assert!(
            logistic.downloads_at(MILESTONE_36H_HOUR)
                < bass.downloads_at(MILESTONE_36H_HOUR) * 0.25,
            "without the launch burst the day-one spike disappears"
        );
        for w in logistic.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn linear_is_constant_rate_outside_media_pulses() {
        let c = family_curve(AdoptionFamily::Linear);
        // Hours 30 and 31 sit after release and before the first pulse:
        // identical hourly increments.
        let inc = |h: u32| c.downloads_at(h + 1) - c.downloads_at(h);
        assert!((inc(30) - inc(31)).abs() < 1e-6);
        assert!(c.cumulative.last().unwrap() <= &AdoptionConfig::default().market_size);
    }
}
