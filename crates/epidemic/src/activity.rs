//! Usage behaviour: diurnal profiles, the daily key download (and the
//! background-restriction bug), and website interest.
//!
//! * Figure 2 shows the traffic "*follow\[ing\] the normal diurnal traffic
//!   pattern*" — we use a standard residential-traffic day shape (night
//!   trough around 03:00, evening peak around 20:00).
//! * The paper's §2 notes that "*energy saving settings prohibit
//!   background downloads on some Android and iOS phones*" (reported
//!   July 24, fixed after the study): affected devices only fetch keys
//!   when the user opens the app, which both lowers and *smears* the
//!   per-user request rate — we model an affected-device fraction with a
//!   lower daily fetch probability.
//! * Website visits are driven by launch/news interest, not by installed
//!   base: they spike at release and decay, re-spiking with media pulses.

use serde::{Deserialize, Serialize};

/// Hourly weights of residential network activity (local time), mean 1.0.
///
/// Shape: deep night trough, morning ramp, noon plateau, evening peak.
const DIURNAL_WEIGHTS: [f64; 24] = [
    0.45, 0.30, 0.22, 0.18, 0.20, 0.30, 0.55, 0.85, // 00–07
    1.10, 1.20, 1.30, 1.25, 1.30, 1.25, 1.20, 1.20, // 08–15
    1.30, 1.30, 1.45, 1.60, 1.70, 1.55, 1.35, 0.90, // 16–23
];

/// Behavioural parameters of the app+website user population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityModel {
    /// Fraction of devices affected by the background-restriction bug.
    pub background_restricted_fraction: f64,
    /// Daily probability an *unaffected* device performs its key
    /// download (background scheduling is not perfectly reliable).
    pub background_fetch_daily_prob: f64,
    /// Daily probability an *affected* device is opened manually (which
    /// triggers the fetch).
    pub manual_open_daily_prob: f64,
    /// Additional user-initiated app opens per user-day that hit the API
    /// (status checks after news etc.), scaled by media factor.
    pub curiosity_opens_per_day: f64,
    /// Website visits per potential user per day at launch-day peak
    /// interest (decays via the interest curve).
    pub website_visits_launch_peak: f64,
    /// Exponential decay of baseline website interest, days.
    pub website_interest_decay_days: f64,
    /// Pre-release website visits per day (press coverage before
    /// June 16; the site was already live on June 15 — this fixes the
    /// Fig. 2 minimum that everything is normed to).
    pub website_visits_prelaunch_per_day: f64,
}

impl Default for ActivityModel {
    fn default() -> Self {
        ActivityModel {
            background_restricted_fraction: 0.30,
            background_fetch_daily_prob: 0.95,
            manual_open_daily_prob: 0.35,
            curiosity_opens_per_day: 0.25,
            website_visits_launch_peak: 1.2e6,
            website_interest_decay_days: 2.0,
            website_visits_prelaunch_per_day: 4.8e5,
        }
    }
}

impl ActivityModel {
    /// The diurnal weight for an hour-of-day (0–23); mean over the day
    /// is 1.0.
    pub fn diurnal(hour_of_day: u32) -> f64 {
        DIURNAL_WEIGHTS[(hour_of_day % 24) as usize]
    }

    /// Expected *API* requests (key-export downloads + status fetches)
    /// per installed device per day, before media boosts.
    ///
    /// Combines reliable background fetchers, bug-affected manual
    /// fetchers, and curiosity opens.
    pub fn api_requests_per_user_day(&self) -> f64 {
        let unaffected =
            (1.0 - self.background_restricted_fraction) * self.background_fetch_daily_prob;
        let affected = self.background_restricted_fraction * self.manual_open_daily_prob;
        unaffected + affected + self.curiosity_opens_per_day
    }

    /// Per-user-day API request rate under a media boost (only the
    /// user-initiated curiosity opens react to news).
    pub fn api_requests_per_user_day_media(&self, media_factor: f64) -> f64 {
        let unaffected =
            (1.0 - self.background_restricted_fraction) * self.background_fetch_daily_prob;
        let affected = self.background_restricted_fraction * self.manual_open_daily_prob;
        unaffected + affected + self.curiosity_opens_per_day * media_factor
    }

    /// Expected API requests per installed device during one hour
    /// (hour-of-day resolved, media-boosted for user-initiated parts).
    pub fn api_requests_per_user_hour(&self, hour_of_day: u32, media_factor: f64) -> f64 {
        let unaffected =
            (1.0 - self.background_restricted_fraction) * self.background_fetch_daily_prob;
        let affected = self.background_restricted_fraction * self.manual_open_daily_prob;
        // Background fetches follow the OS scheduler (mildly diurnal);
        // manual opens and curiosity follow human activity and media.
        let background = unaffected * (0.5 + 0.5 * Self::diurnal(hour_of_day));
        let human =
            (affected + self.curiosity_opens_per_day * media_factor) * Self::diurnal(hour_of_day);
        (background + human) / 24.0
    }

    /// National website visits during one hour, given hours since study
    /// start and the national media factor.
    pub fn website_visits_per_hour(&self, hour: u32, media_factor: f64) -> f64 {
        use crate::timeline::RELEASE_HOUR;
        let hour_of_day = hour % 24;
        let per_day = if hour < RELEASE_HOUR {
            self.website_visits_prelaunch_per_day
        } else {
            let t_days = f64::from(hour - RELEASE_HOUR) / 24.0;
            let interest = (-t_days / self.website_interest_decay_days).exp();
            self.website_visits_prelaunch_per_day + self.website_visits_launch_peak * interest
        };
        per_day * media_factor * Self::diurnal(hour_of_day) / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::RELEASE_HOUR;

    #[test]
    fn diurnal_mean_is_one() {
        let mean: f64 = (0..24).map(ActivityModel::diurnal).sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn diurnal_shape() {
        // Night trough < morning < evening peak.
        assert!(ActivityModel::diurnal(3) < 0.3);
        assert!(ActivityModel::diurnal(20) > 1.5);
        assert!(ActivityModel::diurnal(3) < ActivityModel::diurnal(9));
        assert!(ActivityModel::diurnal(9) < ActivityModel::diurnal(20));
    }

    #[test]
    fn api_rate_magnitude() {
        // Per-user-day rate should be slightly below ~1.2: most devices
        // fetch daily, bug-affected ones less, plus some curiosity.
        let m = ActivityModel::default();
        let r = m.api_requests_per_user_day();
        assert!((0.7..1.4).contains(&r), "rate {r}");
    }

    #[test]
    fn bug_lowers_api_rate() {
        let healthy = ActivityModel {
            background_restricted_fraction: 0.0,
            ..Default::default()
        };
        let buggy = ActivityModel {
            background_restricted_fraction: 0.5,
            ..Default::default()
        };
        assert!(buggy.api_requests_per_user_day() < healthy.api_requests_per_user_day());
    }

    #[test]
    fn hourly_rates_integrate_to_daily() {
        let m = ActivityModel::default();
        let daily: f64 = (0..24).map(|h| m.api_requests_per_user_hour(h, 1.0)).sum();
        let expected = m.api_requests_per_user_day();
        // Background part is flattened (0.5 + 0.5*diurnal) — the day
        // total must still match within a few percent.
        assert!(
            (daily - expected).abs() / expected < 0.05,
            "{daily} vs {expected}"
        );
    }

    #[test]
    fn media_boosts_user_initiated_traffic() {
        let m = ActivityModel::default();
        let calm = m.api_requests_per_user_hour(20, 1.0);
        let hyped = m.api_requests_per_user_hour(20, 2.0);
        assert!(hyped > calm);
        // But not the background fetches: boost is sub-linear.
        assert!(hyped < calm * 2.0);
    }

    #[test]
    fn website_launch_spike_and_decay() {
        let m = ActivityModel::default();
        let pre = m.website_visits_per_hour(RELEASE_HOUR - 12, 1.0);
        let launch = m.website_visits_per_hour(RELEASE_HOUR + 12, 1.0);
        let week_later = m.website_visits_per_hour(RELEASE_HOUR + 12 + 7 * 24, 1.0);
        assert!(launch > pre * 2.5, "launch {launch} vs pre {pre}");
        assert!(week_later < launch / 2.0, "decay {week_later} vs {launch}");
        assert!(week_later > 0.0);
    }

    #[test]
    fn website_media_factor_multiplies() {
        let m = ActivityModel::default();
        let h = RELEASE_HOUR + 8 * 24;
        assert!(m.website_visits_per_hour(h, 1.9) > 1.8 * m.website_visits_per_hour(h, 1.0));
    }
}
