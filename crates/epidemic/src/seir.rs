//! District-level stochastic SEIR epidemic model.
//!
//! Germany in mid-June 2020 was between waves: a few hundred new cases
//! per day nationally, plus the two local outbreaks in the study window.
//! The model is a per-district SEIR with daily time steps, binomial
//! transitions, a small importation rate (so rural districts are not
//! permanently at zero), and scenario-driven outbreak seeding. Its
//! output — *detected* cases per district per day — feeds the
//! diagnosis-key upload pipeline in [`crate::uploads`].

use cwa_samplers::{binomial, poisson};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cwa_geo::{CommutingMatrix, DistrictId, Germany};

use crate::events::Scenario;

/// Epidemic parameters (daily rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpidemicConfig {
    /// Transmission rate β (effective contacts per infectious person-day).
    pub beta: f64,
    /// E→I progression rate (1 / incubation days).
    pub sigma: f64,
    /// I→R recovery/removal rate (1 / infectious days).
    pub gamma: f64,
    /// Fraction of infections eventually detected by testing.
    pub detection_rate: f64,
    /// Delay from becoming infectious to detection, days.
    pub detection_delay_days: u32,
    /// Expected imported exposures per million residents per day.
    pub importation_per_million: f64,
    /// Initial infectious individuals per million residents.
    pub initial_per_million: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EpidemicConfig {
    /// Mid-June 2020: R_eff just below 1 outside outbreaks.
    fn default() -> Self {
        EpidemicConfig {
            beta: 0.18,
            sigma: 1.0 / 3.0,
            gamma: 0.20,
            detection_rate: 0.5,
            detection_delay_days: 3,
            importation_per_million: 0.4,
            initial_per_million: 6.0,
            seed: 0x5E1D,
        }
    }
}

/// Per-district compartment state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Compartments {
    s: f64,
    e: f64,
    i: f64,
    r: f64,
}

/// The result of an epidemic run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpidemicRun {
    /// Days simulated.
    pub days: u32,
    /// `new_cases[day][district]`: new *infections* becoming infectious.
    pub new_cases: Vec<Vec<u32>>,
    /// `detected[day][district]`: new *detected* cases (delayed, thinned).
    pub detected: Vec<Vec<u32>>,
}

impl EpidemicRun {
    /// Total detected cases in a district over the run.
    pub fn total_detected(&self, district: DistrictId) -> u64 {
        self.detected
            .iter()
            .map(|day| u64::from(day[usize::from(district.0)]))
            .sum()
    }

    /// National detected cases on a day.
    pub fn national_detected(&self, day: u32) -> u64 {
        self.detected[day as usize]
            .iter()
            .map(|&c| u64::from(c))
            .sum()
    }
}

/// The SEIR simulator.
#[derive(Debug, Clone)]
pub struct EpidemicModel {
    /// Parameters.
    pub config: EpidemicConfig,
}

impl EpidemicModel {
    /// Creates a model.
    pub fn new(config: EpidemicConfig) -> Self {
        EpidemicModel { config }
    }

    /// Runs `days` daily steps over all districts under `scenario`,
    /// without inter-district mixing.
    pub fn run(&self, germany: &Germany, scenario: &Scenario, days: u32) -> EpidemicRun {
        self.run_with(germany, scenario, days, None)
    }

    /// Runs with gravity-commuting coupling: each district's force of
    /// infection blends home prevalence with the prevalence at its
    /// residents' commuting destinations — the mechanism by which the
    /// Gütersloh outbreak spills into Warendorf.
    pub fn run_coupled(
        &self,
        germany: &Germany,
        scenario: &Scenario,
        days: u32,
        commuting: &CommutingMatrix,
    ) -> EpidemicRun {
        self.run_with(germany, scenario, days, Some(commuting))
    }

    fn run_with(
        &self,
        germany: &Germany,
        scenario: &Scenario,
        days: u32,
        commuting: Option<&CommutingMatrix>,
    ) -> EpidemicRun {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let n = germany.len();

        let mut state: Vec<Compartments> = germany
            .districts()
            .iter()
            .map(|d| {
                let pop = f64::from(d.population);
                let i0 = pop * cfg.initial_per_million / 1e6;
                Compartments {
                    s: pop - i0,
                    e: 0.0,
                    i: i0,
                    r: 0.0,
                }
            })
            .collect();

        let mut new_cases = vec![vec![0u32; n]; days as usize];
        let mut detected = vec![vec![0u32; n]; days as usize];

        for day in 0..days {
            // Per-district infectious prevalence, frozen at day start so
            // coupling is order-independent.
            let prevalence: Vec<f64> = state
                .iter()
                .zip(germany.districts())
                .map(|(c, d)| c.i / f64::from(d.population).max(1.0))
                .collect();

            for (idx, district) in germany.districts().iter().enumerate() {
                let c = &mut state[idx];
                let pop = f64::from(district.population);

                // Scenario outbreak seeding goes straight into E.
                let seeds = f64::from(scenario.outbreak_seeds(district.id, day));
                c.e += seeds;
                c.s = (c.s - seeds).max(0.0);

                // Importation keeps the background alive.
                let import = pop * cfg.importation_per_million / 1e6;
                let imported = poisson(&mut rng, import) as f64;
                c.e += imported;
                c.s = (c.s - imported).max(0.0);

                // Transitions (expected-value flows with Poisson noise on
                // the infection term; the compartments are large enough
                // that this hybrid is accurate and fast).
                let effective_prevalence = match commuting {
                    Some(m) => m.coupled_prevalence(district.id, &prevalence),
                    None => prevalence[idx],
                };
                let force = cfg.beta * effective_prevalence;
                let infections = poisson(&mut rng, force * c.s) as f64;
                let progressions = cfg.sigma * c.e;
                let recoveries = cfg.gamma * c.i;

                c.s = (c.s - infections).max(0.0);
                c.e = (c.e + infections - progressions).max(0.0);
                c.i = (c.i + progressions - recoveries).max(0.0);
                c.r += recoveries;

                let cases = progressions.round() as u32;
                new_cases[day as usize][idx] = cases;

                // Detection: thinned and delayed — one exact binomial
                // draw instead of a per-case Bernoulli loop.
                let detect_day = day + cfg.detection_delay_days;
                if (detect_day as usize) < days as usize {
                    let found = binomial(&mut rng, u64::from(cases), cfg.detection_rate) as u32;
                    detected[detect_day as usize][idx] = found;
                }
            }
        }

        EpidemicRun {
            days,
            new_cases,
            detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::GUETERSLOH_LOCKDOWN_DAY;
    use cwa_geo::{AddressPlan, AddressPlanConfig};

    fn run_paper() -> (Germany, EpidemicRun) {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt_isp = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt_isp);
        let run = EpidemicModel::new(EpidemicConfig::default()).run(&g, &scenario, 20);
        (g, run)
    }

    #[test]
    fn national_background_magnitude() {
        // Mid-June 2020 Germany: roughly 300–600 detected cases/day.
        // Checked past the ramp-in: with a 4-day detection delay and an
        // initially empty E compartment, the detected curve only
        // reaches background magnitude around day 11. (Re-pinned once
        // for the exact-sampler swap — the old stream's day-6 value sat
        // mid-ramp and only cleared the bound by luck of the seed.)
        let (_, run) = run_paper();
        let day12 = run.national_detected(12);
        assert!(
            (100..2_000).contains(&day12),
            "day-12 national detected {day12}"
        );
    }

    #[test]
    fn guetersloh_outbreak_dominates_its_district() {
        let (g, run) = run_paper();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let before: u64 = (0..GUETERSLOH_LOCKDOWN_DAY)
            .map(|d| u64::from(run.detected[d as usize][usize::from(gt.0)]))
            .sum();
        let after: u64 = (GUETERSLOH_LOCKDOWN_DAY..run.days)
            .map(|d| u64::from(run.detected[d as usize][usize::from(gt.0)]))
            .sum();
        assert!(
            after > before.saturating_mul(4).max(50),
            "outbreak visible: before {before}, after {after}"
        );
    }

    #[test]
    fn epidemic_subcritical_without_outbreaks() {
        // With default parameters R_eff = β/γ = 0.9 < 1: after the
        // initial ramp-in (empty E compartment, detection delay), the
        // detected curve settles instead of growing exponentially.
        let g = Germany::build();
        let run = EpidemicModel::new(EpidemicConfig::default()).run(&g, &Scenario::quiet(), 35);
        let week3: u64 = (14..21).map(|d| run.national_detected(d)).sum();
        let week5: u64 = (28..35).map(|d| run.national_detected(d)).sum();
        // The importation-fed endemic level is approached with time
        // constant ≈ 1/((1−R_eff)·γ) = 50 days, so adjacent fortnights
        // inside a 35-day window still grow ~30–60% under any seed (old
        // and new sampler streams alike) while supercritical blow-up
        // would at least double. Bound the ratio at 2×. (Re-pinned once
        // for the exact-sampler swap — the previous 1.5× bound held
        // only by luck of the seed.)
        assert!(
            week5 < week3 * 2,
            "no blow-up: week3 {week3}, week5 {week5}"
        );
        assert!(week3 > 0, "background epidemic alive");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Germany::build();
        let m = EpidemicModel::new(EpidemicConfig::default());
        let a = m.run(&g, &Scenario::quiet(), 10);
        let b = m.run(&g, &Scenario::quiet(), 10);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn detection_is_delayed() {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt_isp = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt_isp);
        let cfg = EpidemicConfig {
            detection_delay_days: 3,
            ..EpidemicConfig::default()
        };
        let run = EpidemicModel::new(cfg).run(&g, &scenario, 15);
        let gt = g.by_name("Gütersloh").unwrap().id;
        let i = usize::from(gt.0);
        // Detected spike must trail the seeding day by >= the delay:
        // day 8 seeding appears in detections from day ~11-12 onwards
        // (seed E -> I takes ~sigma days, plus 3 days delay).
        let d9 = run.detected[9][i];
        let d13 = run.detected[13][i].max(run.detected[12][i]);
        assert!(d13 > d9, "detection trails seeding: day9={d9} day13={d13}");
    }

    #[test]
    fn conservation_no_negative_compartments() {
        // Run long: population conservation within rounding noise, and
        // detected never exceeds plausibility.
        let (g, run) = run_paper();
        for day in 0..run.days as usize {
            for (i, d) in g.districts().iter().enumerate() {
                assert!(
                    run.detected[day][i] <= d.population / 10,
                    "absurd detection count in {}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn commuting_spreads_guetersloh_to_warendorf() {
        let g = Germany::build();
        // Seed ONLY Gütersloh so any Warendorf cases beyond background
        // must have commuted in.
        let scenario = Scenario {
            events: vec![crate::events::ScenarioEvent {
                day: 2,
                district: g.by_name("Gütersloh").unwrap().id,
                kind: crate::events::EventKind::OutbreakSeed { seed_cases: 3000 },
            }],
        };
        let matrix = cwa_geo::CommutingMatrix::build(&g, cwa_geo::CommutingConfig::default());
        // A hotter outbreak makes the spillover measurable.
        let cfg = EpidemicConfig {
            beta: 0.5,
            ..EpidemicConfig::default()
        };
        let model = EpidemicModel::new(cfg);
        let uncoupled = model.run(&g, &scenario, 22);
        let coupled = model.run_coupled(&g, &scenario, 22, &matrix);

        let wa = g.by_name("Warendorf").unwrap().id;
        let last_week = |run: &EpidemicRun| -> u64 {
            (15..22)
                .map(|d| u64::from(run.detected[d][usize::from(wa.0)]))
                .sum()
        };
        let without = last_week(&uncoupled);
        let with = last_week(&coupled);
        assert!(
            with > without + without / 4,
            "commuting imports cases into Warendorf: uncoupled {without}, coupled {with}"
        );
    }

    #[test]
    fn coupling_preserves_national_magnitude() {
        // Mixing redistributes infections; it must not blow up totals in
        // the subcritical regime.
        let g = Germany::build();
        let matrix = cwa_geo::CommutingMatrix::build(&g, cwa_geo::CommutingConfig::default());
        let model = EpidemicModel::new(EpidemicConfig::default());
        let base = model.run(&g, &Scenario::quiet(), 15);
        let coupled = model.run_coupled(&g, &Scenario::quiet(), 15, &matrix);
        let total = |run: &EpidemicRun| -> u64 { (0..15).map(|d| run.national_detected(d)).sum() };
        let a = total(&base) as f64;
        let b = total(&coupled) as f64;
        assert!((b / a - 1.0).abs() < 0.25, "totals comparable: {a} vs {b}");
    }

    #[test]
    fn poisson_sampler_mean() {
        // The model now draws through the shared exact sampler; keep
        // the moment check at the means the SEIR step actually uses.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for mean in [0.5f64, 5.0, 50.0] {
            let n = 20_000;
            let total: f64 = (0..n).map(|_| poisson(&mut rng, mean) as f64).sum();
            let got = total / f64::from(n);
            assert!((got - mean).abs() / mean < 0.05, "mean {mean}: got {got}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }
}
