//! Outbreak and news events — the scenario machinery behind the paper's
//! natural experiment.
//!
//! The paper's measurement window contains two real local outbreaks:
//!
//! * **Berlin (Neukölln), June 18** — locally covered; the paper finds it
//!   "only visible for users of a single ISP and not in the overall
//!   traffic from Berlin-based users".
//! * **Gütersloh & Warendorf, June 23** — a meat-plant outbreak leading
//!   to district lockdowns, covered by *national* news; the paper sees a
//!   traffic re-surge "on federal state level simultaneously — not only
//!   in the federal state (NRW) being home to the affected districts".
//!
//! Each event therefore carries two separate channels:
//!
//! * a **local epidemic seeding** (more infections in the named
//!   district), and
//! * a **media pulse** with a *reach*: national coverage boosts app
//!   interest everywhere; local coverage boosts (mildly) only the
//!   affected district — and optionally only one ISP's customers, the
//!   mechanism we use to reproduce the Berlin single-ISP observation
//!   (e.g. a regional provider's news portal covering the story).
//!
//! The scenario is data, not code: experiments can switch events on and
//! off to run the counterfactual the paper argues about.

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, Germany, IspId};

use crate::timeline::{BERLIN_OUTBREAK_DAY, GUETERSLOH_LOCKDOWN_DAY};

/// What an event does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Seeds extra infections in a district (epidemic channel).
    OutbreakSeed {
        /// Extra exposed individuals introduced on the start day.
        seed_cases: u32,
    },
    /// A media pulse boosting app interest (adoption channel).
    MediaPulse {
        /// Peak multiplicative boost to adoption/usage rates (e.g. 0.8 ⇒
        /// +80 % at the peak).
        intensity: f64,
        /// Exponential decay time constant, days.
        decay_days: f64,
        /// `true`: applies nation-wide; `false`: only in `district`.
        national: bool,
        /// If set, the *local* boost reaches only this ISP's customers
        /// (the Berlin single-ISP mechanism).
        isp_only: Option<IspId>,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Study day the event starts.
    pub day: u32,
    /// District the event is anchored to.
    pub district: DistrictId,
    /// The effect.
    pub kind: EventKind,
}

/// A complete scenario: the event list.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// All scheduled events.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// The paper's scenario: Berlin June 18 (local, single-ISP
    /// visibility), Gütersloh/Warendorf June 23 (national news +
    /// lockdowns). `ground_truth_isp` is the ISP carrying the local
    /// Berlin pulse.
    pub fn paper_default(germany: &Germany, ground_truth_isp: IspId) -> Self {
        let berlin = germany.by_name("Berlin").expect("Berlin in model").id;
        let guetersloh = germany.by_name("Gütersloh").expect("Gütersloh in model").id;
        let warendorf = germany.by_name("Warendorf").expect("Warendorf in model").id;

        Scenario {
            events: vec![
                // Berlin, June 18: real local outbreak …
                ScenarioEvent {
                    day: BERLIN_OUTBREAK_DAY,
                    district: berlin,
                    kind: EventKind::OutbreakSeed { seed_cases: 400 },
                },
                // … with only local, single-ISP-visible interest effect.
                ScenarioEvent {
                    day: BERLIN_OUTBREAK_DAY,
                    district: berlin,
                    kind: EventKind::MediaPulse {
                        intensity: 4.0,
                        decay_days: 1.5,
                        national: false,
                        isp_only: Some(ground_truth_isp),
                    },
                },
                // Gütersloh, June 23: large outbreak …
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: guetersloh,
                    kind: EventKind::OutbreakSeed { seed_cases: 1500 },
                },
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: warendorf,
                    kind: EventKind::OutbreakSeed { seed_cases: 500 },
                },
                // … with *national* media coverage (the re-surge of Fig. 2) …
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: guetersloh,
                    kind: EventKind::MediaPulse {
                        intensity: 0.9,
                        decay_days: 2.5,
                        national: true,
                        isp_only: None,
                    },
                },
                // … and only a very slight additional local effect
                // ("in Gütersloh, the traffic increased only very
                // slightly and hardly noticeable").
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: guetersloh,
                    kind: EventKind::MediaPulse {
                        intensity: 0.12,
                        decay_days: 1.0,
                        national: false,
                        isp_only: None,
                    },
                },
            ],
        }
    }

    /// The counterfactual: outbreaks happen but produce **no media
    /// pulses at all** — used by the ablation bench to show the Fig. 2
    /// re-surge is news-driven, not infection-driven.
    pub fn outbreaks_without_news(germany: &Germany) -> Self {
        let berlin = germany.by_name("Berlin").expect("Berlin in model").id;
        let guetersloh = germany.by_name("Gütersloh").expect("Gütersloh in model").id;
        let warendorf = germany.by_name("Warendorf").expect("Warendorf in model").id;
        Scenario {
            events: vec![
                ScenarioEvent {
                    day: BERLIN_OUTBREAK_DAY,
                    district: berlin,
                    kind: EventKind::OutbreakSeed { seed_cases: 400 },
                },
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: guetersloh,
                    kind: EventKind::OutbreakSeed { seed_cases: 1500 },
                },
                ScenarioEvent {
                    day: GUETERSLOH_LOCKDOWN_DAY,
                    district: warendorf,
                    kind: EventKind::OutbreakSeed { seed_cases: 500 },
                },
            ],
        }
    }

    /// A quiet scenario with no events.
    pub fn quiet() -> Self {
        Scenario::default()
    }

    /// The combined media boost factor (≥ 1.0) for a district at a given
    /// hour, seen by customers of `isp`.
    pub fn media_factor(&self, district: DistrictId, isp: Option<IspId>, hour: u32) -> f64 {
        let t_days = f64::from(hour) / 24.0;
        let mut factor = 1.0;
        for ev in &self.events {
            let EventKind::MediaPulse {
                intensity,
                decay_days,
                national,
                isp_only,
            } = ev.kind
            else {
                continue;
            };
            let start = f64::from(ev.day);
            if t_days < start {
                continue;
            }
            if !national {
                if ev.district != district {
                    continue;
                }
                if let Some(only) = isp_only {
                    if isp != Some(only) {
                        continue;
                    }
                }
            }
            factor += intensity * (-(t_days - start) / decay_days).exp();
        }
        factor
    }

    /// The media boost factor counting **national** pulses only — the
    /// component that drives nation-wide adoption (the paper: "nation-wide
    /// news reports on outbreaks might contribute to growing app interest
    /// across Germany").
    pub fn national_media_factor(&self, hour: u32) -> f64 {
        let t_days = f64::from(hour) / 24.0;
        let mut factor = 1.0;
        for ev in &self.events {
            let EventKind::MediaPulse {
                intensity,
                decay_days,
                national: true,
                ..
            } = ev.kind
            else {
                continue;
            };
            let start = f64::from(ev.day);
            if t_days >= start {
                factor += intensity * (-(t_days - start) / decay_days).exp();
            }
        }
        factor
    }

    /// The active *local* media-pulse contributions at `hour`:
    /// `(district, optional ISP restriction, additive boost)`. Traffic
    /// generators iterate prefixes in a hot loop; pre-extracting the few
    /// local pulses per hour avoids re-scanning the event list per
    /// prefix. `media_factor(d, isp, h)` equals
    /// `national_media_factor(h) + Σ matching local extras`.
    pub fn local_media_extras(&self, hour: u32) -> Vec<(DistrictId, Option<IspId>, f64)> {
        let t_days = f64::from(hour) / 24.0;
        self.events
            .iter()
            .filter_map(|ev| {
                let EventKind::MediaPulse {
                    intensity,
                    decay_days,
                    national: false,
                    isp_only,
                } = ev.kind
                else {
                    return None;
                };
                let start = f64::from(ev.day);
                if t_days < start {
                    return None;
                }
                let boost = intensity * (-(t_days - start) / decay_days).exp();
                Some((ev.district, isp_only, boost))
            })
            .collect()
    }

    /// Extra infection seeds landing in `district` on `day`.
    pub fn outbreak_seeds(&self, district: DistrictId, day: u32) -> u32 {
        self.events
            .iter()
            .filter(|e| e.district == district && e.day == day)
            .map(|e| match e.kind {
                EventKind::OutbreakSeed { seed_cases } => seed_cases,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_geo::{AddressPlan, AddressPlanConfig};

    fn setup() -> (Germany, Scenario, IspId) {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let s = Scenario::paper_default(&g, gt);
        (g, s, gt)
    }

    #[test]
    fn paper_scenario_has_both_outbreaks() {
        let (g, s, _) = setup();
        let berlin = g.by_name("Berlin").unwrap().id;
        let gt = g.by_name("Gütersloh").unwrap().id;
        let wa = g.by_name("Warendorf").unwrap().id;
        assert!(s.outbreak_seeds(berlin, BERLIN_OUTBREAK_DAY) > 0);
        assert!(s.outbreak_seeds(gt, GUETERSLOH_LOCKDOWN_DAY) > 0);
        assert!(s.outbreak_seeds(wa, GUETERSLOH_LOCKDOWN_DAY) > 0);
        assert_eq!(s.outbreak_seeds(berlin, 0), 0);
    }

    #[test]
    fn national_pulse_reaches_everywhere() {
        let (g, s, _) = setup();
        let munich = g.by_name("München").unwrap().id;
        let before = s.media_factor(munich, None, GUETERSLOH_LOCKDOWN_DAY * 24 - 1);
        let after = s.media_factor(munich, None, GUETERSLOH_LOCKDOWN_DAY * 24 + 1);
        assert!((before - 1.0).abs() < 0.05, "no pulse before: {before}");
        assert!(after > 1.5, "national pulse after: {after}");
    }

    #[test]
    fn berlin_pulse_is_single_isp_and_local() {
        let (g, s, gt_isp) = setup();
        let berlin = g.by_name("Berlin").unwrap().id;
        let hamburg = g.by_name("Hamburg").unwrap().id;
        let h = BERLIN_OUTBREAK_DAY * 24 + 2;

        let berlin_gt = s.media_factor(berlin, Some(gt_isp), h);
        let berlin_other = s.media_factor(berlin, Some(IspId(0)), h);
        let hamburg_gt = s.media_factor(hamburg, Some(gt_isp), h);

        assert!(berlin_gt > 1.2, "visible in the single ISP: {berlin_gt}");
        assert!(
            (berlin_other - 1.0).abs() < 0.05,
            "invisible elsewhere: {berlin_other}"
        );
        assert!((hamburg_gt - 1.0).abs() < 0.05, "local only: {hamburg_gt}");
    }

    #[test]
    fn pulses_decay() {
        let (g, s, _) = setup();
        let munich = g.by_name("München").unwrap().id;
        let peak = s.media_factor(munich, None, GUETERSLOH_LOCKDOWN_DAY * 24);
        let later = s.media_factor(munich, None, (GUETERSLOH_LOCKDOWN_DAY + 5) * 24);
        assert!(peak > later);
        assert!(later < 1.2, "decayed after 5 days: {later}");
    }

    #[test]
    fn counterfactual_has_no_media() {
        let g = Germany::build();
        let s = Scenario::outbreaks_without_news(&g);
        let munich = g.by_name("München").unwrap().id;
        for h in 0..264 {
            assert!((s.media_factor(munich, None, h) - 1.0).abs() < 1e-12);
        }
        let gt = g.by_name("Gütersloh").unwrap().id;
        assert!(s.outbreak_seeds(gt, GUETERSLOH_LOCKDOWN_DAY) > 0);
    }

    #[test]
    fn quiet_scenario() {
        let s = Scenario::quiet();
        assert!(s.events.is_empty());
        assert!((s.media_factor(DistrictId(0), None, 100) - 1.0).abs() < 1e-12);
    }
}
