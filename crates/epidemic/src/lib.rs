//! # cwa-epidemic — epidemic, news and app-adoption models
//!
//! The traffic the paper measures is *caused by people*: installing the
//! app after launch and after news coverage, opening it daily, and —
//! after a positive test — uploading diagnosis keys. This crate models
//! those drivers:
//!
//! * [`timeline`] — the study calendar: June 15–25, 2020 measurement
//!   window (Fig. 2), app release June 16, first diagnosis keys
//!   June 23, download milestones through July 24.
//! * [`events`] — outbreak and news events: the **Berlin/Neukölln
//!   outbreak (June 18)** and the **Gütersloh/Warendorf outbreak and
//!   lockdown (June 23)** with nation-wide media coverage — the paper's
//!   central natural experiment (§3, "No effect of local COVID-19
//!   outbreaks").
//! * [`seir`] — a district-level stochastic SEIR model seeded with those
//!   outbreaks; it produces the detected-case curves that drive
//!   diagnosis-key uploads.
//! * [`adoption`] — a Bass-diffusion adoption model with media forcing,
//!   calibrated to the official milestones the paper cites: **6.4 M
//!   downloads 36 h after release** and **16.2 M by July 24** (§3), and
//!   a per-district allocation by population and urbanization.
//! * [`activity`] — diurnal usage profiles, the daily key-download
//!   behaviour including the background-restriction bug the paper
//!   mentions (§2), and website-visit interest curves.
//! * [`uploads`] — the diagnosis-key publication pipeline (detection →
//!   consent → verification delay), producing the daily key counts whose
//!   first non-zero day reproduces the paper's June 23 observation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod adoption;
pub mod events;
pub mod seir;
pub mod timeline;
pub mod uploads;

pub use activity::ActivityModel;
pub use adoption::{AdoptionConfig, AdoptionCurve, AdoptionFamily, AdoptionModel};
pub use events::{EventKind, Scenario, ScenarioEvent};
pub use seir::{EpidemicConfig, EpidemicModel, EpidemicRun};
pub use timeline::{StudyDay, Timeline};
pub use uploads::{UploadConfig, UploadPipeline};
