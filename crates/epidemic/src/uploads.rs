//! The diagnosis-key publication pipeline.
//!
//! A detected case leads to a key upload only if the case's phone runs
//! the app, the user consents, and the health-authority verification
//! succeeds (initially via teleTAN hotlines — slow and low-throughput in
//! the first week). The paper observed, by monitoring the API, that the
//! **first diagnosis keys appeared on June 23**, a week after release
//! (§1). We reproduce that with an explicit verification-capacity ramp.

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, Germany};

use crate::adoption::AdoptionCurve;
use crate::seir::EpidemicRun;
use crate::timeline::FIRST_KEYS_DAY;

/// Upload-pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadConfig {
    /// Probability a consenting, verified user completes the upload.
    pub consent_rate: f64,
    /// Study day from which the verification flow produces results
    /// (teleTAN ramp-up; the paper pins first keys to June 23).
    pub verification_ready_day: u32,
    /// Average number of TEKs disclosed per upload (≤ 14 days of keys;
    /// early on users had the app for only a few days).
    pub keys_per_upload_cap: u32,
}

impl Default for UploadConfig {
    fn default() -> Self {
        UploadConfig {
            consent_rate: 0.6,
            verification_ready_day: FIRST_KEYS_DAY,
            keys_per_upload_cap: 14,
        }
    }
}

/// Daily published key counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UploadPipeline {
    /// `uploads[day]`: users completing an upload that day (national).
    pub uploads: Vec<f64>,
    /// `keys[day]`: diagnosis keys published that day (national).
    pub keys: Vec<f64>,
}

impl UploadPipeline {
    /// Derives upload/key volumes from an epidemic run and the adoption
    /// curve (only app users can upload; app share grows daily).
    pub fn derive(
        germany: &Germany,
        epidemic: &EpidemicRun,
        adoption: &AdoptionCurve,
        config: UploadConfig,
    ) -> Self {
        let population = germany.population() as f64;
        let mut uploads = Vec::with_capacity(epidemic.days as usize);
        let mut keys = Vec::with_capacity(epidemic.days as usize);

        for day in 0..epidemic.days {
            if day < config.verification_ready_day {
                uploads.push(0.0);
                keys.push(0.0);
                continue;
            }
            let detected = epidemic.national_detected(day) as f64;
            let app_share = adoption.downloads_at(day * 24 + 23) / population;
            let day_uploads = detected * app_share * config.consent_rate;
            // Users who installed on release day have at most
            // (day - release) days of keys.
            let available_days = day.min(config.keys_per_upload_cap);
            uploads.push(day_uploads);
            keys.push(day_uploads * f64::from(available_days.max(1)));
        }
        UploadPipeline { uploads, keys }
    }

    /// First day with a non-zero key publication, if any.
    pub fn first_key_day(&self) -> Option<u32> {
        self.keys.iter().position(|&k| k > 0.0).map(|d| d as u32)
    }

    /// Cumulative keys published through `day` (inclusive).
    pub fn cumulative_keys(&self, day: u32) -> f64 {
        self.keys.iter().take(day as usize + 1).sum()
    }

    /// Splits a day's uploads across districts proportionally to that
    /// day's detected cases.
    pub fn district_uploads(&self, epidemic: &EpidemicRun, day: u32) -> Vec<(DistrictId, f64)> {
        let total = epidemic.national_detected(day) as f64;
        if total == 0.0 {
            return Vec::new();
        }
        let day_uploads = self.uploads[day as usize];
        epidemic.detected[day as usize]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (DistrictId(i as u16), day_uploads * f64::from(c) / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adoption::{AdoptionConfig, AdoptionModel};
    use crate::events::Scenario;
    use crate::seir::{EpidemicConfig, EpidemicModel};
    use crate::timeline::Timeline;
    use cwa_geo::{AddressPlan, AddressPlanConfig};

    fn pipeline() -> (Germany, EpidemicRun, UploadPipeline) {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt);
        let epidemic = EpidemicModel::new(EpidemicConfig::default()).run(&g, &scenario, 20);
        let adoption =
            AdoptionModel::new(AdoptionConfig::default()).run(&g, &scenario, Timeline { days: 20 });
        let p = UploadPipeline::derive(&g, &epidemic, &adoption, UploadConfig::default());
        (g, epidemic, p)
    }

    /// Paper anchor: "we observe the first diagnosis keys to be available
    /// on June 23".
    #[test]
    fn first_keys_on_june_23() {
        let (_, _, p) = pipeline();
        assert_eq!(p.first_key_day(), Some(FIRST_KEYS_DAY));
    }

    #[test]
    fn upload_volumes_plausible() {
        // Mid-2020 reality: a handful to a few dozen uploads per day.
        let (_, _, p) = pipeline();
        for day in FIRST_KEYS_DAY..20 {
            let u = p.uploads[day as usize];
            assert!((0.0..500.0).contains(&u), "day {day}: {u} uploads");
        }
        let total: f64 = p.uploads.iter().sum();
        assert!(total > 1.0, "some uploads happen: {total}");
    }

    #[test]
    fn keys_exceed_uploads() {
        let (_, _, p) = pipeline();
        for day in 0..20usize {
            assert!(p.keys[day] >= p.uploads[day]);
        }
    }

    #[test]
    fn cumulative_monotone() {
        let (_, _, p) = pipeline();
        let mut prev = 0.0;
        for day in 0..20 {
            let c = p.cumulative_keys(day);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn district_uploads_sum_to_national() {
        let (_, e, p) = pipeline();
        let day = 12;
        let parts = p.district_uploads(&e, day);
        let sum: f64 = parts.iter().map(|(_, u)| u).sum();
        let national = p.uploads[day as usize];
        if national > 0.0 {
            assert!((sum - national).abs() / national < 1e-9);
        }
        // Outbreak district should dominate post-outbreak uploads.
        let g = Germany::build();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let day16 = p.district_uploads(&e, 16);
        if let Some((_, gt_uploads)) = day16.iter().find(|(d, _)| *d == gt) {
            let max = day16.iter().map(|(_, u)| *u).fold(0.0, f64::max);
            assert!(*gt_uploads >= max * 0.5, "Gütersloh prominent in uploads");
        }
    }

    #[test]
    fn verification_gate_respected() {
        let (_, _, p) = pipeline();
        for day in 0..FIRST_KEYS_DAY {
            assert_eq!(p.keys[day as usize], 0.0);
            assert_eq!(p.uploads[day as usize], 0.0);
        }
    }
}
