//! The study calendar.
//!
//! All simulation time is anchored to **2020-06-15 00:00 UTC** (day 0,
//! hour 0), the first day of the paper's measurement window. Key dates:
//!
//! | Day | Date (2020) | Event |
//! |----:|-------------|-------|
//! |  0  | Jun 15 | measurement starts; website live, app not yet |
//! |  1  | Jun 16 | **official CWA release** (7.5× flow increase) |
//! |  2  | Jun 17 | first official download numbers |
//! |  3  | Jun 18 | Berlin/Neukölln outbreak (local news) |
//! |  8  | Jun 23 | Gütersloh/Warendorf lockdown (national news); first diagnosis keys on the CDN |
//! | 10  | Jun 25 | last measured day |
//! | 39  | Jul 24 | 16.2 M cumulative downloads reported |

use serde::{Deserialize, Serialize};

/// Unix timestamp of day 0 hour 0 (2020-06-15T00:00:00Z).
pub const STUDY_EPOCH_UNIX: u64 = 1_592_179_200;

/// Days in the NetFlow measurement window (June 15–25 inclusive).
pub const MEASUREMENT_DAYS: u32 = 11;

/// Hours in the measurement window.
pub const MEASUREMENT_HOURS: u32 = MEASUREMENT_DAYS * 24;

/// Day index of the official app release (June 16).
pub const RELEASE_DAY: u32 = 1;

/// Hour-of-day of the release on June 16 (the app appeared in the stores
/// around midnight; early-morning availability).
pub const RELEASE_HOUR: u32 = RELEASE_DAY * 24;

/// Day index of the Berlin/Neukölln outbreak news (June 18).
pub const BERLIN_OUTBREAK_DAY: u32 = 3;

/// Day index of the Gütersloh/Warendorf lockdown + national news (June 23).
pub const GUETERSLOH_LOCKDOWN_DAY: u32 = 8;

/// Day index when the first diagnosis keys appeared on the CDN (June 23).
pub const FIRST_KEYS_DAY: u32 = 8;

/// Day index of the 16.2 M download milestone (July 24).
pub const JULY_24_DAY: u32 = 39;

/// Hour offset of the 6.4 M milestone: "36 hours after its release".
pub const MILESTONE_36H_HOUR: u32 = RELEASE_HOUR + 36;

/// A day within the study (0 = June 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StudyDay(pub u32);

impl StudyDay {
    /// Calendar label, e.g. "Jun 16".
    pub fn label(self) -> String {
        // June has 30 days; the study never runs past August.
        let day_of_june = 15 + self.0;
        if day_of_june <= 30 {
            format!("Jun {day_of_june}")
        } else if day_of_june <= 61 {
            format!("Jul {}", day_of_june - 30)
        } else {
            format!("Aug {}", day_of_june - 61)
        }
    }

    /// First hour index of this day.
    pub fn start_hour(self) -> u32 {
        self.0 * 24
    }
}

/// Time conversion helpers over the study window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Total simulated days (≥ [`MEASUREMENT_DAYS`] when the adoption
    /// model runs through July).
    pub days: u32,
}

impl Timeline {
    /// The measurement window only.
    pub fn measurement() -> Self {
        Timeline {
            days: MEASUREMENT_DAYS,
        }
    }

    /// Through July 24 (for the download-curve milestones).
    pub fn through_july() -> Self {
        Timeline {
            days: JULY_24_DAY + 1,
        }
    }

    /// Total hours.
    pub fn hours(&self) -> u32 {
        self.days * 24
    }

    /// Splits an hour index into (day, hour-of-day).
    pub fn split(hour: u32) -> (StudyDay, u32) {
        (StudyDay(hour / 24), hour % 24)
    }

    /// Unix timestamp of the start of hour `hour`.
    pub fn unix_of_hour(hour: u32) -> u64 {
        STUDY_EPOCH_UNIX + u64::from(hour) * 3600
    }

    /// Simulation milliseconds of the start of hour `hour` (ms since
    /// study epoch — the time base of `cwa-netflow` records).
    pub fn ms_of_hour(hour: u32) -> u64 {
        u64::from(hour) * 3_600_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_june_15_2020() {
        // 1592179200 = Mon, 15 Jun 2020 00:00:00 UTC.
        assert_eq!(STUDY_EPOCH_UNIX % 86_400, 0, "midnight-aligned");
        // Days since Unix epoch: 18428 = 2020-06-15.
        assert_eq!(STUDY_EPOCH_UNIX / 86_400, 18_428);
    }

    #[test]
    fn key_dates() {
        assert_eq!(StudyDay(0).label(), "Jun 15");
        assert_eq!(StudyDay(RELEASE_DAY).label(), "Jun 16");
        assert_eq!(StudyDay(BERLIN_OUTBREAK_DAY).label(), "Jun 18");
        assert_eq!(StudyDay(GUETERSLOH_LOCKDOWN_DAY).label(), "Jun 23");
        assert_eq!(StudyDay(10).label(), "Jun 25");
        assert_eq!(StudyDay(JULY_24_DAY).label(), "Jul 24");
    }

    #[test]
    fn milestone_hour() {
        // 36 h after a June-16 00:00 release = June 17, 12:00.
        let (day, hod) = Timeline::split(MILESTONE_36H_HOUR);
        assert_eq!(day.label(), "Jun 17");
        assert_eq!(hod, 12);
    }

    #[test]
    fn conversions() {
        assert_eq!(Timeline::measurement().hours(), 264);
        assert_eq!(Timeline::unix_of_hour(0), STUDY_EPOCH_UNIX);
        assert_eq!(Timeline::unix_of_hour(24), STUDY_EPOCH_UNIX + 86_400);
        assert_eq!(Timeline::ms_of_hour(2), 7_200_000);
        let (d, h) = Timeline::split(263);
        assert_eq!(d, StudyDay(10));
        assert_eq!(h, 23);
    }

    #[test]
    fn study_day_start_hour() {
        assert_eq!(StudyDay(0).start_hour(), 0);
        assert_eq!(StudyDay(8).start_hour(), 192);
    }
}
