//! Statistics helpers used across the pipeline: quantiles, correlation,
//! concentration (Gini), and bootstrap confidence intervals for the
//! growth ratios the outbreak analysis reports.

use rand::Rng;

/// The `q`-quantile (0–1) of `values` (nearest-rank on a sorted copy).
/// Returns NaN for empty input.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Pearson correlation coefficient. NaN when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    if a.is_empty() {
        return f64::NAN;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt())
}

/// Gini coefficient of a non-negative distribution — used to quantify
/// how concentrated Figure 3's traffic is across districts
/// (0 = perfectly even, → 1 = all traffic in one district).
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().map(|&v| v as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Percentile bootstrap confidence interval for the *ratio of sums*
/// `sum(post) / sum(pre)` — the growth statistic the outbreak analysis
/// uses — by resampling days with replacement.
pub fn bootstrap_growth_ci<R: Rng>(
    rng: &mut R,
    pre_days: &[u64],
    post_days: &[u64],
    resamples: u32,
    alpha: f64,
) -> (f64, f64) {
    assert!(!pre_days.is_empty() && !post_days.is_empty());
    let mut ratios = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let pre: u64 = (0..pre_days.len())
            .map(|_| pre_days[rng.gen_range(0..pre_days.len())])
            .sum();
        let post: u64 = (0..post_days.len())
            .map(|_| post_days[rng.gen_range(0..post_days.len())])
            .sum();
        if pre > 0 {
            ratios.push(post as f64 / pre as f64);
        }
    }
    (
        quantile(&ratios, alpha / 2.0),
        quantile(&ratios, 1.0 - alpha / 2.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantile_basics() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_ignores_nonfinite() {
        let v = [1.0, f64::NAN, 3.0];
        assert_eq!(quantile(&v, 1.0), 3.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[5, 5, 5, 5]) - 0.0).abs() < 1e-12);
        // All mass in one of many: approaches (n-1)/n.
        let g = gini(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 100]);
        assert!((g - 0.9).abs() < 1e-12);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[]).is_nan());
    }

    #[test]
    fn gini_ordering() {
        let even = gini(&[10, 10, 10, 10]);
        let skewed = gini(&[1, 2, 3, 34]);
        assert!(skewed > even);
    }

    #[test]
    fn bootstrap_covers_true_ratio() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // True ratio = 600/300 = 2.0.
        let pre = [100u64, 100, 100];
        let post = [200u64, 200, 200];
        let (lo, hi) = bootstrap_growth_ci(&mut rng, &pre, &post, 500, 0.05);
        assert!(lo <= 2.0 && 2.0 <= hi, "CI [{lo}, {hi}]");
        // With zero variance the CI is a point.
        assert!((hi - lo).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_widens_with_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pre = [50u64, 150, 100];
        let post = [100u64, 300, 200];
        let (lo, hi) = bootstrap_growth_ci(&mut rng, &pre, &post, 1000, 0.05);
        assert!(hi > lo, "CI [{lo}, {hi}]");
        assert!(lo < 2.0 && hi > 2.0);
    }
}
