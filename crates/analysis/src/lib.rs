//! # cwa-analysis — the paper's measurement analysis pipeline
//!
//! Everything in this crate consumes only what the paper's authors had:
//! **anonymized, sampled flow records** plus public side data (the CDN's
//! documented service prefixes, the official download numbers, a
//! prefix-keyed geolocation table, and the per-ISP router ground truth
//! for one ISP). It never touches simulator ground truth.
//!
//! * [`filter`] — §2's data-set construction: keep HTTPS (tcp/443) IPv4
//!   flows *from* the two CWA service prefixes *to* users.
//! * [`timeseries`] — Figure 2: hourly flow/byte series normalized to
//!   the minimum, day totals, and the June-16 release jump (the "7.5×
//!   increase of flows").
//! * [`persistence`] — §3's prefix persistence: per routing prefix, the
//!   fraction of days between its first and last appearance on which it
//!   was actually observed; reported as quantiles ("50 % (75 %) of the
//!   prefixes occur in 67 % (80 %) of possible days").
//! * [`geoloc`] — Figure 3: two-source geolocation (router ground truth
//!   where available, geolocation DB otherwise), district aggregation
//!   normalized to the maximum, district coverage, and the ground-truth
//!   share ("18 % of geolocations").
//! * [`outbreak`] — §3's outbreak analysis: growth ratios around June 23
//!   per federal state (NRW vs. the rest), the Gütersloh local check,
//!   and the Berlin June-18 single-ISP check.
//! * [`stream`] — the streaming fan-out driver: applies the §2 filter
//!   once and feeds each matching record to every registered
//!   [`FlowSink`](cwa_netflow::sink::FlowSink) consumer — all analyses
//!   in **one** record pass, O(chunk) resident memory.
//! * [`windowed`] — the live view: wraps all four consumers in a
//!   [`WindowedView`](windowed::WindowedView) that keeps cumulative
//!   study-window state plus a sliding last-N-days window with tiered
//!   downsampling (raw hours → daily summaries → lifetime totals), so an
//!   endless run stays memory-bounded while serving current figures.
//! * [`figures`] — assembles the Figure-2 and Figure-3 data structures
//!   and renders them as text/CSV for the benches and examples.
//! * [`zipmap`] — ZIP-code-area roll-up (the figure's actual spatial
//!   unit), [`stats`] — quantiles/correlation/Gini/bootstrap CIs,
//!   [`changepoint`] — CUSUM detection of the release jump and the
//!   June-23 surge from the data, and [`svg`] — self-contained SVG
//!   renderings of both figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changepoint;
pub mod figures;
pub mod filter;
pub mod geoloc;
pub mod outbreak;
pub mod persistence;
pub mod stats;
pub mod stream;
pub mod svg;
pub mod timeseries;
pub mod windowed;
pub mod zipmap;

pub use figures::{Figure2, Figure3};
pub use filter::FlowFilter;
pub use geoloc::{GeoAttribution, GeoDayAccumulator, GeolocationPipeline};
pub use outbreak::{OutbreakAccumulator, OutbreakAnalysis};
pub use persistence::PersistenceAnalysis;
pub use stream::{FanOut, StreamCounts};
pub use timeseries::HourlySeries;
pub use windowed::{WindowConfig, WindowedSnapshot, WindowedView};
pub use zipmap::ZipAreaMap;
