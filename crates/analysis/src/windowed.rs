//! Live windowed views over the streaming consumers.
//!
//! The paper's measurement was a *standing* observation: the vantage
//! point watched CWA traffic continuously and every figure is a view
//! over a growing window. [`WindowedView`] is that layer for the
//! reproduction's live mode: it wraps all four incremental consumers
//! ([`HourlySeries`], [`GeoDayAccumulator`], [`PersistenceAnalysis`],
//! [`OutbreakAccumulator`]) and additionally maintains a sliding
//! last-N-days window with **tiered downsampling** so an endless run
//! stays memory-bounded:
//!
//! * **window tier** — raw hour-resolution [`DayCell`]s for the most
//!   recent `window_days` days (default 14, matching the TEK retention
//!   the exposure model uses),
//! * **daily tier** — evicted days downsampled to one [`DaySummary`]
//!   each, retained for `daily_retention` days,
//! * **total tier** — lifetime sums; days falling off the daily tier
//!   collapse into these and are only counted, never re-expanded.
//!
//! Day boundaries are driven by the producer's export-hour
//! [`checkpoint`](FlowSink::checkpoint)s, *not* by record timestamps, so
//! every shard of the sharded driver advances (and evicts) at exactly
//! the same stream positions — which is what makes eviction commute
//! with [`absorb`](WindowedView::absorb).

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, Germany};
use cwa_netflow::flow::{prefix_of, FlowRecord};
use cwa_netflow::sink::{FlowChunk, FlowSink};

use crate::geoloc::{attribution_index, GeoDayAccumulator, GeolocationPipeline};
use crate::outbreak::OutbreakAccumulator;
use crate::persistence::PersistenceAnalysis;
use crate::timeseries::HourlySeries;

/// Retention knobs for the sliding tiers. Not part of the study
/// configuration — live retention must never perturb the config hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Days kept at raw hour resolution (the sliding window).
    pub window_days: u32,
    /// Evicted-day summaries kept before collapsing into totals.
    pub daily_retention: u32,
}

impl Default for WindowConfig {
    fn default() -> Self {
        // 14 days of raw window: the TEK retention period — a key can
        // matter for at most 14 days, so that is the natural "current
        // interest" horizon for the live figures.
        WindowConfig {
            window_days: 14,
            daily_retention: 64,
        }
    }
}

/// One day at raw hour resolution (the window tier).
#[derive(Debug, Clone)]
struct DayCell {
    day: u64,
    hour_flows: [u64; 24],
    hour_bytes: [u64; 24],
    district_flows: Vec<u64>,
    attributions: [u64; 3],
    state_flows: [u64; 16],
    /// Distinct client prefixes seen this day (window-resolution only:
    /// dropped at eviction — an unbounded cumulative prefix set is
    /// exactly what the tiering exists to avoid).
    prefixes: HashSet<u32>,
    /// Berlin-located flows by ISP id.
    berlin_isp: BTreeMap<u8, u64>,
}

impl DayCell {
    fn new(day: u64, districts: usize) -> Self {
        DayCell {
            day,
            hour_flows: [0; 24],
            hour_bytes: [0; 24],
            district_flows: vec![0; districts],
            attributions: [0; 3],
            state_flows: [0; 16],
            prefixes: HashSet::new(),
            berlin_isp: BTreeMap::new(),
        }
    }

    fn merge(&mut self, other: &DayCell) {
        for (a, b) in self.hour_flows.iter_mut().zip(&other.hour_flows) {
            *a += b;
        }
        for (a, b) in self.hour_bytes.iter_mut().zip(&other.hour_bytes) {
            *a += b;
        }
        for (a, b) in self.district_flows.iter_mut().zip(&other.district_flows) {
            *a += b;
        }
        for (a, b) in self.attributions.iter_mut().zip(&other.attributions) {
            *a += b;
        }
        for (a, b) in self.state_flows.iter_mut().zip(&other.state_flows) {
            *a += b;
        }
        self.prefixes.extend(&other.prefixes);
        for (isp, n) in &other.berlin_isp {
            *self.berlin_isp.entry(*isp).or_insert(0) += n;
        }
    }

    fn summary(&self) -> DaySummary {
        DaySummary {
            day: self.day,
            flows: self.hour_flows.iter().sum(),
            bytes: self.hour_bytes.iter().sum(),
            located: self.district_flows.iter().sum(),
        }
    }
}

/// One day downsampled to totals (the daily tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaySummary {
    /// Study day index.
    pub day: u64,
    /// Flows that day.
    pub flows: u64,
    /// Bytes that day.
    pub bytes: u64,
    /// Flows geolocated to some district that day.
    pub located: u64,
}

/// Lifetime sums (the total tier).
#[derive(Debug, Clone, Default)]
struct Totals {
    flows: u64,
    bytes: u64,
    attributions: [u64; 3],
    district_flows: Vec<u64>,
    state_flows: [u64; 16],
    /// Days whose daily summaries have been collapsed into the sums.
    days_collapsed: u64,
}

/// The live view: cumulative study-window consumers plus the sliding
/// window tiers. Generic over the ISP resolver exactly like
/// [`OutbreakAccumulator`].
///
/// `Clone` (for resolvers that are `Clone`) snapshots the full mergeable
/// state: the sharded live driver clones each shard's view at day
/// boundaries and [`absorb`](WindowedView::absorb)s the clones into an
/// interim merged view without disturbing the shards themselves.
#[derive(Clone)]
pub struct WindowedView<'a, F> {
    /// Study-window hourly series (identical to the batch consumer).
    pub series: HourlySeries,
    /// Study-window per-day geolocation tables.
    pub geo: GeoDayAccumulator<'a>,
    /// Study-window prefix persistence.
    pub persistence: PersistenceAnalysis,
    /// Study-window outbreak tables.
    pub outbreak: OutbreakAccumulator<'a, F>,
    germany: &'a Germany,
    pipeline: &'a GeolocationPipeline<'a>,
    isp_of: F,
    berlin: Option<DistrictId>,
    prefix_len: u8,
    config: WindowConfig,
    hours_seen: u64,
    window: VecDeque<DayCell>,
    daily: VecDeque<DaySummary>,
    totals: Totals,
}

impl<'a, F> WindowedView<'a, F>
where
    F: Fn(Ipv4Addr) -> Option<u8>,
{
    /// Creates a view whose study tier covers `[0, study_days)` (at most
    /// 64 days — the persistence bitmap's cap) and whose window tiers
    /// follow `config`. The resolver is cloned once so the outbreak
    /// study tier and the window tier resolve through the same table.
    pub fn new(
        germany: &'a Germany,
        pipeline: &'a GeolocationPipeline<'a>,
        isp_of: F,
        prefix_len: u8,
        study_days: u32,
        config: WindowConfig,
    ) -> Self
    where
        F: Clone,
    {
        assert!(config.window_days >= 1, "window needs at least one day");
        let n = germany.len();
        let mut window = VecDeque::new();
        window.push_back(DayCell::new(0, n));
        WindowedView {
            series: HourlySeries::new(study_days * 24),
            geo: GeoDayAccumulator::new(pipeline, study_days),
            persistence: PersistenceAnalysis::new(prefix_len, study_days),
            outbreak: OutbreakAccumulator::new(germany, pipeline, isp_of.clone(), study_days),
            germany,
            pipeline,
            isp_of,
            berlin: germany.by_name("Berlin").map(|d| d.id),
            prefix_len,
            config,
            hours_seen: 0,
            window,
            daily: VecDeque::new(),
            totals: Totals {
                district_flows: vec![0; n],
                ..Totals::default()
            },
        }
    }

    /// Hours of stream progression noted so far (one per producer
    /// checkpoint).
    pub fn hours_seen(&self) -> u64 {
        self.hours_seen
    }

    /// The current day index (completed days = `hours_seen / 24`).
    pub fn current_day(&self) -> u64 {
        self.hours_seen / 24
    }

    /// Notes one export-hour of stream progression. Every 24th call
    /// opens the next day cell and evicts cells that have slid out of
    /// the window. Drive this from the producer's checkpoints so all
    /// shards advance identically.
    pub fn note_hour(&mut self) {
        self.hours_seen += 1;
        if self.hours_seen.is_multiple_of(24) {
            let current_day = self.hours_seen / 24;
            self.open_day(current_day);
        }
    }

    /// Advances the view by `n` whole days (test/driver convenience).
    pub fn advance_days(&mut self, n: u64) {
        for _ in 0..n * 24 {
            self.note_hour();
        }
    }

    fn open_day(&mut self, current_day: u64) {
        while self.back_day() < current_day {
            let next = self.back_day() + 1;
            self.window
                .push_back(DayCell::new(next, self.germany.len()));
        }
        while self.window.len() > self.config.window_days as usize {
            self.evict_front();
        }
    }

    fn back_day(&self) -> u64 {
        self.window
            .back()
            .map(|c| c.day)
            .expect("window never empty")
    }

    fn front_day(&self) -> u64 {
        self.window
            .front()
            .map(|c| c.day)
            .expect("window never empty")
    }

    fn evict_front(&mut self) {
        let cell = self.window.pop_front().expect("window never empty");
        let summary = cell.summary();
        self.totals.flows += summary.flows;
        self.totals.bytes += summary.bytes;
        for (t, c) in self.totals.attributions.iter_mut().zip(&cell.attributions) {
            *t += c;
        }
        for (t, c) in self
            .totals
            .district_flows
            .iter_mut()
            .zip(&cell.district_flows)
        {
            *t += c;
        }
        for (t, c) in self.totals.state_flows.iter_mut().zip(&cell.state_flows) {
            *t += c;
        }
        // Prefix set and per-ISP split are window-resolution only.
        self.daily.push_back(summary);
        while self.daily.len() > self.config.daily_retention as usize {
            self.daily.pop_front();
            self.totals.days_collapsed += 1;
        }
    }

    /// Feeds one (already §2-filtered) record into the window tier.
    fn window_observe(&mut self, first_ms: u64, dst: u32, bytes: u64) {
        let day = first_ms / 86_400_000;
        let hour_of_day = ((first_ms / 3_600_000) % 24) as usize;
        let client = Ipv4Addr::from(dst);
        let (district, attribution) = self.pipeline.locate(client);
        let front = self.front_day();
        if day < front {
            // Late record for an already-evicted day: its cell is gone,
            // fold straight into the total tier (deterministic — the
            // in-order producers never actually take this path).
            self.totals.flows += 1;
            self.totals.bytes += bytes;
            self.totals.attributions[attribution_index(attribution)] += 1;
            if let Some(d) = district {
                self.totals.district_flows[usize::from(d.0)] += 1;
                let state = self.germany.district(d).state;
                self.totals.state_flows[state.index()] += 1;
            }
            return;
        }
        while self.back_day() < day {
            let next = self.back_day() + 1;
            self.window
                .push_back(DayCell::new(next, self.germany.len()));
        }
        let idx = (day - front) as usize;
        let berlin = self.berlin;
        let isp = if district.is_some() && district == berlin {
            (self.isp_of)(client)
        } else {
            None
        };
        let cell = &mut self.window[idx];
        cell.hour_flows[hour_of_day] += 1;
        cell.hour_bytes[hour_of_day] += bytes;
        cell.attributions[attribution_index(attribution)] += 1;
        cell.prefixes
            .insert(u32::from(prefix_of(client, self.prefix_len)));
        if let Some(d) = district {
            cell.district_flows[usize::from(d.0)] += 1;
            let state = self.germany.district(d).state;
            cell.state_flows[state.index()] += 1;
        }
        if let Some(isp) = isp {
            *cell.berlin_isp.entry(isp).or_insert(0) += 1;
        }
    }

    /// Merges another view (same world, same checkpoint progression,
    /// same retention config) into this one. The other view may use a
    /// different resolver type, exactly like
    /// [`OutbreakAccumulator::absorb`]. Because day boundaries are
    /// checkpoint-driven, both views evicted at identical stream
    /// positions, so merging evicted views equals evicting the merged
    /// view — the commute the sharded driver relies on.
    pub fn absorb<G>(&mut self, other: &WindowedView<'_, G>)
    where
        G: Fn(Ipv4Addr) -> Option<u8>,
    {
        assert_eq!(
            self.hours_seen, other.hours_seen,
            "same checkpoint progression required"
        );
        assert_eq!(self.config, other.config, "same retention config required");
        assert_eq!(
            self.prefix_len, other.prefix_len,
            "same prefix length required"
        );
        self.series.absorb(&other.series);
        self.geo.absorb(&other.geo);
        self.persistence.absorb(&other.persistence);
        self.outbreak.absorb(&other.outbreak);

        for cell in &other.window {
            assert!(
                cell.day >= self.front_day(),
                "window misaligned: day {} already evicted",
                cell.day
            );
            while self.back_day() < cell.day {
                let next = self.back_day() + 1;
                self.window
                    .push_back(DayCell::new(next, self.germany.len()));
            }
            let idx = (cell.day - self.front_day()) as usize;
            self.window[idx].merge(cell);
        }

        assert_eq!(
            self.daily.len(),
            other.daily.len(),
            "same daily-tier coverage required"
        );
        for (mine, theirs) in self.daily.iter_mut().zip(&other.daily) {
            assert_eq!(mine.day, theirs.day, "daily tier misaligned");
            mine.flows += theirs.flows;
            mine.bytes += theirs.bytes;
            mine.located += theirs.located;
        }

        self.totals.flows += other.totals.flows;
        self.totals.bytes += other.totals.bytes;
        for (a, b) in self
            .totals
            .attributions
            .iter_mut()
            .zip(&other.totals.attributions)
        {
            *a += b;
        }
        for (a, b) in self
            .totals
            .district_flows
            .iter_mut()
            .zip(&other.totals.district_flows)
        {
            *a += b;
        }
        for (a, b) in self
            .totals
            .state_flows
            .iter_mut()
            .zip(&other.totals.state_flows)
        {
            *a += b;
        }
    }

    /// Serializable snapshot of both the cumulative and the windowed
    /// state — what the live HTTP endpoints publish.
    pub fn snapshot(&self) -> WindowedSnapshot {
        let mut daily: Vec<DaySummary> = self.daily.iter().copied().collect();
        let mut cumulative = CumulativeSnapshot {
            flows: self.totals.flows,
            bytes: self.totals.bytes,
            attributions: self.totals.attributions,
            district_flows: self.totals.district_flows.clone(),
            state_flows: self.totals.state_flows,
            daily: Vec::new(),
            days_collapsed: self.totals.days_collapsed,
        };
        let mut hourly_flows = Vec::with_capacity(self.window.len() * 24);
        let mut hourly_bytes = Vec::with_capacity(self.window.len() * 24);
        let mut window_district = vec![0u64; self.germany.len()];
        let mut window_attr = [0u64; 3];
        let mut state_daily = Vec::with_capacity(self.window.len());
        let mut prefix_union: HashSet<u32> = HashSet::new();
        let mut berlin: BTreeMap<u8, Vec<u64>> = BTreeMap::new();
        for (i, cell) in self.window.iter().enumerate() {
            let summary = cell.summary();
            cumulative.flows += summary.flows;
            cumulative.bytes += summary.bytes;
            for (a, b) in cumulative.attributions.iter_mut().zip(&cell.attributions) {
                *a += b;
            }
            for (a, b) in cumulative
                .district_flows
                .iter_mut()
                .zip(&cell.district_flows)
            {
                *a += b;
            }
            for (a, b) in cumulative.state_flows.iter_mut().zip(&cell.state_flows) {
                *a += b;
            }
            daily.push(summary);
            hourly_flows.extend_from_slice(&cell.hour_flows);
            hourly_bytes.extend_from_slice(&cell.hour_bytes);
            for (a, b) in window_district.iter_mut().zip(&cell.district_flows) {
                *a += b;
            }
            for (a, b) in window_attr.iter_mut().zip(&cell.attributions) {
                *a += b;
            }
            state_daily.push(cell.state_flows);
            prefix_union.extend(&cell.prefixes);
            for (isp, n) in &cell.berlin_isp {
                berlin
                    .entry(*isp)
                    .or_insert_with(|| vec![0u64; self.window.len()])[i] += n;
            }
        }
        cumulative.daily = daily;
        WindowedSnapshot {
            hours_seen: self.hours_seen,
            day: self.current_day(),
            cumulative,
            window: WindowSnapshot {
                from_day: self.front_day(),
                to_day: self.back_day() + 1,
                hourly_flows,
                hourly_bytes,
                district_flows: window_district,
                attributions: window_attr,
                state_daily,
                berlin_isp_daily: berlin.into_iter().collect(),
                distinct_prefixes: prefix_union.len() as u64,
            },
        }
    }

    /// Approximate count of live `u64`-sized slots held by the sliding
    /// tiers plus the persistence map (the only study-tier structure
    /// that grows with data; it saturates once the ≤64-day study window
    /// has passed). The endless-mode memory bound is asserted on this.
    pub fn resident_slots(&self) -> usize {
        let mut n = 0;
        for cell in &self.window {
            n += 24 * 2
                + cell.district_flows.len()
                + 3
                + 16
                + cell.prefixes.len()
                + cell.berlin_isp.len() * 2;
        }
        n += self.daily.len() * 4;
        n += self.totals.district_flows.len() + 16 + 3 + 3;
        n += self.persistence.prefix_count();
        n
    }
}

/// A snapshot of a [`WindowedView`] (the serialized live payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedSnapshot {
    /// Export hours noted so far.
    pub hours_seen: u64,
    /// Completed days (`hours_seen / 24`).
    pub day: u64,
    /// Lifetime view (total tier + daily tier + live window).
    pub cumulative: CumulativeSnapshot,
    /// Sliding-window view at raw hour resolution.
    pub window: WindowSnapshot,
}

/// Lifetime sums plus the retained per-day series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CumulativeSnapshot {
    /// All flows ever observed.
    pub flows: u64,
    /// All bytes ever observed.
    pub bytes: u64,
    /// Lifetime geolocation attribution counts
    /// (ground-truth/geodb/unlocated).
    pub attributions: [u64; 3],
    /// Lifetime flows per district.
    pub district_flows: Vec<u64>,
    /// Lifetime flows per federal state.
    pub state_flows: [u64; 16],
    /// Retained per-day summaries (daily tier, then the live window),
    /// oldest first. Days older than the daily retention only exist in
    /// the sums above.
    pub daily: Vec<DaySummary>,
    /// Days collapsed out of the daily tier into the sums.
    pub days_collapsed: u64,
}

/// The sliding window at raw hour resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// First day covered by the window (inclusive).
    pub from_day: u64,
    /// One past the last day covered.
    pub to_day: u64,
    /// Flows per hour across the window, oldest hour first.
    pub hourly_flows: Vec<u64>,
    /// Bytes per hour across the window.
    pub hourly_bytes: Vec<u64>,
    /// Window flows per district.
    pub district_flows: Vec<u64>,
    /// Window geolocation attribution counts.
    pub attributions: [u64; 3],
    /// Per-day federal-state flows across the window, oldest first.
    pub state_daily: Vec<[u64; 16]>,
    /// Berlin-located flows by ISP, one per-window-day series each,
    /// sorted by ISP id.
    pub berlin_isp_daily: Vec<(u8, Vec<u64>)>,
    /// Distinct client prefixes seen inside the window.
    pub distinct_prefixes: u64,
}

impl WindowSnapshot {
    /// Total flows inside the window.
    pub fn flows(&self) -> u64 {
        self.hourly_flows.iter().sum()
    }

    /// Window flows geolocated to some district.
    pub fn located_flows(&self) -> u64 {
        self.district_flows.iter().sum()
    }

    /// Flows per window day, oldest first (24-hour sums of
    /// [`hourly_flows`](WindowSnapshot::hourly_flows)).
    pub fn daily_flows(&self) -> Vec<u64> {
        self.hourly_flows
            .chunks(24)
            .map(|day| day.iter().sum())
            .collect()
    }

    /// True when every absolute day of `days` still has raw window data.
    pub fn contains_days(&self, days: std::ops::Range<u64>) -> bool {
        days.start >= self.from_day && days.end <= self.to_day
    }

    /// Window-local index of an absolute study day, when in the window.
    fn day_index(&self, day: u64) -> Option<usize> {
        (day >= self.from_day && day < self.to_day).then(|| (day - self.from_day) as usize)
    }

    /// Release-day jump `day1 / day0` — evaluable only while day 0 is
    /// still inside the window (NaN otherwise, exactly like an empty
    /// [`HourlySeries`]).
    pub fn release_jump(&self) -> f64 {
        if self.from_day != 0 {
            return f64::NAN;
        }
        let daily = self.daily_flows();
        if daily.len() < 2 || daily[0] == 0 {
            return f64::NAN;
        }
        daily[1] as f64 / daily[0] as f64
    }

    /// Fraction of districts with at least `min_flows` window flows.
    pub fn coverage(&self, min_flows: u64) -> f64 {
        if self.district_flows.is_empty() {
            return f64::NAN;
        }
        let covered = self
            .district_flows
            .iter()
            .filter(|&&f| f >= min_flows)
            .count();
        covered as f64 / self.district_flows.len() as f64
    }

    /// Share of window geolocations attributed to router ground truth
    /// (attribution order: ground truth, geo database, unlocated).
    pub fn ground_truth_share(&self) -> f64 {
        let gt = self.attributions[0] as f64;
        let db = self.attributions[1] as f64;
        if gt + db == 0.0 {
            return f64::NAN;
        }
        gt / (gt + db)
    }

    /// Window flows per federal state across an absolute-day range
    /// (days outside the window contribute nothing).
    pub fn state_sum(&self, days: std::ops::Range<u64>) -> [u64; 16] {
        let mut out = [0u64; 16];
        for day in days {
            if let Some(i) = self.day_index(day) {
                for (o, s) in out.iter_mut().zip(&self.state_daily[i]) {
                    *o += s;
                }
            }
        }
        out
    }

    /// Per-state growth ratio `post/pre` over absolute-day ranges
    /// (NaN where the pre-window sum is zero).
    pub fn state_growth(&self, pre: std::ops::Range<u64>, post: std::ops::Range<u64>) -> [f64; 16] {
        let pre_sums = self.state_sum(pre);
        let post_sums = self.state_sum(post);
        let mut out = [f64::NAN; 16];
        for ((o, &p), &q) in out.iter_mut().zip(&pre_sums).zip(&post_sums) {
            if p > 0 {
                *o = q as f64 / p as f64;
            }
        }
        out
    }

    /// Per-ISP growth of Berlin-located window traffic over
    /// absolute-day ranges, sorted by ISP id (NaN where pre is zero).
    pub fn berlin_isp_growth(
        &self,
        pre: std::ops::Range<u64>,
        post: std::ops::Range<u64>,
    ) -> Vec<(u8, f64)> {
        let sum = |series: &[u64], days: std::ops::Range<u64>| -> u64 {
            days.filter_map(|d| self.day_index(d).and_then(|i| series.get(i)))
                .sum()
        };
        self.berlin_isp_daily
            .iter()
            .map(|(isp, series)| {
                let p = sum(series, pre.clone());
                let q = sum(series, post.clone());
                let growth = if p == 0 {
                    f64::NAN
                } else {
                    q as f64 / p as f64
                };
                (*isp, growth)
            })
            .collect()
    }

    /// Berlin-located window flows summed across ISPs and a day range.
    pub fn berlin_sum(&self, days: std::ops::Range<u64>) -> u64 {
        self.berlin_isp_daily
            .iter()
            .map(|(_, series)| {
                days.clone()
                    .filter_map(|d| self.day_index(d).and_then(|i| series.get(i)))
                    .sum::<u64>()
            })
            .sum()
    }
}

impl<F> FlowSink for WindowedView<'_, F>
where
    F: Fn(Ipv4Addr) -> Option<u8>,
{
    fn observe(&mut self, rec: &FlowRecord) {
        self.series.observe(rec);
        self.geo.observe(rec);
        self.persistence.observe(rec);
        self.outbreak.observe(rec);
        self.window_observe(rec.first_ms, u32::from(rec.key.dst_ip), rec.bytes);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        FlowSink::observe_chunk(&mut self.series, chunk);
        FlowSink::observe_chunk(&mut self.geo, chunk);
        FlowSink::observe_chunk(&mut self.persistence, chunk);
        FlowSink::observe_chunk(&mut self.outbreak, chunk);
        for i in 0..chunk.len() {
            self.window_observe(chunk.first_ms[i], chunk.dst_ip[i], chunk.bytes[i]);
        }
    }

    fn checkpoint(&mut self) {
        self.note_hour();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geoloc::IspInfo;
    use cwa_geo::{AddressPlan, AddressPlanConfig, GeoDb, GeoDbConfig};
    use cwa_netflow::flow::{FlowKey, Protocol};
    use std::collections::HashMap;

    struct World {
        germany: Germany,
        plan: AddressPlan,
        geodb: GeoDb,
        isp_table: HashMap<u32, IspInfo>,
    }

    fn world() -> World {
        let germany = Germany::build();
        let plan = AddressPlan::build(
            &germany,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let geodb = GeoDb::build(&germany, &plan, GeoDbConfig::default());
        let mut isp_table = HashMap::new();
        for alloc in plan.allocations() {
            let is_gt = plan.isp(alloc.isp).ground_truth_routers;
            isp_table.insert(
                cwa_geo::geodb::mask(alloc.network, alloc.len),
                IspInfo {
                    isp: alloc.isp.0,
                    router_district: is_gt.then_some(alloc.district),
                },
            );
        }
        World {
            germany,
            plan,
            geodb,
            isp_table,
        }
    }

    fn rec(client: Ipv4Addr, day: u64, hour: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: client,
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes,
            first_ms: day * 86_400_000 + hour * 3_600_000 + 7,
            last_ms: day * 86_400_000 + hour * 3_600_000 + 400,
            tcp_flags: 0x18,
        }
    }

    /// Deterministic synthetic stream: a handful of records per hour
    /// drawn from the address plan, including late-night gaps.
    fn stream(w: &World, days: u64) -> Vec<Vec<FlowRecord>> {
        let allocs = w.plan.allocations();
        let mut hours = Vec::new();
        for day in 0..days {
            for hour in 0..24u64 {
                let mut recs = Vec::new();
                let n = (day + hour) % 4;
                for k in 0..n {
                    let idx = ((day * 31 + hour * 7 + k * 13) as usize) % allocs.len();
                    let alloc = &allocs[idx];
                    recs.push(rec(
                        alloc.host(((day + k) % 50) as u32 + 1),
                        day,
                        hour,
                        300 + 10 * k,
                    ));
                }
                hours.push(recs);
            }
        }
        hours
    }

    fn make_view<'a>(
        w: &'a World,
        pipeline: &'a GeolocationPipeline<'a>,
        study_days: u32,
        config: WindowConfig,
    ) -> WindowedView<'a, impl Fn(Ipv4Addr) -> Option<u8> + Clone + 'a> {
        let table = &w.isp_table;
        WindowedView::new(
            &w.germany,
            pipeline,
            move |client| table.get(&cwa_geo::geodb::mask(client, 18)).map(|e| e.isp),
            24,
            study_days,
            config,
        )
    }

    #[test]
    fn eviction_commutes_with_absorb() {
        let w = world();
        let pipeline = GeolocationPipeline::new(&w.germany, &w.geodb, &w.isp_table, 18);
        let config = WindowConfig {
            window_days: 5,
            daily_retention: 3,
        };
        let days = 40u64;
        let hours = stream(&w, days);

        // Single view over the whole stream.
        let mut single = make_view(&w, &pipeline, 11, config);
        for recs in &hours {
            for r in recs {
                single.observe(r);
            }
            single.note_hour();
        }

        // k views over a record-level round-robin split, checkpoints
        // delivered to every view (as the sharded driver does), merged
        // at the end — must equal the single view in every tier, even
        // though each shard evicted its own partial cells.
        for k in [2usize, 3] {
            let mut shards: Vec<_> = (0..k)
                .map(|_| make_view(&w, &pipeline, 11, config))
                .collect();
            let mut i = 0usize;
            for recs in &hours {
                for r in recs {
                    shards[i % k].observe(r);
                    i += 1;
                }
                for s in shards.iter_mut() {
                    s.note_hour();
                }
            }
            let mut merged = shards.remove(0);
            for s in &shards {
                merged.absorb(s);
            }
            assert_eq!(merged.snapshot(), single.snapshot(), "k={k}");
            assert_eq!(merged.series, single.series, "k={k}");
            assert_eq!(
                merged.persistence.prefix_count(),
                single.persistence.prefix_count(),
                "k={k}"
            );
            let a = merged.outbreak.to_analysis();
            let b = single.outbreak.to_analysis();
            assert_eq!(a.district_flows, b.district_flows, "k={k}");
            assert_eq!(a.state_flows, b.state_flows, "k={k}");
            assert_eq!(a.berlin_isp_flows, b.berlin_isp_flows, "k={k}");
        }
    }

    #[test]
    fn chunked_feed_equals_per_record() {
        let w = world();
        let pipeline = GeolocationPipeline::new(&w.germany, &w.geodb, &w.isp_table, 18);
        let config = WindowConfig {
            window_days: 4,
            daily_retention: 2,
        };
        let hours = stream(&w, 12);

        let mut by_record = make_view(&w, &pipeline, 11, config);
        let mut by_chunk = make_view(&w, &pipeline, 11, config);
        for recs in &hours {
            let mut chunk = FlowChunk::default();
            for r in recs {
                by_record.observe(r);
                chunk.push(r);
            }
            by_chunk.observe_chunk(&chunk);
            by_record.checkpoint();
            by_chunk.checkpoint();
        }
        assert_eq!(by_record.snapshot(), by_chunk.snapshot());
        assert_eq!(by_record.series, by_chunk.series);
    }

    #[test]
    fn endless_feed_stays_bounded_and_window_advances() {
        let w = world();
        let pipeline = GeolocationPipeline::new(&w.germany, &w.geodb, &w.isp_table, 18);
        let config = WindowConfig::default();
        let mut view = make_view(&w, &pipeline, 64, config);
        let allocs = w.plan.allocations();

        let mut peak_after_saturation = 0usize;
        let mut saturation_level = 0usize;
        let mut last_from = 0u64;
        let mut last_day = 0u64;
        for day in 0..300u64 {
            for hour in 0..24u64 {
                for k in 0..3u64 {
                    let idx = ((day * 31 + hour * 7 + k * 13) as usize) % allocs.len();
                    view.observe(&rec(
                        allocs[idx].host(((day + k) % 50) as u32 + 1),
                        day,
                        hour,
                        400,
                    ));
                }
                view.note_hour();
            }
            let snap = view.snapshot();
            assert!(snap.day > last_day || day == 0, "day must advance");
            assert!(
                snap.window.from_day >= last_from,
                "window must advance monotonically"
            );
            last_day = snap.day;
            last_from = snap.window.from_day;
            // After the study tier saturates (64 days) and the daily
            // tier fills (14 + 64 days), resident state must plateau.
            if day == 100 {
                saturation_level = view.resident_slots();
            }
            if day > 100 {
                peak_after_saturation = peak_after_saturation.max(view.resident_slots());
            }
        }
        assert!(saturation_level > 0);
        // The window contents vary day to day (distinct prefixes per
        // cell), so allow a small wobble but no growth trend.
        assert!(
            peak_after_saturation <= saturation_level + saturation_level / 5,
            "resident slots grew: {peak_after_saturation} vs {saturation_level}"
        );
        let snap = view.snapshot();
        assert_eq!(snap.day, 300);
        assert_eq!(snap.window.to_day - snap.window.from_day, 14);
        // Window spans days 287..=300 (the just-opened day 300
        // included), so days 0..=286 were evicted and all but the
        // retained 64 collapsed into totals.
        assert_eq!(
            snap.cumulative.days_collapsed,
            287 - 64,
            "old days collapse into totals"
        );
        // Nothing lost: lifetime flows equal everything fed.
        assert_eq!(snap.cumulative.flows, 300 * 24 * 3);
    }

    #[test]
    fn study_tier_matches_plain_consumers() {
        let w = world();
        let pipeline = GeolocationPipeline::new(&w.germany, &w.geodb, &w.isp_table, 18);
        let hours = stream(&w, 11);

        let mut view = make_view(&w, &pipeline, 11, WindowConfig::default());
        let mut series = HourlySeries::new(11 * 24);
        let mut geo = GeoDayAccumulator::new(&pipeline, 11);
        let mut persistence = PersistenceAnalysis::new(24, 11);
        let table = &w.isp_table;
        let isp_of =
            move |client: Ipv4Addr| table.get(&cwa_geo::geodb::mask(client, 18)).map(|e| e.isp);
        let mut outbreak = OutbreakAccumulator::new(&w.germany, &pipeline, isp_of, 11);
        for recs in &hours {
            for r in recs {
                view.observe(r);
                series.observe(r);
                geo.observe(r);
                persistence.observe(r);
                outbreak.observe(r);
            }
            view.note_hour();
        }
        assert_eq!(view.series, series);
        for (from, to) in [(1u32, 11u32), (1, 2)] {
            assert_eq!(
                view.geo.result(from, to).district_flows,
                geo.result(from, to).district_flows
            );
        }
        assert_eq!(view.persistence.prefix_count(), persistence.prefix_count());
        let a = view.outbreak.to_analysis();
        let b = outbreak.to_analysis();
        assert_eq!(a.district_flows, b.district_flows);
        assert_eq!(a.berlin_isp_flows, b.berlin_isp_flows);
    }

    /// A cloned view is an independent snapshot of the mergeable state:
    /// it equals the original at clone time, later observations leave it
    /// untouched, and absorbing clones equals absorbing the originals —
    /// the invariant the sharded live driver's interim publication
    /// stands on.
    #[test]
    fn cloned_view_is_independent_and_absorbable() {
        let w = world();
        let pipeline = GeolocationPipeline::new(&w.germany, &w.geodb, &w.isp_table, 18);
        let hours = stream(&w, 8);

        let mut a = make_view(&w, &pipeline, 11, WindowConfig::default());
        let mut b = make_view(&w, &pipeline, 11, WindowConfig::default());
        let mut i = 0usize;
        // First 4 days: round-robin split across two views.
        for recs in hours.iter().take(4 * 24) {
            for r in recs {
                if i.is_multiple_of(2) {
                    a.observe(r);
                } else {
                    b.observe(r);
                }
                i += 1;
            }
            a.note_hour();
            b.note_hour();
        }
        let a_clone = a.clone();
        let b_clone = b.clone();
        assert_eq!(a_clone.snapshot(), a.snapshot());

        let mut interim = a_clone;
        interim.absorb(&b_clone);
        let mut expected = a.clone();
        expected.absorb(&b);
        assert_eq!(interim.snapshot(), expected.snapshot());

        // Feeding the originals further must not change the clones'
        // merged snapshot.
        let frozen = interim.snapshot();
        for recs in hours.iter().skip(4 * 24) {
            for r in recs {
                a.observe(r);
            }
            a.note_hour();
            b.note_hour();
        }
        assert_eq!(interim.snapshot(), frozen);
        assert!(a.snapshot().hours_seen > frozen.hours_seen);
    }

    /// The window-snapshot claim inputs over a hand-built snapshot.
    #[test]
    fn window_snapshot_claim_inputs() {
        let snap = WindowSnapshot {
            from_day: 0,
            to_day: 3,
            hourly_flows: {
                let mut h = vec![0u64; 72];
                h[0] = 4; // day 0: 4 flows
                h[25] = 12; // day 1: 12 flows
                h[50] = 6; // day 2: 6 flows
                h
            },
            hourly_bytes: vec![0; 72],
            district_flows: vec![3, 0, 6, 1],
            attributions: [9, 41, 5],
            state_daily: {
                let mut days = vec![[0u64; 16]; 3];
                days[0][0] = 10;
                days[0][1] = 4;
                days[1][0] = 20;
                days[1][1] = 4;
                days[2][0] = 30;
                days
            },
            berlin_isp_daily: vec![(1, vec![2, 4, 8]), (2, vec![5, 5, 0])],
            distinct_prefixes: 7,
        };
        assert_eq!(snap.flows(), 22);
        assert_eq!(snap.located_flows(), 10);
        assert_eq!(snap.daily_flows(), vec![4, 12, 6]);
        assert!((snap.release_jump() - 3.0).abs() < 1e-12);
        assert!((snap.coverage(1) - 0.75).abs() < 1e-12);
        assert!((snap.ground_truth_share() - 9.0 / 50.0).abs() < 1e-12);
        assert!(snap.contains_days(0..3));
        assert!(!snap.contains_days(0..4));
        assert_eq!(snap.state_sum(0..2), {
            let mut s = [0u64; 16];
            s[0] = 30;
            s[1] = 8;
            s
        });
        let growth = snap.state_growth(0..1, 1..2);
        assert!((growth[0] - 2.0).abs() < 1e-12);
        assert!((growth[1] - 1.0).abs() < 1e-12);
        assert!(growth[2].is_nan(), "zero pre-sum is NaN, not inf");
        let berlin = snap.berlin_isp_growth(0..1, 1..3);
        assert_eq!(berlin.len(), 2);
        assert!((berlin[0].1 - 6.0).abs() < 1e-12);
        assert!((berlin[1].1 - 1.0).abs() < 1e-12);
        assert_eq!(snap.berlin_sum(0..2), 16);

        // A window that has slid past day 0 cannot evaluate the jump.
        let slid = WindowSnapshot {
            from_day: 2,
            to_day: 5,
            ..snap
        };
        assert!(slid.release_jump().is_nan());
        assert_eq!(slid.state_sum(0..2), [0u64; 16]);
    }
}
