//! The streaming fan-out driver: one record pass, every consumer fed.
//!
//! [`FanOut`] is itself a [`FlowSink`], so it plugs directly into the
//! producers' chunked emission (`PreparedSim::run_traffic` in
//! `cwa-simnet`). It applies the §2 flow filter **once** per record and
//! forwards each match to every registered consumer — the streaming
//! replacement for the five-plus full scans the batch pipeline used to
//! make (filter, hourly series, two geolocation windows, persistence,
//! outbreak).
//!
//! The driver keeps plain `u64` counts (records in, records matched,
//! per-consumer deliveries); the caller publishes them to an
//! observability registry if one is attached. For the flight recorder
//! the driver can carry a [`cwa_obs::StageLog`]: per-record filter and
//! per-consumer busy time is accumulated and flushed as coalesced trace
//! spans at every producer checkpoint (export-hour boundary) — the
//! record path never emits an event per record.

use std::sync::Arc;

use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::{FlowChunk, FlowSink};
use cwa_obs::{StageLog, TraceBuf, Tracer};

use crate::filter::FlowFilter;

/// One registered consumer with its delivery count.
struct Consumer<'a> {
    name: &'static str,
    sink: &'a mut dyn FlowSink,
    records: u64,
}

/// Filters the record stream once and fans each matching record out to
/// every registered consumer, in registration order.
pub struct FanOut<'a> {
    filter: &'a FlowFilter,
    consumers: Vec<Consumer<'a>>,
    records_in: u64,
    records_matched: u64,
    trace: Option<StageLog>,
    /// Reusable selection scratch for the chunked path.
    selection: FlowChunk,
}

impl<'a> FanOut<'a> {
    /// Creates a driver applying `filter` to the incoming stream.
    pub fn new(filter: &'a FlowFilter) -> Self {
        FanOut {
            filter,
            consumers: Vec::new(),
            records_in: 0,
            records_matched: 0,
            trace: None,
            selection: FlowChunk::default(),
        }
    }

    /// Attaches flight-recorder stage timing, emitting onto `buf`. Call
    /// *after* registering every consumer: the consumer names become the
    /// per-stage trace span names. Observation-only — attaching a trace
    /// never changes what consumers see.
    pub fn attach_trace(&mut self, tracer: &Tracer, buf: Arc<TraceBuf>) {
        let names: Vec<&str> = self.consumers.iter().map(|c| c.name).collect();
        self.trace = Some(StageLog::new(tracer, buf, &names));
    }

    /// Registers a named consumer. Matching records are delivered in
    /// registration order.
    pub fn register(&mut self, name: &'static str, sink: &'a mut dyn FlowSink) {
        self.consumers.push(Consumer {
            name,
            sink,
            records: 0,
        });
    }

    /// Total records seen (before filtering).
    pub fn records_in(&self) -> u64 {
        self.records_in
    }

    /// Records that passed the filter (each was delivered to every
    /// consumer).
    pub fn records_matched(&self) -> u64 {
        self.records_matched
    }

    /// Per-consumer delivery counts, in registration order.
    pub fn consumer_counts(&self) -> Vec<(&'static str, u64)> {
        self.consumers.iter().map(|c| (c.name, c.records)).collect()
    }

    /// Snapshot of every driver counter as a mergeable value (the
    /// per-shard form: each shard's driver contributes one snapshot,
    /// merged totals equal a single driver over the combined stream).
    pub fn counts(&self) -> StreamCounts {
        StreamCounts {
            records_in: self.records_in,
            records_matched: self.records_matched,
            consumers: self.consumer_counts(),
        }
    }
}

/// The fan-out driver's counters as plain mergeable data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamCounts {
    /// Total records seen (before filtering).
    pub records_in: u64,
    /// Records that passed the filter.
    pub records_matched: u64,
    /// Per-consumer delivery counts, in registration order.
    pub consumers: Vec<(&'static str, u64)>,
}

impl StreamCounts {
    /// Creates zeroed counts for the given consumer names.
    pub fn zeroed(consumer_names: &[&'static str]) -> Self {
        StreamCounts {
            records_in: 0,
            records_matched: 0,
            consumers: consumer_names.iter().map(|&n| (n, 0)).collect(),
        }
    }

    /// Merges another driver's counters into this one. Both must list
    /// the same consumers in the same registration order.
    pub fn absorb(&mut self, other: &StreamCounts) {
        assert_eq!(
            self.consumers.len(),
            other.consumers.len(),
            "same consumer set required"
        );
        self.records_in += other.records_in;
        self.records_matched += other.records_matched;
        for ((name, count), (other_name, other_count)) in
            self.consumers.iter_mut().zip(&other.consumers)
        {
            assert_eq!(
                name, other_name,
                "same consumer registration order required"
            );
            *count += other_count;
        }
    }
}

impl FlowSink for FanOut<'_> {
    fn observe(&mut self, rec: &FlowRecord) {
        self.records_in += 1;
        let Some(log) = &mut self.trace else {
            // Untraced fast path: zero timing overhead.
            if !self.filter.matches(rec) {
                return;
            }
            self.records_matched += 1;
            for c in &mut self.consumers {
                c.sink.observe(rec);
                c.records += 1;
            }
            return;
        };
        let mut t = log.now_ns();
        let matched = self.filter.matches(rec);
        let after_filter = log.now_ns();
        log.add_filter(after_filter.saturating_sub(t));
        if !matched {
            return;
        }
        t = after_filter;
        self.records_matched += 1;
        for (i, c) in self.consumers.iter_mut().enumerate() {
            c.sink.observe(rec);
            c.records += 1;
            let now = log.now_ns();
            log.add_stage(i, now.saturating_sub(t));
            t = now;
        }
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.records_in += chunk.len() as u64;
        let mut sel = std::mem::take(&mut self.selection);
        match &mut self.trace {
            None => {
                // Untraced fast path: one columnar filter pass, one dyn
                // call per consumer per chunk.
                self.filter.select_into(chunk, &mut sel);
                if !sel.is_empty() {
                    self.records_matched += sel.len() as u64;
                    for c in &mut self.consumers {
                        c.sink.observe_chunk(&sel);
                        c.records += sel.len() as u64;
                    }
                }
            }
            Some(log) => {
                let mut t = log.now_ns();
                self.filter.select_into(chunk, &mut sel);
                let after_filter = log.now_ns();
                log.add_filter(after_filter.saturating_sub(t));
                if !sel.is_empty() {
                    self.records_matched += sel.len() as u64;
                    t = after_filter;
                    for (i, c) in self.consumers.iter_mut().enumerate() {
                        c.sink.observe_chunk(&sel);
                        c.records += sel.len() as u64;
                        let now = log.now_ns();
                        log.add_stage(i, now.saturating_sub(t));
                        t = now;
                    }
                }
            }
        }
        self.selection = sel;
    }

    fn finish(&mut self) {
        if let Some(log) = &mut self.trace {
            log.flush();
        }
        for c in &mut self.consumers {
            c.sink.finish();
        }
    }

    fn checkpoint(&mut self) {
        if let Some(log) = &mut self.trace {
            log.flush();
        }
        for c in &mut self.consumers {
            c.sink.checkpoint();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::HourlySeries;
    use cwa_netflow::flow::{FlowKey, Protocol};
    use cwa_netflow::sink::CountingSink;
    use std::net::Ipv4Addr;

    fn cdn_rec(hour: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: Ipv4Addr::new(84, 0, 0, 1),
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 700,
            first_ms: hour * 3_600_000,
            last_ms: hour * 3_600_000 + 100,
            tcp_flags: 0x18,
        }
    }

    fn background_rec() -> FlowRecord {
        let mut r = cdn_rec(0);
        r.key.src_ip = Ipv4Addr::new(203, 0, 113, 9);
        r
    }

    fn filter() -> FlowFilter {
        FlowFilter::cwa(vec![(Ipv4Addr::new(81, 200, 16, 0), 22)])
    }

    #[test]
    fn filters_once_and_fans_out_to_all() {
        let f = filter();
        let mut series = HourlySeries::new(24);
        let mut count = CountingSink::default();
        let mut fan = FanOut::new(&f);
        fan.register("timeseries", &mut series);
        fan.register("count", &mut count);

        fan.observe(&cdn_rec(0));
        fan.observe(&background_rec());
        fan.observe(&cdn_rec(3));
        fan.finish();

        assert_eq!(fan.records_in(), 3);
        assert_eq!(fan.records_matched(), 2);
        assert_eq!(fan.consumer_counts(), vec![("timeseries", 2), ("count", 2)]);
        assert_eq!(series.total_flows(), 2);
        assert_eq!(series.flows[3], 1);
        assert_eq!(count.records, 2);
        assert!(count.finished, "finish propagates to consumers");
    }

    #[test]
    fn stream_counts_merge_like_one_driver() {
        let f = filter();
        // One driver over the full stream …
        let mut all = CountingSink::default();
        let mut fan = FanOut::new(&f);
        fan.register("count", &mut all);
        fan.observe(&cdn_rec(0));
        fan.observe(&background_rec());
        fan.observe(&cdn_rec(3));
        let single = fan.counts();

        // … equals two drivers over a split of it, merged.
        let mut part_a = CountingSink::default();
        let mut fan_a = FanOut::new(&f);
        fan_a.register("count", &mut part_a);
        fan_a.observe(&cdn_rec(0));
        fan_a.observe(&background_rec());
        let mut part_b = CountingSink::default();
        let mut fan_b = FanOut::new(&f);
        fan_b.register("count", &mut part_b);
        fan_b.observe(&cdn_rec(3));

        let mut merged = StreamCounts::zeroed(&["count"]);
        merged.absorb(&fan_a.counts());
        merged.absorb(&fan_b.counts());
        assert_eq!(merged, single);
        assert_eq!(merged.records_in, 3);
        assert_eq!(merged.records_matched, 2);
    }

    #[test]
    fn tracing_is_observation_only_and_flushes_at_checkpoint() {
        let f = filter();
        let mut series = HourlySeries::new(24);
        let mut count = CountingSink::default();
        let mut fan = FanOut::new(&f);
        fan.register("timeseries", &mut series);
        fan.register("count", &mut count);
        let tracer = Tracer::new();
        fan.attach_trace(&tracer, tracer.thread(1, 2, "analysis"));

        fan.observe(&cdn_rec(0));
        fan.observe(&background_rec());
        fan.observe(&cdn_rec(3));
        fan.checkpoint();
        fan.finish();

        // Same counts as the untraced driver sees.
        assert_eq!(fan.records_in(), 3);
        assert_eq!(fan.records_matched(), 2);
        assert_eq!(fan.consumer_counts(), vec![("timeseries", 2), ("count", 2)]);

        let json = tracer.to_chrome_json();
        for name in ["\"filter\"", "\"analyze\"", "\"timeseries\"", "\"count\""] {
            assert!(json.contains(name), "missing {name} in {json}");
        }
    }

    #[test]
    fn chunked_observation_equals_per_record() {
        let f = filter();
        let records = [cdn_rec(0), background_rec(), cdn_rec(3), cdn_rec(5)];
        let mut chunk = FlowChunk::default();
        for r in &records {
            chunk.push(r);
        }

        // Per-record reference driver.
        let mut ref_series = HourlySeries::new(24);
        let mut ref_count = CountingSink::default();
        let mut ref_fan = FanOut::new(&f);
        ref_fan.register("timeseries", &mut ref_series);
        ref_fan.register("count", &mut ref_count);
        for r in &records {
            ref_fan.observe(r);
        }
        let ref_counts = ref_fan.counts();

        // Chunked driver (untraced).
        let mut series = HourlySeries::new(24);
        let mut count = CountingSink::default();
        let mut fan = FanOut::new(&f);
        fan.register("timeseries", &mut series);
        fan.register("count", &mut count);
        fan.observe_chunk(&chunk);
        assert_eq!(fan.counts(), ref_counts);
        assert_eq!(series, ref_series);
        assert_eq!(count.records, ref_count.records);

        // Chunked driver (traced): same counts, spans still named.
        let mut series_t = HourlySeries::new(24);
        let mut count_t = CountingSink::default();
        let mut fan_t = FanOut::new(&f);
        fan_t.register("timeseries", &mut series_t);
        fan_t.register("count", &mut count_t);
        let tracer = Tracer::new();
        fan_t.attach_trace(&tracer, tracer.thread(1, 2, "analysis"));
        fan_t.observe_chunk(&chunk);
        fan_t.checkpoint();
        assert_eq!(fan_t.counts(), ref_counts);
        let json = tracer.to_chrome_json();
        for name in ["\"filter\"", "\"timeseries\"", "\"count\""] {
            assert!(json.contains(name), "missing {name}");
        }
    }

    #[test]
    fn empty_stream_is_well_formed() {
        let f = filter();
        let mut count = CountingSink::default();
        let mut fan = FanOut::new(&f);
        fan.register("count", &mut count);
        fan.finish();
        assert_eq!(fan.records_in(), 0);
        assert_eq!(fan.records_matched(), 0);
        assert!(count.finished);
    }
}
