//! Data-set construction (§2 of the paper).
//!
//! "We filter server traffic using 2 IPv4 prefixes mentioned in the CWA
//! backend documentation […] As both, app and website, use HTTPS only,
//! we restrict the data to encrypted HTTPS (tcp/443) IPv4 flows from the
//! CDN to the user — resulting in ≈ 3.3 M matching flows within June
//! 15–25, 2020."

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use cwa_netflow::flow::{in_prefix, FlowRecord, Protocol};
use cwa_netflow::sink::FlowChunk;

/// The §2 flow filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowFilter {
    /// The documented CWA service prefixes.
    pub server_prefixes: Vec<(Ipv4Addr, u8)>,
    /// Server port (443: HTTPS only).
    pub port: u16,
}

impl FlowFilter {
    /// Builds the canonical CWA filter from the documented prefixes.
    pub fn cwa(server_prefixes: Vec<(Ipv4Addr, u8)>) -> Self {
        FlowFilter {
            server_prefixes,
            port: 443,
        }
    }

    /// Does a record match: TCP, server port, **from** a service prefix
    /// (CDN → user direction)?
    pub fn matches(&self, rec: &FlowRecord) -> bool {
        rec.key.protocol == Protocol::Tcp
            && rec.key.src_port == self.port
            && self
                .server_prefixes
                .iter()
                .any(|&(p, l)| in_prefix(rec.key.src_ip, p, l))
    }

    /// Applies the filter, borrowing matching records.
    pub fn apply<'a>(&self, records: &'a [FlowRecord]) -> Vec<&'a FlowRecord> {
        records.iter().filter(|r| self.matches(r)).collect()
    }

    /// Applies the filter, copying matching records.
    pub fn apply_owned(&self, records: &[FlowRecord]) -> Vec<FlowRecord> {
        records
            .iter()
            .filter(|r| self.matches(r))
            .copied()
            .collect()
    }

    /// The client (user-side) address of a matching record.
    pub fn client_of(&self, rec: &FlowRecord) -> Ipv4Addr {
        rec.key.dst_ip
    }

    /// Columnar form of [`matches`](FlowFilter::matches): evaluates the
    /// filter over a whole chunk's columns and gathers the matching
    /// rows into `out` (cleared first). Selects exactly the rows whose
    /// reassembled records `matches` accepts, in order.
    pub fn select_into(&self, chunk: &FlowChunk, out: &mut FlowChunk) {
        out.clear();
        let tcp = Protocol::Tcp.number();
        // (mask, want) per prefix, hoisted out of the row loop.
        let prefixes: Vec<(u32, u32)> = self
            .server_prefixes
            .iter()
            .map(|&(p, l)| {
                let mask = if l == 0 {
                    0
                } else if l >= 32 {
                    u32::MAX
                } else {
                    !(u32::MAX >> l)
                };
                (mask, u32::from(p) & mask)
            })
            .collect();
        for i in 0..chunk.len() {
            if chunk.protocol[i] == tcp
                && chunk.src_port[i] == self.port
                && prefixes
                    .iter()
                    .any(|&(mask, want)| chunk.src_ip[i] & mask == want)
            {
                out.push_row_from(chunk, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_netflow::flow::FlowKey;

    const P1: (Ipv4Addr, u8) = (Ipv4Addr::new(81, 200, 16, 0), 22);
    const P2: (Ipv4Addr, u8) = (Ipv4Addr::new(185, 139, 96, 0), 22);

    fn rec(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, proto: Protocol) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: src,
                dst_ip: dst,
                src_port: sport,
                dst_port: 50_000,
                protocol: proto,
            },
            packets: 1,
            bytes: 1000,
            first_ms: 0,
            last_ms: 10,
            tcp_flags: 0x18,
        }
    }

    fn filter() -> FlowFilter {
        FlowFilter::cwa(vec![P1, P2])
    }

    #[test]
    fn keeps_downstream_cdn_https() {
        let f = filter();
        let client = Ipv4Addr::new(84, 5, 5, 5);
        assert!(f.matches(&rec(
            Ipv4Addr::new(81, 200, 17, 3),
            443,
            client,
            Protocol::Tcp
        )));
        assert!(f.matches(&rec(
            Ipv4Addr::new(185, 139, 99, 1),
            443,
            client,
            Protocol::Tcp
        )));
    }

    #[test]
    fn rejects_upstream() {
        let f = filter();
        // Client → CDN: src is the client, not a service prefix.
        let r = rec(
            Ipv4Addr::new(84, 5, 5, 5),
            50_000,
            Ipv4Addr::new(81, 200, 17, 3),
            Protocol::Tcp,
        );
        assert!(!f.matches(&r));
    }

    #[test]
    fn rejects_other_servers() {
        let f = filter();
        let r = rec(
            Ipv4Addr::new(203, 0, 113, 7),
            443,
            Ipv4Addr::new(84, 5, 5, 5),
            Protocol::Tcp,
        );
        assert!(!f.matches(&r));
    }

    #[test]
    fn rejects_non_tcp_and_non_443() {
        let f = filter();
        let client = Ipv4Addr::new(84, 5, 5, 5);
        assert!(!f.matches(&rec(
            Ipv4Addr::new(81, 200, 17, 3),
            443,
            client,
            Protocol::Udp
        )));
        assert!(!f.matches(&rec(
            Ipv4Addr::new(81, 200, 17, 3),
            80,
            client,
            Protocol::Tcp
        )));
    }

    #[test]
    fn apply_counts() {
        let f = filter();
        let client = Ipv4Addr::new(84, 5, 5, 5);
        let records = vec![
            rec(Ipv4Addr::new(81, 200, 17, 3), 443, client, Protocol::Tcp), // keep
            rec(client, 50_000, Ipv4Addr::new(81, 200, 17, 3), Protocol::Tcp), // drop
            rec(Ipv4Addr::new(203, 0, 113, 9), 443, client, Protocol::Tcp), // drop
            rec(Ipv4Addr::new(185, 139, 96, 9), 443, client, Protocol::Tcp), // keep
        ];
        assert_eq!(f.apply(&records).len(), 2);
        assert_eq!(f.apply_owned(&records).len(), 2);
    }

    #[test]
    fn select_into_equals_per_record_matches() {
        let f = filter();
        let client = Ipv4Addr::new(84, 5, 5, 5);
        let records = vec![
            rec(Ipv4Addr::new(81, 200, 17, 3), 443, client, Protocol::Tcp),
            rec(client, 50_000, Ipv4Addr::new(81, 200, 17, 3), Protocol::Tcp),
            rec(Ipv4Addr::new(203, 0, 113, 9), 443, client, Protocol::Tcp),
            rec(Ipv4Addr::new(185, 139, 96, 9), 443, client, Protocol::Tcp),
            rec(Ipv4Addr::new(81, 200, 17, 3), 443, client, Protocol::Udp),
            rec(Ipv4Addr::new(81, 200, 17, 3), 80, client, Protocol::Tcp),
        ];
        let mut chunk = FlowChunk::default();
        for r in &records {
            chunk.push(r);
        }
        let mut sel = FlowChunk::default();
        f.select_into(&chunk, &mut sel);
        let selected: Vec<FlowRecord> = sel.iter().collect();
        let expected: Vec<FlowRecord> = records.iter().filter(|r| f.matches(r)).copied().collect();
        assert_eq!(selected, expected);

        // Zero-length prefix: matches everything on protocol+port alone.
        let all = FlowFilter::cwa(vec![(Ipv4Addr::new(0, 0, 0, 0), 0)]);
        all.select_into(&chunk, &mut sel);
        let expected: Vec<FlowRecord> =
            records.iter().filter(|r| all.matches(r)).copied().collect();
        assert_eq!(sel.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn client_is_destination() {
        let f = filter();
        let client = Ipv4Addr::new(84, 5, 5, 5);
        let r = rec(Ipv4Addr::new(81, 200, 17, 3), 443, client, Protocol::Tcp);
        assert_eq!(f.client_of(&r), client);
    }
}
