//! Prefix persistence (§3 of the paper).
//!
//! "By knowing that customers of certain ISPs keep the same IP address
//! over time, we studied how regular routing prefixes communicate with
//! the CWA backend (fraction of individual first to last day observed).
//! We observe sustained interest as 50 % (75 %) of the prefixes occur in
//! 67 % (80 %) of possible days."
//!
//! For every routing prefix (clients truncated to a configurable prefix
//! length; the paper works on routing prefixes, we default to /24), we
//! compute `days_observed / (last_day − first_day + 1)` and report the
//! distribution. Because the input addresses are prefix-preserving
//! anonymized, this analysis works unchanged on anonymized data.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use cwa_netflow::flow::{prefix_of, FlowRecord};
use cwa_netflow::sink::{FlowChunk, FlowSink};

/// Per-prefix presence statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixPresence {
    /// First study day the prefix was observed.
    pub first_day: u32,
    /// Last study day the prefix was observed.
    pub last_day: u32,
    /// Number of distinct days observed.
    pub days_observed: u32,
}

impl PrefixPresence {
    /// `days_observed / (last − first + 1)` — the paper's metric.
    pub fn fraction(&self) -> f64 {
        let span = self.last_day - self.first_day + 1;
        f64::from(self.days_observed) / f64::from(span)
    }
}

/// The persistence analysis over a record set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistenceAnalysis {
    /// Prefix length used for grouping clients.
    pub prefix_len: u8,
    presence: HashMap<Ipv4Addr, PresenceBits>,
    days: u32,
}

/// Compact per-prefix day set (the study is ≤ 64 days).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PresenceBits(u64);

impl PersistenceAnalysis {
    /// Creates an empty analysis for a `days`-day window.
    pub fn new(prefix_len: u8, days: u32) -> Self {
        assert!(days <= 64, "presence bitmap covers at most 64 days");
        PersistenceAnalysis {
            prefix_len,
            presence: HashMap::new(),
            days,
        }
    }

    /// Marks one filtered record's client prefix present on its day
    /// (the streaming form of [`ingest`](PersistenceAnalysis::ingest)).
    pub fn observe(&mut self, rec: &FlowRecord) {
        let day = (rec.first_ms / 86_400_000) as u32;
        if day >= self.days {
            return;
        }
        let prefix = prefix_of(rec.key.dst_ip, self.prefix_len);
        let bits = self.presence.entry(prefix).or_insert(PresenceBits(0));
        bits.0 |= 1u64 << day;
    }

    /// Ingests filtered records, extracting the client (destination)
    /// address of each.
    pub fn ingest<'a, I>(&mut self, records: I)
    where
        I: IntoIterator<Item = &'a FlowRecord>,
    {
        for rec in records {
            self.observe(rec);
        }
    }

    /// Merges another analysis into this one: per-prefix day sets are
    /// OR-united. Bit-OR is commutative, associative and idempotent, so
    /// absorbing per-shard partials in any order — even with prefixes
    /// observed by several shards — equals the single-pass analysis over
    /// the union of their record streams, **provided both partials were
    /// keyed under the same anonymization key** (distinct Crypto-PAn
    /// keys map one client prefix to different anonymized prefixes).
    pub fn absorb(&mut self, other: &PersistenceAnalysis) {
        assert_eq!(
            (self.prefix_len, self.days),
            (other.prefix_len, other.days),
            "can only merge analyses with the same prefix length and day window"
        );
        for (prefix, bits) in &other.presence {
            self.presence.entry(*prefix).or_insert(PresenceBits(0)).0 |= bits.0;
        }
    }

    /// Number of distinct prefixes observed.
    pub fn prefix_count(&self) -> usize {
        self.presence.len()
    }

    /// Per-prefix presence summaries.
    pub fn presences(&self) -> Vec<PrefixPresence> {
        self.presence
            .values()
            .map(|bits| {
                let first_day = bits.0.trailing_zeros();
                let last_day = 63 - bits.0.leading_zeros();
                PrefixPresence {
                    first_day,
                    last_day,
                    days_observed: bits.0.count_ones(),
                }
            })
            .collect()
    }

    /// The `q`-quantile (0–1) of the per-prefix presence fraction.
    ///
    /// Note the direction: the paper's "50 % of prefixes occur in 67 %
    /// of possible days" is the **median** of this distribution (and its
    /// p75 is the fraction such that 75 % of prefixes lie *at or below*
    /// it — equivalently 25 % occur in more than that share of days).
    pub fn fraction_quantile(&self, q: f64) -> f64 {
        let mut fractions: Vec<f64> = self.presences().iter().map(|p| p.fraction()).collect();
        if fractions.is_empty() {
            return f64::NAN;
        }
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));
        let idx = ((fractions.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        fractions[idx]
    }

    /// Fraction of prefixes present on *every* day of their span.
    pub fn always_present_share(&self) -> f64 {
        let p = self.presences();
        if p.is_empty() {
            return f64::NAN;
        }
        p.iter().filter(|x| x.fraction() >= 1.0).count() as f64 / p.len() as f64
    }
}

impl FlowSink for PersistenceAnalysis {
    fn observe(&mut self, rec: &FlowRecord) {
        PersistenceAnalysis::observe(self, rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        // Column-wise: the presence bitmap needs only day and client.
        for (&first_ms, &dst) in chunk.first_ms.iter().zip(&chunk.dst_ip) {
            let day = (first_ms / 86_400_000) as u32;
            if day >= self.days {
                continue;
            }
            let prefix = prefix_of(Ipv4Addr::from(dst), self.prefix_len);
            let bits = self.presence.entry(prefix).or_insert(PresenceBits(0));
            bits.0 |= 1u64 << day;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_netflow::flow::{FlowKey, Protocol};

    fn rec(client: Ipv4Addr, day: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: client,
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 100,
            first_ms: day * 86_400_000 + 1000,
            last_ms: day * 86_400_000 + 2000,
            tcp_flags: 0,
        }
    }

    #[test]
    fn groups_by_prefix() {
        let mut a = PersistenceAnalysis::new(24, 11);
        let recs = [
            rec(Ipv4Addr::new(84, 1, 2, 3), 0),
            rec(Ipv4Addr::new(84, 1, 2, 200), 1), // same /24
            rec(Ipv4Addr::new(84, 1, 3, 3), 0),   // different /24
        ];
        a.ingest(recs.iter());
        assert_eq!(a.prefix_count(), 2);
    }

    #[test]
    fn fraction_semantics() {
        let mut a = PersistenceAnalysis::new(24, 11);
        // Seen on days 2, 4, 6: span 5, observed 3 -> 0.6.
        let c = Ipv4Addr::new(84, 1, 2, 3);
        let recs = [rec(c, 2), rec(c, 4), rec(c, 6)];
        a.ingest(recs.iter());
        let p = a.presences();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].first_day, 2);
        assert_eq!(p[0].last_day, 6);
        assert_eq!(p[0].days_observed, 3);
        assert!((p[0].fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn single_day_prefix_has_fraction_one() {
        let mut a = PersistenceAnalysis::new(24, 11);
        let recs = [rec(Ipv4Addr::new(84, 1, 2, 3), 7)];
        a.ingest(recs.iter());
        assert!((a.presences()[0].fraction() - 1.0).abs() < 1e-12);
        assert!((a.always_present_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut a = PersistenceAnalysis::new(24, 11);
        // Three prefixes with fractions 1.0, 0.5, 0.6.
        let recs = [
            rec(Ipv4Addr::new(10, 0, 0, 1), 0),
            rec(Ipv4Addr::new(10, 0, 1, 1), 0),
            rec(Ipv4Addr::new(10, 0, 1, 1), 1), // days 0-1 of 2 => 1.0
            rec(Ipv4Addr::new(10, 0, 2, 1), 0),
            rec(Ipv4Addr::new(10, 0, 2, 1), 1),
            // wait: need fractions distinct; prefix 3: days 0 and 2 -> 2/3
        ];
        a.ingest(recs.iter());
        let q0 = a.fraction_quantile(0.0);
        let q1 = a.fraction_quantile(1.0);
        assert!(q0 <= q1);
        assert!((0.0..=1.0).contains(&q0));
    }

    #[test]
    fn quantile_of_known_distribution() {
        let mut a = PersistenceAnalysis::new(24, 11);
        // Prefix A: every day 0..10 (fraction 1.0).
        // Prefix B: days 0 and 9 (fraction 0.2).
        // Prefix C: days 0,1,2,3,9 of span 10 (0.5).
        let pa = Ipv4Addr::new(10, 0, 0, 1);
        let pb = Ipv4Addr::new(10, 0, 1, 1);
        let pc = Ipv4Addr::new(10, 0, 2, 1);
        let mut recs = Vec::new();
        for d in 0..10u64 {
            recs.push(rec(pa, d));
        }
        recs.push(rec(pb, 0));
        recs.push(rec(pb, 9));
        for d in [0u64, 1, 2, 3, 9] {
            recs.push(rec(pc, d));
        }
        a.ingest(recs.iter());
        // Sorted fractions: [0.2, 0.5, 1.0].
        assert!((a.fraction_quantile(0.5) - 0.5).abs() < 1e-12);
        assert!((a.fraction_quantile(0.0) - 0.2).abs() < 1e-12);
        assert!((a.fraction_quantile(1.0) - 1.0).abs() < 1e-12);
        assert!((a.always_present_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_unions_day_sets() {
        // Split one stream so both parts see the same prefix on
        // overlapping days; the union must match the single pass.
        let c = Ipv4Addr::new(84, 1, 2, 3);
        let d = Ipv4Addr::new(84, 9, 9, 9);
        let all = [rec(c, 2), rec(c, 4), rec(c, 6), rec(d, 1)];
        let mut single = PersistenceAnalysis::new(24, 11);
        single.ingest(all.iter());

        let mut left = PersistenceAnalysis::new(24, 11);
        left.ingest([rec(c, 2), rec(c, 4)].iter());
        let mut right = PersistenceAnalysis::new(24, 11);
        right.ingest([rec(c, 4), rec(c, 6), rec(d, 1)].iter());
        left.absorb(&right);
        left.absorb(&PersistenceAnalysis::new(24, 11)); // identity

        assert_eq!(left.prefix_count(), single.prefix_count());
        let frac = |a: &PersistenceAnalysis| {
            let mut f: Vec<f64> = a.presences().iter().map(|p| p.fraction()).collect();
            f.sort_by(|x, y| x.partial_cmp(y).unwrap());
            f
        };
        assert_eq!(frac(&left), frac(&single));
    }

    #[test]
    #[should_panic(expected = "same prefix length")]
    fn absorb_rejects_mismatched_shapes() {
        let mut a = PersistenceAnalysis::new(24, 11);
        a.absorb(&PersistenceAnalysis::new(18, 11));
    }

    #[test]
    fn empty_analysis_nan() {
        let a = PersistenceAnalysis::new(24, 11);
        assert!(a.fraction_quantile(0.5).is_nan());
        assert!(a.always_present_share().is_nan());
        assert_eq!(a.prefix_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 days")]
    fn too_many_days_panics() {
        let _ = PersistenceAnalysis::new(24, 65);
    }

    #[test]
    fn records_beyond_window_ignored() {
        let mut a = PersistenceAnalysis::new(24, 5);
        let recs = [rec(Ipv4Addr::new(84, 1, 2, 3), 9)];
        a.ingest(recs.iter());
        assert_eq!(a.prefix_count(), 0);
    }
}
