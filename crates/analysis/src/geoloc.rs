//! Geolocation and district aggregation (Figure 3).
//!
//! "We thus geolocate the request traffic […] within Germany shown in
//! Figure 3 by ZIP code areas summed over 10 days normalized by maximum.
//! We derive 18 % of geolocations from local routers within an ISP
//! (ground truth since the router locations are known), while the rest
//! is located by applying the Maxmind geolocation database on routing
//! prefixes."
//!
//! [`GeolocationPipeline`] implements that two-source strategy over the
//! anonymized side tables and reports per-district intensities, district
//! coverage, and the ground-truth share.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, GeoDb, Germany};
use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::{FlowChunk, FlowSink};

use crate::filter::FlowFilter;

/// How a record's client was geolocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeoAttribution {
    /// Exact: the client sits behind a known router of the cooperating
    /// ISP.
    RouterGroundTruth,
    /// Approximate: geolocation database on the routing prefix.
    GeoDatabase,
    /// The client could not be located at all.
    Unlocated,
}

/// ISP side-table entry as the pipeline needs it (mirrors
/// `cwa_simnet::IspSideEntry` without depending on that crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IspInfo {
    /// ISP identifier (opaque to the pipeline).
    pub isp: u8,
    /// Exact router district, known only for the ground-truth ISP.
    pub router_district: Option<DistrictId>,
}

/// Result of geolocating one record set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoResult {
    /// Flows attributed per district.
    pub district_flows: Vec<u64>,
    /// How many geolocations came from each source.
    pub attribution_counts: HashMap<GeoAttribution, u64>,
}

impl GeoResult {
    /// Intensities normalized by the maximum district (Fig. 3's scale).
    pub fn normalized(&self) -> Vec<f64> {
        let max = self
            .district_flows
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .max(1) as f64;
        self.district_flows
            .iter()
            .map(|&f| f as f64 / max)
            .collect()
    }

    /// Fraction of districts with at least `min_flows` flows.
    pub fn coverage(&self, min_flows: u64) -> f64 {
        let covered = self
            .district_flows
            .iter()
            .filter(|&&f| f >= min_flows)
            .count();
        covered as f64 / self.district_flows.len() as f64
    }

    /// Share of geolocations that came from router ground truth (the
    /// paper's 18 %).
    pub fn ground_truth_share(&self) -> f64 {
        let gt = *self
            .attribution_counts
            .get(&GeoAttribution::RouterGroundTruth)
            .unwrap_or(&0) as f64;
        let db = *self
            .attribution_counts
            .get(&GeoAttribution::GeoDatabase)
            .unwrap_or(&0) as f64;
        if gt + db == 0.0 {
            return f64::NAN;
        }
        gt / (gt + db)
    }

    /// Share of records that could not be located.
    pub fn unlocated_share(&self) -> f64 {
        let un = *self
            .attribution_counts
            .get(&GeoAttribution::Unlocated)
            .unwrap_or(&0) as f64;
        let total: u64 = self.attribution_counts.values().sum();
        if total == 0 {
            return f64::NAN;
        }
        un / total as f64
    }
}

/// The two-source geolocation pipeline.
pub struct GeolocationPipeline<'a> {
    germany: &'a Germany,
    /// Geolocation DB keyed on (anonymized) routing prefixes.
    geodb: &'a GeoDb,
    /// ISP/router side table keyed on (anonymized) prefix network u32.
    isp_table: &'a HashMap<u32, IspInfo>,
    /// Routing-prefix length of the side tables.
    prefix_len: u8,
}

impl<'a> GeolocationPipeline<'a> {
    /// Creates the pipeline over side tables.
    pub fn new(
        germany: &'a Germany,
        geodb: &'a GeoDb,
        isp_table: &'a HashMap<u32, IspInfo>,
        prefix_len: u8,
    ) -> Self {
        GeolocationPipeline {
            germany,
            geodb,
            isp_table,
            prefix_len,
        }
    }

    /// Locates a single client address.
    pub fn locate(&self, client: std::net::Ipv4Addr) -> (Option<DistrictId>, GeoAttribution) {
        let net = cwa_geo::geodb::mask(client, self.prefix_len);
        // Source 1: router ground truth.
        if let Some(info) = self.isp_table.get(&net) {
            if let Some(d) = info.router_district {
                return (Some(d), GeoAttribution::RouterGroundTruth);
            }
        }
        // Source 2: geolocation database.
        if let Some(entry) = self.geodb.lookup_prefix(net) {
            return (Some(entry.located), GeoAttribution::GeoDatabase);
        }
        (None, GeoAttribution::Unlocated)
    }

    /// Geolocates all matching records, restricted to study days
    /// `[from_day, to_day)`. Delegates to [`GeoDayAccumulator`], so the
    /// batch and streaming paths share one implementation.
    pub fn run(
        &self,
        records: &[FlowRecord],
        filter: &FlowFilter,
        from_day: u32,
        to_day: u32,
    ) -> GeoResult {
        let mut acc = GeoDayAccumulator::new(self, to_day);
        for rec in records {
            if filter.matches(rec) {
                acc.observe(rec);
            }
        }
        acc.result(from_day, to_day)
    }
}

/// Maps an attribution to its slot in the per-day count arrays.
pub(crate) fn attribution_index(attr: GeoAttribution) -> usize {
    match attr {
        GeoAttribution::RouterGroundTruth => 0,
        GeoAttribution::GeoDatabase => 1,
        GeoAttribution::Unlocated => 2,
    }
}

const ATTRIBUTIONS: [GeoAttribution; 3] = [
    GeoAttribution::RouterGroundTruth,
    GeoAttribution::GeoDatabase,
    GeoAttribution::Unlocated,
];

/// Per-day geolocation accumulator: **one** pass over the (already
/// §2-filtered) record stream yields the [`GeoResult`] of *any* day
/// window afterwards — the 10-day map and the day-1 map of `Study` no
/// longer need separate record scans.
///
/// Records are expected to have passed the flow filter; the client is
/// the destination address (CDN → user direction), exactly
/// [`FlowFilter::client_of`]. Records on days `>= days` are dropped.
#[derive(Clone)]
pub struct GeoDayAccumulator<'a> {
    pipeline: &'a GeolocationPipeline<'a>,
    /// `day_district_flows[day][district]`.
    day_district_flows: Vec<Vec<u64>>,
    /// Per-day attribution counts, indexed by [`attribution_index`].
    day_attributions: Vec<[u64; 3]>,
    days: u32,
}

impl<'a> GeoDayAccumulator<'a> {
    /// Creates an accumulator covering study days `[0, days)`.
    pub fn new(pipeline: &'a GeolocationPipeline<'a>, days: u32) -> Self {
        GeoDayAccumulator {
            pipeline,
            day_district_flows: vec![vec![0u64; pipeline.germany.len()]; days as usize],
            day_attributions: vec![[0u64; 3]; days as usize],
            days,
        }
    }

    /// Geolocates one filtered record into its day's tables.
    pub fn observe(&mut self, rec: &FlowRecord) {
        self.observe_client(rec.first_ms, rec.key.dst_ip);
    }

    /// The column-level form of [`observe`](GeoDayAccumulator::observe):
    /// the accumulator only reads the record's start time and client.
    fn observe_client(&mut self, first_ms: u64, client: std::net::Ipv4Addr) {
        let day = (first_ms / 86_400_000) as u32;
        if day >= self.days {
            return;
        }
        let (district, attribution) = self.pipeline.locate(client);
        self.day_attributions[day as usize][attribution_index(attribution)] += 1;
        if let Some(d) = district {
            self.day_district_flows[day as usize][usize::from(d.0)] += 1;
        }
    }

    /// Merges another accumulator's day tables into this one
    /// (element-wise sums; commutative and associative). The other
    /// accumulator may borrow a different pipeline — per-shard pipelines
    /// over identical side tables produce identical attributions, so the
    /// merged tables equal a single-pass accumulation of the combined
    /// record stream.
    pub fn absorb(&mut self, other: &GeoDayAccumulator<'_>) {
        assert_eq!(self.days, other.days, "same day window required");
        assert_eq!(
            self.pipeline.germany.len(),
            other.pipeline.germany.len(),
            "same district universe required"
        );
        for (mine, theirs) in self
            .day_district_flows
            .iter_mut()
            .zip(&other.day_district_flows)
        {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (mine, theirs) in self
            .day_attributions
            .iter_mut()
            .zip(&other.day_attributions)
        {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }

    /// The aggregated [`GeoResult`] for the window `[from_day, to_day)`
    /// (clipped to the accumulator's coverage). Attribution counts only
    /// contain keys that were actually observed, matching the batch
    /// pipeline's map exactly.
    pub fn result(&self, from_day: u32, to_day: u32) -> GeoResult {
        let mut district_flows = vec![0u64; self.pipeline.germany.len()];
        let mut attributions = [0u64; 3];
        for day in from_day..to_day.min(self.days) {
            for (total, day_count) in district_flows
                .iter_mut()
                .zip(&self.day_district_flows[day as usize])
            {
                *total += day_count;
            }
            for (total, day_count) in attributions
                .iter_mut()
                .zip(&self.day_attributions[day as usize])
            {
                *total += day_count;
            }
        }
        let mut attribution_counts = HashMap::new();
        for attr in ATTRIBUTIONS {
            let count = attributions[attribution_index(attr)];
            if count > 0 {
                attribution_counts.insert(attr, count);
            }
        }
        GeoResult {
            district_flows,
            attribution_counts,
        }
    }
}

impl FlowSink for GeoDayAccumulator<'_> {
    fn observe(&mut self, rec: &FlowRecord) {
        GeoDayAccumulator::observe(self, rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        for (&first_ms, &dst) in chunk.first_ms.iter().zip(&chunk.dst_ip) {
            self.observe_client(first_ms, std::net::Ipv4Addr::from(dst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_geo::{AddressPlan, AddressPlanConfig, GeoDbConfig};
    use cwa_netflow::flow::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    /// Builds a miniature world with a raw (non-anonymized) side table
    /// so test addresses can be chosen by hand.
    fn setup() -> (Germany, AddressPlan, GeoDb, HashMap<u32, IspInfo>) {
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let geodb = GeoDb::build(&g, &plan, GeoDbConfig::default());
        let mut isp_table = HashMap::new();
        for alloc in plan.allocations() {
            let is_gt = plan.isp(alloc.isp).ground_truth_routers;
            isp_table.insert(
                cwa_geo::geodb::mask(alloc.network, alloc.len),
                IspInfo {
                    isp: alloc.isp.0,
                    router_district: is_gt.then_some(alloc.district),
                },
            );
        }
        (g, plan, geodb, isp_table)
    }

    fn rec(client: Ipv4Addr, day: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: client,
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 100,
            first_ms: day * 86_400_000 + 7,
            last_ms: day * 86_400_000 + 400,
            tcp_flags: 0,
        }
    }

    fn filter() -> FlowFilter {
        FlowFilter::cwa(vec![(Ipv4Addr::new(81, 200, 16, 0), 22)])
    }

    #[test]
    fn ground_truth_wins_over_geodb() {
        let (g, plan, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let gt_isp = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let alloc = plan.allocations().iter().find(|a| a.isp == gt_isp).unwrap();
        let (district, attribution) = pipeline.locate(alloc.host(5));
        assert_eq!(attribution, GeoAttribution::RouterGroundTruth);
        assert_eq!(district, Some(alloc.district), "router location is exact");
    }

    #[test]
    fn non_gt_isp_uses_geodb() {
        let (g, plan, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let alloc = plan
            .allocations()
            .iter()
            .find(|a| !plan.isp(a.isp).ground_truth_routers)
            .unwrap();
        let (district, attribution) = pipeline.locate(alloc.host(5));
        assert_eq!(attribution, GeoAttribution::GeoDatabase);
        assert!(district.is_some());
    }

    #[test]
    fn unknown_prefix_unlocated() {
        let (g, _, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let (district, attribution) = pipeline.locate(Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(attribution, GeoAttribution::Unlocated);
        assert_eq!(district, None);
    }

    #[test]
    fn run_aggregates_and_windows() {
        let (g, plan, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let alloc = plan.allocations()[0];
        let records = vec![
            rec(alloc.host(1), 1),
            rec(alloc.host(2), 5),
            rec(alloc.host(3), 10), // outside [0, 10)
        ];
        let result = pipeline.run(&records, &filter(), 0, 10);
        let total: u64 = result.district_flows.iter().sum();
        assert_eq!(total, 2, "day-10 record excluded");
    }

    /// The pre-accumulator implementation of `run`, kept inline as the
    /// reference for the single-pass refactor.
    fn reference_run(
        pipeline: &GeolocationPipeline<'_>,
        records: &[FlowRecord],
        f: &FlowFilter,
        from_day: u32,
        to_day: u32,
    ) -> GeoResult {
        let mut district_flows = vec![0u64; pipeline.germany.len()];
        let mut attribution_counts: HashMap<GeoAttribution, u64> = HashMap::new();
        for r in records {
            if !f.matches(r) {
                continue;
            }
            let day = (r.first_ms / 86_400_000) as u32;
            if day < from_day || day >= to_day {
                continue;
            }
            let (district, attribution) = pipeline.locate(f.client_of(r));
            *attribution_counts.entry(attribution).or_insert(0) += 1;
            if let Some(d) = district {
                district_flows[usize::from(d.0)] += 1;
            }
        }
        GeoResult {
            district_flows,
            attribution_counts,
        }
    }

    #[test]
    fn one_pass_accumulator_matches_two_pass_reference() {
        let (g, plan, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let f = filter();
        let mut records = Vec::new();
        for (i, alloc) in plan.allocations().iter().take(200).enumerate() {
            records.push(rec(alloc.host(1), (i % 11) as u64));
        }
        records.push(rec(Ipv4Addr::new(8, 8, 8, 8), 1)); // unlocated

        // One accumulator pass serves both windows…
        let mut acc = GeoDayAccumulator::new(&pipeline, 11);
        for r in &records {
            if f.matches(r) {
                acc.observe(r);
            }
        }
        // …and must equal the old implementation's separate full scans.
        for (from, to) in [(1u32, 11u32), (1, 2), (0, 11), (3, 7)] {
            let single = acc.result(from, to);
            let double = reference_run(&pipeline, &records, &f, from, to);
            assert_eq!(single.district_flows, double.district_flows, "{from}..{to}");
            assert_eq!(
                single.attribution_counts, double.attribution_counts,
                "{from}..{to}"
            );
        }
    }

    #[test]
    fn absorb_equals_single_pass() {
        let (g, plan, geodb, isp_table) = setup();
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let f = filter();
        let mut records = Vec::new();
        for (i, alloc) in plan.allocations().iter().take(120).enumerate() {
            records.push(rec(alloc.host(1), (i % 11) as u64));
        }
        records.push(rec(Ipv4Addr::new(8, 8, 8, 8), 1)); // unlocated

        let mut single = GeoDayAccumulator::new(&pipeline, 11);
        for r in &records {
            if f.matches(r) {
                single.observe(r);
            }
        }
        // Split round-robin into three parts, accumulate each apart
        // (one via a second pipeline instance over the same tables, as
        // shards do), then merge.
        let pipeline2 = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let mut parts = [
            GeoDayAccumulator::new(&pipeline, 11),
            GeoDayAccumulator::new(&pipeline2, 11),
            GeoDayAccumulator::new(&pipeline, 11),
        ];
        for (i, r) in records.iter().enumerate() {
            if f.matches(r) {
                parts[i % 3].observe(r);
            }
        }
        let [mut merged, p1, p2] = parts;
        merged.absorb(&p1);
        merged.absorb(&p2);
        merged.absorb(&GeoDayAccumulator::new(&pipeline, 11)); // identity

        for (from, to) in [(1u32, 11u32), (1, 2), (0, 11)] {
            let a = merged.result(from, to);
            let b = single.result(from, to);
            assert_eq!(a.district_flows, b.district_flows, "{from}..{to}");
            assert_eq!(a.attribution_counts, b.attribution_counts, "{from}..{to}");
        }
    }

    #[test]
    fn normalized_max_is_one() {
        let result = GeoResult {
            district_flows: vec![5, 10, 0, 2],
            attribution_counts: HashMap::new(),
        };
        let n = result.normalized();
        assert_eq!(n[1], 1.0);
        assert_eq!(n[0], 0.5);
        assert_eq!(n[2], 0.0);
    }

    #[test]
    fn coverage_counts_thresholds() {
        let result = GeoResult {
            district_flows: vec![5, 10, 0, 2],
            attribution_counts: HashMap::new(),
        };
        assert!((result.coverage(1) - 0.75).abs() < 1e-12);
        assert!((result.coverage(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_share_math() {
        let mut counts = HashMap::new();
        counts.insert(GeoAttribution::RouterGroundTruth, 18u64);
        counts.insert(GeoAttribution::GeoDatabase, 82u64);
        counts.insert(GeoAttribution::Unlocated, 5u64);
        let result = GeoResult {
            district_flows: vec![],
            attribution_counts: counts,
        };
        assert!((result.ground_truth_share() - 0.18).abs() < 1e-12);
        assert!((result.unlocated_share() - 5.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_nan() {
        let result = GeoResult {
            district_flows: vec![0; 4],
            attribution_counts: HashMap::new(),
        };
        assert!(result.ground_truth_share().is_nan());
        assert!(result.unlocated_share().is_nan());
    }
}
