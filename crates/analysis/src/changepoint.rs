//! Change-point detection on the daily flow series.
//!
//! The paper identifies its two temporal events — the June-16 release
//! jump and the June-23 news re-surge — by inspection of Figure 2. A
//! reproduction can do better: detect them *from the data*. This module
//! implements a two-sided CUSUM detector on log daily volumes plus a
//! simple step-fit scorer, and the tests assert that exactly the paper's
//! two change days emerge from the simulated series.

use serde::{Deserialize, Serialize};

/// One detected change point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// Day index at which the new regime starts.
    pub day: u32,
    /// Log-ratio of the post-change level to the pre-change level
    /// (positive = increase).
    pub log_ratio: f64,
}

/// CUSUM detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumConfig {
    /// Minimum |log-ratio| for a day to qualify as a change (e.g. 0.2 ≈
    /// ±22 %).
    pub min_log_ratio: f64,
    /// Days on each side used to estimate the local levels.
    pub window: u32,
    /// Minimum separation between reported change points, days.
    pub min_gap: u32,
}

impl Default for CusumConfig {
    fn default() -> Self {
        CusumConfig {
            min_log_ratio: 0.18,
            window: 2,
            min_gap: 2,
        }
    }
}

/// Detects upward change points in a daily series.
///
/// For every candidate day `d`, fits a step: mean(log) over
/// `[d-window, d)` vs `[d, d+window)`; days whose |step| clears
/// `min_log_ratio` and that locally maximize the step become change
/// points, greedily separated by `min_gap`.
pub fn detect_changes(daily: &[u64], config: &CusumConfig) -> Vec<ChangePoint> {
    let n = daily.len();
    let w = config.window as usize;
    if n < 2 * w {
        return Vec::new();
    }
    let logs: Vec<f64> = daily.iter().map(|&v| (v.max(1) as f64).ln()).collect();

    // Step score per candidate day.
    let mut scores: Vec<(usize, f64)> = Vec::new();
    for d in w..=(n - w) {
        let pre: f64 = logs[d - w..d].iter().sum::<f64>() / w as f64;
        let post: f64 = logs[d..d + w].iter().sum::<f64>() / w as f64;
        let step = post - pre;
        if step.abs() >= config.min_log_ratio {
            scores.push((d, step));
        }
    }

    // Greedy non-maximum suppression by |step|.
    scores.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    let mut chosen: Vec<(usize, f64)> = Vec::new();
    for (d, step) in scores {
        if chosen
            .iter()
            .all(|&(cd, _)| cd.abs_diff(d) >= config.min_gap as usize)
        {
            chosen.push((d, step));
        }
    }
    chosen.sort_by_key(|&(d, _)| d);
    chosen
        .into_iter()
        .map(|(d, step)| ChangePoint {
            day: d as u32,
            log_ratio: step,
        })
        .collect()
}

/// Convenience: only the upward changes (the events the paper reports).
pub fn detect_increases(daily: &[u64], config: &CusumConfig) -> Vec<ChangePoint> {
    detect_changes(daily, config)
        .into_iter()
        .filter(|c| c.log_ratio > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_clean_step() {
        let daily = [100u64, 102, 99, 101, 300, 305, 298, 301];
        let changes = detect_increases(&daily, &CusumConfig::default());
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].day, 4);
        assert!((changes[0].log_ratio - (3.0f64).ln()).abs() < 0.1);
    }

    #[test]
    fn flat_series_has_no_changes() {
        let daily = [500u64; 12];
        assert!(detect_changes(&daily, &CusumConfig::default()).is_empty());
        // Mild noise below the threshold.
        let noisy = [500u64, 520, 495, 510, 505, 490, 515, 500];
        assert!(detect_changes(&noisy, &CusumConfig::default()).is_empty());
    }

    #[test]
    fn finds_two_separated_steps() {
        // Release-like jump at day 2, surge at day 8.
        let daily = [50u64, 52, 400, 420, 430, 440, 445, 450, 700, 710, 705];
        let changes = detect_increases(&daily, &CusumConfig::default());
        let days: Vec<u32> = changes.iter().map(|c| c.day).collect();
        assert_eq!(days, vec![2, 8], "changes {changes:?}");
        assert!(
            changes[0].log_ratio > changes[1].log_ratio,
            "release jump dominates"
        );
    }

    #[test]
    fn downward_changes_detected_but_filtered() {
        let daily = [400u64, 410, 100, 102, 99, 101, 98, 100];
        let all = detect_changes(&daily, &CusumConfig::default());
        assert_eq!(all.len(), 1);
        assert!(all[0].log_ratio < 0.0);
        assert!(detect_increases(&daily, &CusumConfig::default()).is_empty());
    }

    #[test]
    fn min_gap_suppresses_neighbours() {
        // A ramp over two days: only the strongest step reported.
        let daily = [100u64, 100, 200, 400, 400, 400, 400, 400];
        let changes = detect_increases(&daily, &CusumConfig::default());
        assert_eq!(changes.len(), 1, "{changes:?}");
    }

    #[test]
    fn short_series_safe() {
        assert!(detect_changes(&[], &CusumConfig::default()).is_empty());
        assert!(detect_changes(&[10, 20], &CusumConfig::default()).is_empty());
    }

    #[test]
    fn zeros_handled() {
        let daily = [0u64, 0, 0, 50, 52, 49, 51, 50];
        let changes = detect_increases(&daily, &CusumConfig::default());
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].day, 3);
    }
}
