//! Figure 2: hourly aggregated traffic, normalized to the minimum.
//!
//! "We show all HTTPS traffic *from* the CWA CDN to its clients in
//! Figure 2 (flows and bytes normed to the minimum). […] With the
//! official release of the CWA on June 16, the traffic immediately
//! increases (7.5× increase of flows on June 16). Interest starts to
//! follow the normal diurnal traffic pattern."

use serde::{Deserialize, Serialize};

use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::{FlowChunk, FlowSink};

/// Hour-resolved flow/byte counts over the measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    /// Flows per hour (records bucketed by their start time).
    pub flows: Vec<u64>,
    /// Bytes per hour.
    pub bytes: Vec<u64>,
}

impl HourlySeries {
    /// Creates an empty series with `hours` hourly bins.
    pub fn new(hours: u32) -> Self {
        HourlySeries {
            flows: vec![0u64; hours as usize],
            bytes: vec![0u64; hours as usize],
        }
    }

    /// Accounts one record into its hourly bin (the streaming form;
    /// records beyond the window are dropped, as in batch bucketing).
    pub fn observe(&mut self, rec: &FlowRecord) {
        let hour = (rec.first_ms / 3_600_000) as usize;
        if hour < self.flows.len() {
            self.flows[hour] += 1;
            self.bytes[hour] += rec.bytes;
        }
    }

    /// Buckets records into `hours` hourly bins by `first_ms`.
    pub fn from_records<'a, I>(records: I, hours: u32) -> Self
    where
        I: IntoIterator<Item = &'a FlowRecord>,
    {
        let mut series = HourlySeries::new(hours);
        for rec in records {
            series.observe(rec);
        }
        series
    }

    /// Merges another series into this one (element-wise sums). The
    /// accumulation is commutative and associative, so absorbing
    /// per-shard partials in any order equals the single-pass series
    /// over the union of their record streams.
    pub fn absorb(&mut self, other: &HourlySeries) {
        assert_eq!(
            self.flows.len(),
            other.flows.len(),
            "can only merge series over the same hour window"
        );
        for (a, b) in self.flows.iter_mut().zip(&other.flows) {
            *a += b;
        }
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
    }

    /// Total flows.
    pub fn total_flows(&self) -> u64 {
        self.flows.iter().sum()
    }

    /// Flows per day (24-hour bins).
    pub fn daily_flows(&self) -> Vec<u64> {
        self.flows.chunks(24).map(|day| day.iter().sum()).collect()
    }

    /// Bytes per day.
    pub fn daily_bytes(&self) -> Vec<u64> {
        self.bytes.chunks(24).map(|day| day.iter().sum()).collect()
    }

    /// The series normalized to its minimum *positive* value — exactly
    /// how Fig. 2's y-axis is constructed ("normed to the minimum").
    pub fn flows_normed_to_min(&self) -> Vec<f64> {
        normed_to_min(&self.flows)
    }

    /// Bytes normalized to the minimum positive value.
    pub fn bytes_normed_to_min(&self) -> Vec<f64> {
        normed_to_min(&self.bytes)
    }

    /// The paper's headline release-day statistic: day-1 (June 16) flows
    /// divided by day-0 (June 15) flows.
    pub fn release_jump(&self) -> f64 {
        let daily = self.daily_flows();
        if daily.len() < 2 || daily[0] == 0 {
            return f64::NAN;
        }
        daily[1] as f64 / daily[0] as f64
    }

    /// Diurnal peak-to-trough ratio for one day (a rough "follows the
    /// normal diurnal pattern" check).
    pub fn diurnal_ratio(&self, day: u32) -> f64 {
        let start = (day * 24) as usize;
        let slice = &self.flows[start..(start + 24).min(self.flows.len())];
        let max = slice.iter().max().copied().unwrap_or(0) as f64;
        let min = slice.iter().filter(|&&f| f > 0).min().copied().unwrap_or(1) as f64;
        max / min
    }

    /// Extracts the average diurnal profile over days `[from_day,
    /// to_day)`: 24 hour-of-day weights normalized to mean 1.0. Each
    /// day is normalized by its own total first, so day-over-day growth
    /// does not masquerade as shape.
    pub fn diurnal_profile(&self, from_day: u32, to_day: u32) -> [f64; 24] {
        let mut profile = [0.0f64; 24];
        let mut days_used = 0u32;
        for day in from_day..to_day {
            let start = (day * 24) as usize;
            if start + 24 > self.flows.len() {
                break;
            }
            let slice = &self.flows[start..start + 24];
            let total: u64 = slice.iter().sum();
            if total == 0 {
                continue;
            }
            for (h, &f) in slice.iter().enumerate() {
                profile[h] += f as f64 / total as f64;
            }
            days_used += 1;
        }
        if days_used > 0 {
            // Each day's fractions sum to 1; scale so the mean weight is 1.
            for w in profile.iter_mut() {
                *w = *w / f64::from(days_used) * 24.0;
            }
        }
        profile
    }
}

impl FlowSink for HourlySeries {
    fn observe(&mut self, rec: &FlowRecord) {
        HourlySeries::observe(self, rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        // Column-wise: only the two columns the binning needs.
        for (&first_ms, &bytes) in chunk.first_ms.iter().zip(&chunk.bytes) {
            let hour = (first_ms / 3_600_000) as usize;
            if hour < self.flows.len() {
                self.flows[hour] += 1;
                self.bytes[hour] += bytes;
            }
        }
    }
}

/// Normalizes a series by its smallest positive element.
fn normed_to_min(series: &[u64]) -> Vec<f64> {
    let min = series
        .iter()
        .filter(|&&v| v > 0)
        .min()
        .copied()
        .unwrap_or(1)
        .max(1) as f64;
    series.iter().map(|&v| v as f64 / min).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_netflow::flow::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn rec_at(hour: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: Ipv4Addr::new(84, 0, 0, 1),
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes,
            first_ms: hour * 3_600_000 + 5,
            last_ms: hour * 3_600_000 + 500,
            tcp_flags: 0x18,
        }
    }

    #[test]
    fn buckets_by_hour() {
        let records = [
            rec_at(0, 100),
            rec_at(0, 200),
            rec_at(5, 300),
            rec_at(47, 50),
        ];
        let s = HourlySeries::from_records(records.iter(), 48);
        assert_eq!(s.flows[0], 2);
        assert_eq!(s.bytes[0], 300);
        assert_eq!(s.flows[5], 1);
        assert_eq!(s.flows[47], 1);
        assert_eq!(s.total_flows(), 4);
    }

    #[test]
    fn absorb_equals_single_pass() {
        let records = [
            rec_at(0, 100),
            rec_at(0, 200),
            rec_at(5, 300),
            rec_at(47, 50),
        ];
        let single = HourlySeries::from_records(records.iter(), 48);
        let mut merged = HourlySeries::from_records(records[..2].iter(), 48);
        merged.absorb(&HourlySeries::from_records(records[2..].iter(), 48));
        merged.absorb(&HourlySeries::new(48)); // identity
        assert_eq!(merged, single);
    }

    #[test]
    #[should_panic(expected = "same hour window")]
    fn absorb_rejects_mismatched_windows() {
        let mut a = HourlySeries::new(24);
        a.absorb(&HourlySeries::new(48));
    }

    #[test]
    fn out_of_range_dropped() {
        let records = [rec_at(100, 10)];
        let s = HourlySeries::from_records(records.iter(), 24);
        assert_eq!(s.total_flows(), 0);
    }

    #[test]
    fn daily_aggregation() {
        let mut records = Vec::new();
        for h in 0..24u64 {
            records.push(rec_at(h, 10));
        }
        for h in 24..48u64 {
            records.push(rec_at(h, 10));
            records.push(rec_at(h, 10));
        }
        let s = HourlySeries::from_records(records.iter(), 48);
        assert_eq!(s.daily_flows(), vec![24, 48]);
        assert_eq!(s.daily_bytes(), vec![240, 480]);
        assert!((s.release_jump() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normed_to_min_semantics() {
        let s = HourlySeries {
            flows: vec![0, 2, 6, 4],
            bytes: vec![0, 20, 60, 40],
        };
        // Min positive is 2; zeros stay zero.
        assert_eq!(s.flows_normed_to_min(), vec![0.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.bytes_normed_to_min(), vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn release_jump_nan_without_baseline() {
        let s = HourlySeries {
            flows: vec![0; 48],
            bytes: vec![0; 48],
        };
        assert!(s.release_jump().is_nan());
    }

    #[test]
    fn diurnal_ratio() {
        let mut flows = vec![10u64; 24];
        flows[3] = 2;
        flows[20] = 30;
        let s = HourlySeries {
            flows,
            bytes: vec![0; 24],
        };
        assert!((s.diurnal_ratio(0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_profile_mean_one_and_shape() {
        // Two days with identical shape but 3x different volume: the
        // profile must reflect the shape only.
        let shape: Vec<u64> = (0..24u64).map(|h| 10 + h).collect();
        let mut flows = shape.clone();
        flows.extend(shape.iter().map(|f| f * 3));
        let s = HourlySeries {
            flows,
            bytes: vec![0; 48],
        };
        let profile = s.diurnal_profile(0, 2);
        let mean: f64 = profile.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        // Shape preserved: hour 23 weight > hour 0 weight.
        assert!(profile[23] > profile[0]);
        // Volume difference ignored: profile equals the single-day one.
        let one_day = s.diurnal_profile(0, 1);
        for h in 0..24 {
            assert!((profile[h] - one_day[h]).abs() < 1e-9, "hour {h}");
        }
    }

    #[test]
    fn diurnal_profile_skips_empty_days() {
        let mut flows = vec![0u64; 24];
        flows.extend((0..24u64).map(|h| 10 + h));
        let s = HourlySeries {
            flows,
            bytes: vec![0; 48],
        };
        let with_empty = s.diurnal_profile(0, 2);
        let without = s.diurnal_profile(1, 2);
        for h in 0..24 {
            assert!((with_empty[h] - without[h]).abs() < 1e-9);
        }
    }
}
