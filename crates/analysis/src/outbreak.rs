//! Outbreak-effect analysis (§3, "No effect of local COVID-19
//! outbreaks").
//!
//! The paper's reasoning steps, reproduced here:
//!
//! 1. Around June 23 (Gütersloh/Warendorf lockdown) traffic increases —
//!    but the increase "also occurs on federal state level
//!    simultaneously — not only in the federal state (NRW) being home to
//!    the affected districts".
//! 2. "In Gütersloh, the traffic increased only very slightly and hardly
//!    noticeable."
//! 3. "The outbreak in Berlin on June 18 is only visible for users of a
//!    single ISP and not in the overall traffic from Berlin-based
//!    users."
//!
//! All comparisons are growth ratios of geolocated flow counts between a
//! pre-window and a post-window.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use cwa_geo::{DistrictId, FederalState, Germany};
use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::{FlowChunk, FlowSink};

use crate::filter::FlowFilter;
use crate::geoloc::GeolocationPipeline;

/// Day-resolved, geolocated flow tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutbreakAnalysis {
    /// `district_flows[day][district]`.
    pub district_flows: Vec<Vec<u64>>,
    /// `state_flows[day][state index]` (16 states).
    pub state_flows: Vec<[u64; 16]>,
    /// Berlin-located flows per day, by ISP id.
    pub berlin_isp_flows: HashMap<u8, Vec<u64>>,
    days: u32,
}

impl OutbreakAnalysis {
    /// Builds the tables from records via the geolocation pipeline.
    /// `isp_of` resolves a client address to an ISP id (from the side
    /// table), mirroring what the vantage-point operator knows.
    pub fn compute<F>(
        germany: &Germany,
        records: &[FlowRecord],
        filter: &FlowFilter,
        pipeline: &GeolocationPipeline<'_>,
        isp_of: F,
        days: u32,
    ) -> Self
    where
        F: Fn(Ipv4Addr) -> Option<u8>,
    {
        let mut acc = OutbreakAccumulator::new(germany, pipeline, isp_of, days);
        for rec in records {
            if filter.matches(rec) {
                acc.observe(rec);
            }
        }
        acc.into_analysis()
    }

    /// Sum of a day range for one district.
    fn district_sum(&self, district: DistrictId, days: &Range<u32>) -> u64 {
        days.clone()
            .filter(|&d| d < self.days)
            .map(|d| self.district_flows[d as usize][usize::from(district.0)])
            .sum()
    }

    /// Growth ratio `post/pre` for one district (NaN when pre is 0).
    pub fn district_growth(&self, district: DistrictId, pre: Range<u32>, post: Range<u32>) -> f64 {
        ratio(
            self.district_sum(district, &post),
            self.district_sum(district, &pre),
        )
    }

    /// Growth ratio per federal state.
    pub fn state_growth(&self, pre: Range<u32>, post: Range<u32>) -> [f64; 16] {
        let mut out = [f64::NAN; 16];
        for (s, slot) in out.iter_mut().enumerate() {
            let pre_sum: u64 = pre
                .clone()
                .filter(|&d| d < self.days)
                .map(|d| self.state_flows[d as usize][s])
                .sum();
            let post_sum: u64 = post
                .clone()
                .filter(|&d| d < self.days)
                .map(|d| self.state_flows[d as usize][s])
                .sum();
            *slot = ratio(post_sum, pre_sum);
        }
        out
    }

    /// National growth ratio.
    pub fn national_growth(&self, pre: Range<u32>, post: Range<u32>) -> f64 {
        let sum = |r: Range<u32>| -> u64 {
            r.filter(|&d| d < self.days)
                .map(|d| self.state_flows[d as usize].iter().sum::<u64>())
                .sum()
        };
        ratio(sum(post), sum(pre))
    }

    /// Per-ISP growth of Berlin-located traffic.
    pub fn berlin_isp_growth(&self, pre: Range<u32>, post: Range<u32>) -> Vec<(u8, f64)> {
        let mut out: Vec<(u8, f64)> = self
            .berlin_isp_flows
            .iter()
            .map(|(&isp, series)| {
                let pre_sum: u64 = pre
                    .clone()
                    .filter(|&d| d < self.days)
                    .map(|d| series[d as usize])
                    .sum();
                let post_sum: u64 = post
                    .clone()
                    .filter(|&d| d < self.days)
                    .map(|d| series[d as usize])
                    .sum();
                (isp, ratio(post_sum, pre_sum))
            })
            .collect();
        out.sort_by_key(|&(isp, _)| isp);
        out
    }

    /// The paper's NRW test: is NRW's June-23 growth within `tolerance`
    /// (multiplicatively) of the *median* growth of the other states?
    /// Returns `(nrw_growth, median_other_growth, within)`.
    pub fn nrw_vs_rest(
        &self,
        pre: Range<u32>,
        post: Range<u32>,
        tolerance: f64,
    ) -> (f64, f64, bool) {
        let growth = self.state_growth(pre, post);
        let nrw = growth[FederalState::NordrheinWestfalen.index()];
        let mut others: Vec<f64> = (0..16)
            .filter(|&i| i != FederalState::NordrheinWestfalen.index())
            .map(|i| growth[i])
            .filter(|g| g.is_finite())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).expect("finite growths"));
        // At starvation-level scales every other state can end up with a
        // zero pre-window sum (growth NaN), leaving nothing to take a
        // median over — report NaN rather than panicking so the claim
        // simply evaluates out-of-band.
        let median = others.get(others.len() / 2).copied().unwrap_or(f64::NAN);
        let within = nrw.is_finite() && (nrw / median).max(median / nrw) <= tolerance;
        (nrw, median, within)
    }
}

fn ratio(post: u64, pre: u64) -> f64 {
    if pre == 0 {
        return f64::NAN;
    }
    post as f64 / pre as f64
}

/// Streaming form of [`OutbreakAnalysis::compute`]: feed it one
/// (already §2-filtered) record at a time, then take the finished
/// tables with [`into_analysis`](OutbreakAccumulator::into_analysis).
///
/// The client is the record's destination address (CDN → user
/// direction), exactly [`FlowFilter::client_of`].
#[derive(Clone)]
pub struct OutbreakAccumulator<'a, F> {
    germany: &'a Germany,
    pipeline: &'a GeolocationPipeline<'a>,
    isp_of: F,
    berlin: Option<DistrictId>,
    district_flows: Vec<Vec<u64>>,
    state_flows: Vec<[u64; 16]>,
    berlin_isp_flows: HashMap<u8, Vec<u64>>,
    days: u32,
}

impl<'a, F> OutbreakAccumulator<'a, F>
where
    F: Fn(Ipv4Addr) -> Option<u8>,
{
    /// Creates an empty accumulator for a `days`-day study window.
    pub fn new(
        germany: &'a Germany,
        pipeline: &'a GeolocationPipeline<'a>,
        isp_of: F,
        days: u32,
    ) -> Self {
        let n = germany.len();
        OutbreakAccumulator {
            germany,
            pipeline,
            isp_of,
            berlin: germany.by_name("Berlin").map(|d| d.id),
            district_flows: vec![vec![0u64; n]; days as usize],
            state_flows: vec![[0u64; 16]; days as usize],
            berlin_isp_flows: HashMap::new(),
            days,
        }
    }

    /// Geolocates one filtered record into the day tables.
    pub fn observe(&mut self, rec: &FlowRecord) {
        self.observe_client(rec.first_ms, rec.key.dst_ip);
    }

    /// The column-level form of [`observe`](OutbreakAccumulator::observe):
    /// the accumulator only reads the record's start time and client.
    fn observe_client(&mut self, first_ms: u64, client: Ipv4Addr) {
        let day = (first_ms / 86_400_000) as u32;
        if day >= self.days {
            return;
        }
        let (district, _attr) = self.pipeline.locate(client);
        let Some(district) = district else { return };
        self.district_flows[day as usize][usize::from(district.0)] += 1;
        let state = self.germany.district(district).state;
        self.state_flows[day as usize][state.index()] += 1;

        if Some(district) == self.berlin {
            if let Some(isp) = (self.isp_of)(client) {
                self.berlin_isp_flows
                    .entry(isp)
                    .or_insert_with(|| vec![0u64; self.days as usize])[day as usize] += 1;
            }
        }
    }

    /// Merges another accumulator's day tables into this one
    /// (element-wise sums; per-ISP Berlin series united by ISP id). The
    /// other accumulator may use a different resolver type — shards
    /// resolve through identical side tables, so the merged tables equal
    /// a single-pass accumulation of the combined record stream.
    pub fn absorb<G>(&mut self, other: &OutbreakAccumulator<'_, G>)
    where
        G: Fn(Ipv4Addr) -> Option<u8>,
    {
        assert_eq!(self.days, other.days, "same day window required");
        assert_eq!(
            self.germany.len(),
            other.germany.len(),
            "same district universe required"
        );
        for (mine, theirs) in self.district_flows.iter_mut().zip(&other.district_flows) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (mine, theirs) in self.state_flows.iter_mut().zip(&other.state_flows) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (isp, series) in &other.berlin_isp_flows {
            let mine = self
                .berlin_isp_flows
                .entry(*isp)
                .or_insert_with(|| vec![0u64; self.days as usize]);
            for (a, b) in mine.iter_mut().zip(series) {
                *a += b;
            }
        }
    }

    /// Snapshots the tables accumulated so far without ending the
    /// stream — the live-serving form of
    /// [`into_analysis`](OutbreakAccumulator::into_analysis). A snapshot
    /// taken after the last record equals the consumed result.
    pub fn to_analysis(&self) -> OutbreakAnalysis {
        OutbreakAnalysis {
            district_flows: self.district_flows.clone(),
            state_flows: self.state_flows.clone(),
            berlin_isp_flows: self.berlin_isp_flows.clone(),
            days: self.days,
        }
    }

    /// Finishes the stream, yielding the analysis tables.
    pub fn into_analysis(self) -> OutbreakAnalysis {
        OutbreakAnalysis {
            district_flows: self.district_flows,
            state_flows: self.state_flows,
            berlin_isp_flows: self.berlin_isp_flows,
            days: self.days,
        }
    }
}

impl<F> FlowSink for OutbreakAccumulator<'_, F>
where
    F: Fn(Ipv4Addr) -> Option<u8>,
{
    fn observe(&mut self, rec: &FlowRecord) {
        OutbreakAccumulator::observe(self, rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        for (&first_ms, &dst) in chunk.first_ms.iter().zip(&chunk.dst_ip) {
            self.observe_client(first_ms, Ipv4Addr::from(dst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built tables (bypassing compute) to verify the arithmetic.
    fn synthetic() -> OutbreakAnalysis {
        let n = 401;
        let days = 11u32;
        let mut district_flows = vec![vec![0u64; n]; days as usize];
        let mut state_flows = vec![[0u64; 16]; days as usize];
        // Uniform base 100/day in districts 0 (Berlin, BE) and 15
        // (Gütersloh, NW); days 8..11 x1.5 everywhere (national news).
        for day in 0..days as usize {
            let boost = if day >= 8 { 3 } else { 2 };
            district_flows[day][0] = 50 * boost;
            district_flows[day][15] = 50 * boost;
            state_flows[day][FederalState::Berlin.index()] = 50 * boost;
            state_flows[day][FederalState::NordrheinWestfalen.index()] = 50 * boost;
            // Give every other state some base traffic too.
            for flows in state_flows[day].iter_mut() {
                if *flows == 0 {
                    *flows = 40 * boost;
                }
            }
        }
        let mut berlin_isp_flows = HashMap::new();
        // ISP 2: local Berlin bump on days 3..5; ISP 0: flat.
        let mut isp2 = vec![10u64; days as usize];
        isp2[3] = 18;
        isp2[4] = 15;
        berlin_isp_flows.insert(2u8, isp2);
        berlin_isp_flows.insert(0u8, vec![40u64; days as usize]);
        OutbreakAnalysis {
            district_flows,
            state_flows,
            berlin_isp_flows,
            days,
        }
    }

    #[test]
    fn growth_ratios() {
        let a = synthetic();
        // All states: (3×3 days)/(2×3 days) = 1.5.
        let g = a.state_growth(5..8, 8..11);
        for (s, growth) in g.iter().enumerate() {
            assert!((growth - 1.5).abs() < 1e-12, "state {s}: {growth}");
        }
        assert!((a.national_growth(5..8, 8..11) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nrw_vs_rest_within_tolerance() {
        let a = synthetic();
        let (nrw, median, within) = a.nrw_vs_rest(5..8, 8..11, 1.25);
        assert!((nrw - 1.5).abs() < 1e-12);
        assert!((median - 1.5).abs() < 1e-12);
        assert!(within);
    }

    #[test]
    fn district_growth_math() {
        let a = synthetic();
        let g = a.district_growth(DistrictId(15), 5..8, 8..11);
        assert!((g - 1.5).abs() < 1e-12);
    }

    #[test]
    fn berlin_single_isp_visibility() {
        let a = synthetic();
        let growth = a.berlin_isp_growth(1..3, 3..5);
        let isp0 = growth.iter().find(|(i, _)| *i == 0).unwrap().1;
        let isp2 = growth.iter().find(|(i, _)| *i == 2).unwrap().1;
        assert!((isp0 - 1.0).abs() < 1e-12, "flat ISP: {isp0}");
        assert!(isp2 > 1.3, "bumped ISP: {isp2}");
    }

    #[test]
    fn nan_on_zero_baseline() {
        let a = OutbreakAnalysis {
            district_flows: vec![vec![0; 401]; 11],
            state_flows: vec![[0; 16]; 11],
            berlin_isp_flows: HashMap::new(),
            days: 11,
        };
        assert!(a.national_growth(0..3, 3..6).is_nan());
        assert!(a.district_growth(DistrictId(0), 0..3, 3..6).is_nan());
    }

    #[test]
    fn absorb_equals_single_pass() {
        use crate::geoloc::IspInfo;
        use cwa_geo::{AddressPlan, AddressPlanConfig, GeoDb, GeoDbConfig};
        use cwa_netflow::flow::{FlowKey, Protocol};

        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let geodb = GeoDb::build(&g, &plan, GeoDbConfig::default());
        let mut isp_table = HashMap::new();
        for alloc in plan.allocations() {
            let is_gt = plan.isp(alloc.isp).ground_truth_routers;
            isp_table.insert(
                cwa_geo::geodb::mask(alloc.network, alloc.len),
                IspInfo {
                    isp: alloc.isp.0,
                    router_district: is_gt.then_some(alloc.district),
                },
            );
        }
        let pipeline = GeolocationPipeline::new(&g, &geodb, &isp_table, 18);
        let isp_of = |client: Ipv4Addr| {
            isp_table
                .get(&cwa_geo::geodb::mask(client, 18))
                .map(|e| e.isp)
        };
        let rec = |client: Ipv4Addr, day: u64| FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: client,
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 100,
            first_ms: day * 86_400_000 + 7,
            last_ms: day * 86_400_000 + 400,
            tcp_flags: 0,
        };
        let records: Vec<FlowRecord> = plan
            .allocations()
            .iter()
            .take(150)
            .enumerate()
            .map(|(i, alloc)| rec(alloc.host(3), (i % 11) as u64))
            .collect();

        let mut single = OutbreakAccumulator::new(&g, &pipeline, isp_of, 11);
        for r in &records {
            single.observe(r);
        }
        let mut left = OutbreakAccumulator::new(&g, &pipeline, isp_of, 11);
        let mut right = OutbreakAccumulator::new(&g, &pipeline, isp_of, 11);
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(r);
            } else {
                right.observe(r);
            }
        }
        left.absorb(&right);
        left.absorb(&OutbreakAccumulator::new(&g, &pipeline, isp_of, 11)); // identity

        let merged = left.into_analysis();
        let one = single.into_analysis();
        assert_eq!(merged.district_flows, one.district_flows);
        assert_eq!(merged.state_flows, one.state_flows);
        assert_eq!(merged.berlin_isp_flows, one.berlin_isp_flows);
    }

    #[test]
    fn ranges_clipped_to_days() {
        let a = synthetic();
        // post range extends beyond the data; clipped silently.
        let g = a.national_growth(5..8, 8..20);
        assert!(g.is_finite());
    }
}
