//! SVG renderings of the paper's two figures.
//!
//! Self-contained (no plotting crates in the offline set): a minimal
//! SVG writer plus purpose-built renderers that mirror the paper's
//! layouts —
//!
//! * [`figure2_svg`] — the dual-axis time series: flows and bytes
//!   (normed to minimum, left axis) as lines, cumulative downloads in
//!   millions (right axis) as a dashed line starting June 17.
//! * [`figure3_svg`] — the Germany map as a bubble chart: one circle
//!   per district at its (projected) coordinates, area ∝ normalized
//!   intensity, matching the heat-map reading of the original.

use std::fmt::Write as _;

use cwa_geo::Germany;

use crate::figures::Figure2;
use crate::geoloc::GeoResult;

/// Renders Figure 2 as a standalone SVG document.
pub fn figure2_svg(fig: &Figure2, width: u32, height: u32) -> String {
    let w = f64::from(width);
    let h = f64::from(height);
    let margin = 45.0;
    let plot_w = w - 2.0 * margin;
    let plot_h = h - 2.0 * margin;
    let hours = fig.flows_normed.len().max(1);

    let max_flows = fig.flows_normed.iter().cloned().fold(1.0f64, f64::max);
    let max_bytes = fig.bytes_normed.iter().cloned().fold(1.0f64, f64::max);
    let max_left = max_flows.max(max_bytes);
    let max_dl = fig
        .downloads_millions
        .iter()
        .flatten()
        .cloned()
        .fold(1.0f64, f64::max);

    let x = |hour: usize| margin + plot_w * hour as f64 / (hours - 1).max(1) as f64;
    let y_left = |v: f64| margin + plot_h * (1.0 - v / max_left);
    let y_right = |v: f64| margin + plot_h * (1.0 - v / max_dl);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/>"##
    );

    // Axes.
    let _ = write!(
        svg,
        r##"<line x1="{m}" y1="{m}" x2="{m}" y2="{b}" stroke="black"/><line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{r}" y1="{m}" x2="{r}" y2="{b}" stroke="gray"/>"##,
        m = margin,
        b = h - margin,
        r = w - margin
    );

    // Day gridlines + labels (June 15 + d).
    for day in 0..hours.div_ceil(24) {
        let gx = x(day * 24);
        let _ = write!(
            svg,
            r##"<line x1="{gx:.1}" y1="{m}" x2="{gx:.1}" y2="{b}" stroke="#dddddd"/><text x="{gx:.1}" y="{ty:.1}" font-size="9" text-anchor="middle">{label}</text>"##,
            m = margin,
            b = h - margin,
            ty = h - margin + 14.0,
            label = 15 + day
        );
    }
    let _ = write!(
        svg,
        r##"<text x="{cx:.1}" y="{ty:.1}" font-size="10" text-anchor="middle">June 2020</text>"##,
        cx = w / 2.0,
        ty = h - 8.0
    );

    // Series.
    let polyline = |values: &[f64], map: &dyn Fn(f64) -> f64| -> String {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", x(i), map(v)))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = write!(
        svg,
        r##"<polyline points="{}" fill="none" stroke="#1f77b4" stroke-width="1"/>"##,
        polyline(&fig.flows_normed, &y_left)
    );
    let _ = write!(
        svg,
        r##"<polyline points="{}" fill="none" stroke="#2ca02c" stroke-width="1" opacity="0.7"/>"##,
        polyline(&fig.bytes_normed, &y_left)
    );
    // Downloads: only the Some() suffix.
    let dl_points: Vec<String> = fig
        .downloads_millions
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|d| format!("{:.1},{:.1}", x(i), y_right(d))))
        .collect();
    if !dl_points.is_empty() {
        let _ = write!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="#d62728" stroke-width="1.5" stroke-dasharray="5,3"/>"##,
            dl_points.join(" ")
        );
    }

    // Legend.
    let legend = [
        ("#1f77b4", "flows (normed to min)"),
        ("#2ca02c", "bytes (normed to min)"),
        ("#d62728", "downloads (millions, right axis)"),
    ];
    for (i, (color, label)) in legend.iter().enumerate() {
        let ly = margin + 12.0 * (i as f64 + 1.0);
        let _ = write!(
            svg,
            r##"<line x1="{lx}" y1="{ly:.1}" x2="{lx2}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty:.1}" font-size="9">{label}</text>"##,
            lx = margin + 5.0,
            lx2 = margin + 25.0,
            tx = margin + 30.0,
            ty = ly + 3.0
        );
    }

    svg.push_str("</svg>");
    svg
}

/// Renders Figure 3 as a bubble map of Germany.
pub fn figure3_svg(germany: &Germany, geo: &GeoResult, width: u32, height: u32) -> String {
    let w = f64::from(width);
    let h = f64::from(height);
    let margin = 25.0;

    // Germany's bounding box (slightly padded).
    let (lat_min, lat_max) = (47.0, 55.2);
    let (lon_min, lon_max) = (5.5, 15.3);
    // Equirectangular projection with latitude-corrected aspect.
    let x = |lon: f64| margin + (w - 2.0 * margin) * (lon - lon_min) / (lon_max - lon_min);
    let y = |lat: f64| margin + (h - 2.0 * margin) * (lat_max - lat) / (lat_max - lat_min);

    let normalized = geo.normalized();
    let max_radius = 14.0;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/>"##
    );
    let _ = write!(
        svg,
        r##"<text x="{cx:.1}" y="16" font-size="11" text-anchor="middle">CWA traffic by district (10 days, normed to max)</text>"##,
        cx = w / 2.0
    );

    // Draw small-to-large so metros sit on top.
    let mut order: Vec<usize> = (0..germany.len()).collect();
    order.sort_by(|&a, &b| normalized[a].partial_cmp(&normalized[b]).expect("finite"));
    for idx in order {
        let d = &germany.districts()[idx];
        let v = normalized[idx];
        // Area ∝ intensity; a faint dot for zero-traffic districts.
        let radius = if v > 0.0 {
            (v.sqrt() * max_radius).max(1.2)
        } else {
            0.8
        };
        let color = if v > 0.0 { "#d62728" } else { "#bbbbbb" };
        let opacity = if v > 0.0 { 0.35 + 0.4 * v } else { 0.5 };
        let _ = write!(
            svg,
            r##"<circle cx="{cx:.1}" cy="{cy:.1}" r="{radius:.1}" fill="{color}" opacity="{opacity:.2}"/>"##,
            cx = x(d.lon),
            cy = y(d.lat),
        );
    }

    // Label the three districts the paper names.
    for name in ["Berlin", "Gütersloh", "Warendorf"] {
        if let Some(d) = germany.by_name(name) {
            let _ = write!(
                svg,
                r##"<text x="{tx:.1}" y="{ty:.1}" font-size="8" text-anchor="middle">{name}</text>"##,
                tx = x(d.lon),
                ty = y(d.lat) - 6.0,
            );
        }
    }

    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fig2() -> Figure2 {
        Figure2 {
            flows_normed: (0..48).map(|h| 1.0 + f64::from(h) / 10.0).collect(),
            bytes_normed: (0..48).map(|h| 1.0 + f64::from(h) / 12.0).collect(),
            downloads_millions: (0..48)
                .map(|h| (h >= 24).then(|| f64::from(h) / 4.0))
                .collect(),
        }
    }

    #[test]
    fn figure2_svg_is_wellformed() {
        let svg = figure2_svg(&fig2(), 800, 300);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 3, "three series");
        assert!(svg.contains("downloads (millions"));
        // Day labels for both days present.
        assert!(svg.contains(">15<") && svg.contains(">16<"));
    }

    #[test]
    fn figure2_svg_downloads_start_late() {
        let svg = figure2_svg(&fig2(), 800, 300);
        // The dashed downloads polyline must have ~24 points, not 48.
        let dashed = svg.split("stroke-dasharray").nth(1).is_some();
        assert!(dashed);
    }

    #[test]
    fn figure3_svg_draws_all_districts() {
        let g = Germany::build();
        let mut flows = vec![1u64; g.len()];
        flows[0] = 100;
        let geo = GeoResult {
            district_flows: flows,
            attribution_counts: HashMap::new(),
        };
        let svg = figure3_svg(&g, &geo, 500, 600);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<circle").count(), g.len());
        for name in ["Berlin", "Gütersloh", "Warendorf"] {
            assert!(svg.contains(name), "{name} labelled");
        }
    }

    #[test]
    fn figure3_svg_zero_districts_are_grey() {
        let g = Germany::build();
        let geo = GeoResult {
            district_flows: vec![0u64; g.len()],
            attribution_counts: HashMap::new(),
        };
        let svg = figure3_svg(&g, &geo, 500, 600);
        assert!(svg.contains("#bbbbbb"));
        assert!(!svg.contains("#d62728\" opacity"));
    }

    #[test]
    fn coordinates_inside_viewbox() {
        let g = Germany::build();
        let geo = GeoResult {
            district_flows: vec![1u64; g.len()],
            attribution_counts: HashMap::new(),
        };
        let svg = figure3_svg(&g, &geo, 500, 600);
        // All cx/cy values within bounds.
        for part in svg.split("cx=\"").skip(1) {
            let v: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=500.0).contains(&v), "cx {v}");
        }
        for part in svg.split("cy=\"").skip(1) {
            let v: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=600.0).contains(&v), "cy {v}");
        }
    }
}
