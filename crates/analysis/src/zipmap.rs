//! ZIP-code-area aggregation — Figure 3's actual spatial unit.
//!
//! The paper's heat map shades "*ZIP code areas*", the two-digit German
//! postal zones, not administrative districts. This module rolls
//! district-level flow counts up to ZIP areas (several districts share a
//! zone; metros dominate theirs) and provides the normalized intensity
//! table plus a coverage metric at that granularity.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use cwa_geo::Germany;

use crate::geoloc::GeoResult;

/// One ZIP area row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipArea {
    /// Two-digit ZIP prefix, e.g. "33" (Gütersloh area).
    pub zip: String,
    /// Districts contributing to this area.
    pub districts: Vec<String>,
    /// Total attributed flows.
    pub flows: u64,
    /// Intensity normalized by the maximum area.
    pub intensity: f64,
}

/// The ZIP-area aggregation of a geolocation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipAreaMap {
    /// Areas sorted by descending intensity.
    pub areas: Vec<ZipArea>,
}

impl ZipAreaMap {
    /// Rolls a district-level [`GeoResult`] up to ZIP areas.
    pub fn build(germany: &Germany, geo: &GeoResult) -> Self {
        let mut by_zip: BTreeMap<String, (Vec<String>, u64)> = BTreeMap::new();
        for d in germany.districts() {
            let entry = by_zip.entry(d.zip_prefix.clone()).or_default();
            entry.0.push(d.name.clone());
            entry.1 += geo.district_flows[usize::from(d.id.0)];
        }
        let max = by_zip.values().map(|(_, f)| *f).max().unwrap_or(0).max(1) as f64;
        let mut areas: Vec<ZipArea> = by_zip
            .into_iter()
            .map(|(zip, (districts, flows))| ZipArea {
                zip,
                districts,
                flows,
                intensity: flows as f64 / max,
            })
            .collect();
        areas.sort_by(|a, b| b.intensity.partial_cmp(&a.intensity).expect("finite"));
        ZipAreaMap { areas }
    }

    /// Fraction of ZIP areas with at least one flow.
    pub fn coverage(&self) -> f64 {
        if self.areas.is_empty() {
            return f64::NAN;
        }
        self.areas.iter().filter(|a| a.flows > 0).count() as f64 / self.areas.len() as f64
    }

    /// Finds an area by ZIP prefix.
    pub fn area(&self, zip: &str) -> Option<&ZipArea> {
        self.areas.iter().find(|a| a.zip == zip)
    }

    /// A text rendering of the top `n` areas.
    pub fn top_table(&self, n: usize) -> String {
        let mut out = String::from("zip   flows      intensity  districts\n");
        for a in self.areas.iter().take(n) {
            let names = if a.districts.len() > 3 {
                format!(
                    "{}, … ({} districts)",
                    a.districts[..2].join(", "),
                    a.districts.len()
                )
            } else {
                a.districts.join(", ")
            };
            out.push_str(&format!(
                "{:<5} {:<10} {:<10.3} {}\n",
                a.zip, a.flows, a.intensity, names
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn geo_with(flows: Vec<(usize, u64)>) -> (Germany, GeoResult) {
        let g = Germany::build();
        let mut district_flows = vec![0u64; g.len()];
        for (i, f) in flows {
            district_flows[i] = f;
        }
        (
            g,
            GeoResult {
                district_flows,
                attribution_counts: HashMap::new(),
            },
        )
    }

    #[test]
    fn aggregates_same_zip_districts() {
        let g = Germany::build();
        // Find two districts sharing a ZIP prefix.
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut pair = None;
        for d in g.districts() {
            if let Some(&other) = seen.get(&d.zip_prefix) {
                pair = Some((other, usize::from(d.id.0), d.zip_prefix.clone()));
                break;
            }
            seen.insert(d.zip_prefix.clone(), usize::from(d.id.0));
        }
        let (a, b, zip) = pair.expect("the model has shared ZIP prefixes");
        let (g, geo) = geo_with(vec![(a, 10), (b, 5)]);
        let map = ZipAreaMap::build(&g, &geo);
        assert_eq!(map.area(&zip).unwrap().flows, 15);
    }

    #[test]
    fn normalization_and_sorting() {
        let g = Germany::build();
        let berlin = usize::from(g.by_name("Berlin").unwrap().id.0);
        let (g, geo) = geo_with(vec![(berlin, 100), (50, 20)]);
        let map = ZipAreaMap::build(&g, &geo);
        assert!((map.areas[0].intensity - 1.0).abs() < 1e-12);
        for w in map.areas.windows(2) {
            assert!(w[0].intensity >= w[1].intensity);
        }
    }

    #[test]
    fn guetersloh_zip_area_exists() {
        let g = Germany::build();
        let gt = g.by_name("Gütersloh").unwrap();
        let (g2, geo) = geo_with(vec![(usize::from(gt.id.0), 7)]);
        let map = ZipAreaMap::build(&g2, &geo);
        let area = map.area("33").expect("ZIP 33 exists");
        assert!(area.districts.iter().any(|d| d == "Gütersloh"));
        assert!(area.flows >= 7);
    }

    #[test]
    fn coverage() {
        let (g, geo) = geo_with(vec![(0, 5)]);
        let map = ZipAreaMap::build(&g, &geo);
        let cov = map.coverage();
        assert!(
            cov > 0.0 && cov < 0.2,
            "one hot district covers few areas: {cov}"
        );
    }

    #[test]
    fn table_renders() {
        let (g, geo) = geo_with(vec![(0, 5), (1, 3)]);
        let map = ZipAreaMap::build(&g, &geo);
        let table = map.top_table(5);
        assert_eq!(table.lines().count(), 6);
    }

    #[test]
    fn fewer_areas_than_districts() {
        let (g, geo) = geo_with(vec![(0, 1)]);
        let map = ZipAreaMap::build(&g, &geo);
        assert!(map.areas.len() < g.len());
        assert!(map.areas.len() > 20, "{} areas", map.areas.len());
    }
}
