//! Figure data structures and text renderings.
//!
//! The benches and examples regenerate the paper's two result figures as
//! data series plus an ASCII rendering (and CSV for external plotting):
//!
//! * **Figure 2** — "Hourly aggregated HTTPS traffic from CWA CDN to
//!   users normed to the minimum (left y-axis) and the total app
//!   downloads in million from Google/Apple (right y-axis)."
//! * **Figure 3** — "CWA traffic by district: usage across Germany
//!   aggregated over 10 days normalized by maximum."

use serde::{Deserialize, Serialize};

use cwa_geo::Germany;

use crate::geoloc::GeoResult;
use crate::timeseries::HourlySeries;

/// Figure 2 data: the three plotted series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Hourly flows normed to the minimum.
    pub flows_normed: Vec<f64>,
    /// Hourly bytes normed to the minimum.
    pub bytes_normed: Vec<f64>,
    /// Cumulative downloads (millions), right y-axis; `None` before the
    /// first official report (June 17).
    pub downloads_millions: Vec<Option<f64>>,
}

impl Figure2 {
    /// Assembles the figure from an hourly series and the download curve
    /// (values in persons). Official numbers start on `report_from_hour`
    /// (June 17 = hour 48).
    pub fn assemble(series: &HourlySeries, downloads: &[f64], report_from_hour: u32) -> Self {
        let downloads_millions = downloads
            .iter()
            .enumerate()
            .map(|(h, &d)| (h as u32 >= report_from_hour).then_some(d / 1e6))
            .collect();
        Figure2 {
            flows_normed: series.flows_normed_to_min(),
            bytes_normed: series.bytes_normed_to_min(),
            downloads_millions,
        }
    }

    /// CSV with one row per hour.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hour,flows_normed,bytes_normed,downloads_millions\n");
        for h in 0..self.flows_normed.len() {
            let dl = self.downloads_millions[h]
                .map(|d| format!("{d:.3}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{h},{:.3},{:.3},{dl}\n",
                self.flows_normed[h], self.bytes_normed[h]
            ));
        }
        out
    }

    /// A terminal sparkline of the flows series (one char per hour) —
    /// the Fig. 2 left axis at a glance.
    pub fn ascii_flows(&self, width_hours: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.flows_normed.iter().cloned().fold(1.0f64, f64::max);
        self.flows_normed
            .iter()
            .take(width_hours)
            .map(|&v| {
                let idx = ((v / max) * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.min(RAMP.len() - 1)] as char
            })
            .collect()
    }
}

/// One Figure-3 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3Row {
    /// District name.
    pub name: String,
    /// State abbreviation.
    pub state: String,
    /// ZIP prefix (the figure's "ZIP code areas").
    pub zip: String,
    /// Intensity normalized by the maximum district.
    pub intensity: f64,
}

/// Figure 3 data: the district heat map as a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// One row per district, sorted by descending intensity.
    pub rows: Vec<Figure3Row>,
    /// Fraction of districts with any traffic (the paper: "almost all
    /// districts emit requests").
    pub coverage: f64,
}

impl Figure3 {
    /// Assembles the figure from a geolocation result.
    pub fn assemble(germany: &Germany, geo: &GeoResult) -> Self {
        let normalized = geo.normalized();
        let mut rows: Vec<Figure3Row> = germany
            .districts()
            .iter()
            .map(|d| Figure3Row {
                name: d.name.clone(),
                state: d.state.abbrev().to_owned(),
                zip: d.zip_prefix.clone(),
                intensity: normalized[usize::from(d.id.0)],
            })
            .collect();
        rows.sort_by(|a, b| b.intensity.partial_cmp(&a.intensity).expect("finite"));
        Figure3 {
            rows,
            coverage: geo.coverage(1),
        }
    }

    /// CSV with one row per district.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("district,state,zip,intensity_normed\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.4}\n",
                r.name, r.state, r.zip, r.intensity
            ));
        }
        out
    }

    /// The top-`n` districts as an aligned text table.
    pub fn top_table(&self, n: usize) -> String {
        let mut out = String::from("district                     state  zip  intensity\n");
        for r in self.rows.iter().take(n) {
            out.push_str(&format!(
                "{:<28} {:<6} {:<4} {:>8.3}\n",
                r.name, r.state, r.zip, r.intensity
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn series() -> HourlySeries {
        HourlySeries {
            flows: vec![2, 4, 8, 6],
            bytes: vec![20, 40, 80, 60],
        }
    }

    #[test]
    fn figure2_assembly() {
        let downloads = vec![0.0, 1.0e6, 2.0e6, 3.0e6];
        let fig = Figure2::assemble(&series(), &downloads, 2);
        assert_eq!(fig.flows_normed, vec![1.0, 2.0, 4.0, 3.0]);
        assert_eq!(fig.downloads_millions[0], None);
        assert_eq!(fig.downloads_millions[1], None);
        assert_eq!(fig.downloads_millions[2], Some(2.0));
        assert_eq!(fig.downloads_millions[3], Some(3.0));
    }

    #[test]
    fn figure2_csv_shape() {
        let downloads = vec![0.0, 1.0e6, 2.0e6, 3.0e6];
        let fig = Figure2::assemble(&series(), &downloads, 2);
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1.000,"));
        assert!(csv.lines().nth(3).unwrap().ends_with(",2.000"));
    }

    #[test]
    fn figure2_ascii() {
        let downloads = vec![0.0; 4];
        let fig = Figure2::assemble(&series(), &downloads, 0);
        let art = fig.ascii_flows(4);
        assert_eq!(art.len(), 4);
        // Peak hour must use the densest glyph.
        assert_eq!(art.chars().nth(2).unwrap(), '@');
    }

    #[test]
    fn figure3_assembly_and_sorting() {
        let g = Germany::build();
        let mut flows = vec![1u64; g.len()];
        flows[usize::from(g.by_name("Berlin").unwrap().id.0)] = 100;
        flows[usize::from(g.by_name("Gütersloh").unwrap().id.0)] = 40;
        let geo = GeoResult {
            district_flows: flows,
            attribution_counts: HashMap::new(),
        };
        let fig = Figure3::assemble(&g, &geo);
        assert_eq!(fig.rows[0].name, "Berlin");
        assert!((fig.rows[0].intensity - 1.0).abs() < 1e-12);
        assert!((fig.coverage - 1.0).abs() < 1e-12);
        assert_eq!(fig.rows.len(), g.len());
    }

    #[test]
    fn figure3_csv_and_table() {
        let g = Germany::build();
        let geo = GeoResult {
            district_flows: vec![1; g.len()],
            attribution_counts: HashMap::new(),
        };
        let fig = Figure3::assemble(&g, &geo);
        assert_eq!(fig.to_csv().lines().count(), g.len() + 1);
        assert_eq!(fig.top_table(5).lines().count(), 6);
    }
}
