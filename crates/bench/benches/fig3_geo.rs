//! **Figure 3** — "CWA traffic by district: usage across Germany
//! aggregated over 10 days normalized by maximum."
//!
//! Regenerates the district heat map (as a ranked table + per-state
//! aggregation), verifies the day-1 comparison the paper makes, and
//! benchmarks the geolocation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use cwa_analysis::figures::Figure3;
use cwa_analysis::filter::FlowFilter;
use cwa_analysis::geoloc::{GeolocationPipeline, IspInfo};
use cwa_bench::sim;
use cwa_geo::FederalState;

fn isp_table() -> HashMap<u32, IspInfo> {
    sim()
        .isp_table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect()
}

fn regenerate_and_print(table: &HashMap<u32, IspInfo>) {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let pipeline =
        GeolocationPipeline::new(&out.germany, &out.geodb, table, out.config.plan.prefix_len);
    let geo10 = pipeline.run(&out.records, &filter, 1, 11);
    let geo1 = pipeline.run(&out.records, &filter, 1, 2);
    let fig = Figure3::assemble(&out.germany, &geo10);

    println!("\n================ Figure 3 (regenerated) ================");
    println!("{}", fig.top_table(15));
    println!(
        "district coverage: {:.1}% over 10 days, {:.1}% on day one (paper: 'almost all districts', day-1 'almost the same')",
        geo10.coverage(1) * 100.0,
        geo1.coverage(1) * 100.0
    );
    println!(
        "geolocation sources: {:.1}% router ground truth (paper: 18%), {:.1}% geo DB",
        geo10.ground_truth_share() * 100.0,
        (1.0 - geo10.ground_truth_share()) * 100.0
    );

    // Per-state roll-up (the map's coarse shading).
    println!("\nper-state intensity (sum of district flows, normalized to max state):");
    let mut per_state = [0u64; 16];
    for d in out.germany.districts() {
        per_state[d.state.index()] += geo10.district_flows[usize::from(d.id.0)];
    }
    let max = *per_state.iter().max().unwrap() as f64;
    for s in FederalState::ALL {
        let v = per_state[s.index()] as f64 / max;
        let bar = "#".repeat((v * 40.0) as usize);
        println!("  {:<4} {:>5.2} {}", s.abbrev(), v, bar);
    }
    println!("=========================================================\n");
}

fn bench(c: &mut Criterion) {
    let table = isp_table();
    regenerate_and_print(&table);
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let pipeline =
        GeolocationPipeline::new(&out.germany, &out.geodb, &table, out.config.plan.prefix_len);

    c.bench_function("fig3/geolocate_10days", |b| {
        b.iter(|| pipeline.run(black_box(&out.records), &filter, 1, 11))
    });
    let geo10 = pipeline.run(&out.records, &filter, 1, 11);
    c.bench_function("fig3/assemble_figure", |b| {
        b.iter(|| Figure3::assemble(&out.germany, black_box(&geo10)))
    });
    c.bench_function("fig3/single_lookup", |b| {
        let client = out.records[0].key.dst_ip;
        b.iter(|| pipeline.locate(black_box(client)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
