//! **The claim table** — every quantitative in-text statement of the
//! paper (C1–C7), regenerated and printed as paper-vs-measured rows,
//! plus a benchmark of the full analysis pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cwa_bench::{sim, BENCH_SCALE};
use cwa_core::{Study, StudyConfig};

fn bench(c: &mut Criterion) {
    let out = sim();
    let study = Study::new(StudyConfig::at_scale(BENCH_SCALE));
    let report = study.analyze(out).expect("analysis failed");

    println!("\n================ Claims C1–C7 (regenerated) ================");
    println!("{}", report.render_text());
    if !report.all_passed() {
        println!("WARNING: {} claim(s) out of band", report.failures().len());
    }
    println!("=============================================================\n");

    c.bench_function("claims/full_analysis_pass", |b| {
        b.iter(|| {
            black_box(study.analyze(black_box(out)).expect("analysis failed"))
                .claims
                .len()
        })
    });
    c.bench_function("claims/persistence_quantiles", |b| {
        use cwa_analysis::filter::FlowFilter;
        use cwa_analysis::persistence::PersistenceAnalysis;
        let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
        let matching = filter.apply_owned(&out.records);
        b.iter(|| {
            let mut p = PersistenceAnalysis::new(20, out.config.days);
            p.ingest(black_box(&matching).iter());
            (p.fraction_quantile(0.5), p.fraction_quantile(0.75))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
