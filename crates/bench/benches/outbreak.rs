//! **The outbreak analysis (C6)** — regenerates §3's "No effect of
//! local COVID-19 outbreaks": per-state growth around June 23, the
//! Gütersloh local check, and the Berlin June-18 per-ISP comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use cwa_analysis::filter::FlowFilter;
use cwa_analysis::geoloc::{GeolocationPipeline, IspInfo};
use cwa_analysis::outbreak::OutbreakAnalysis;
use cwa_bench::sim;
use cwa_geo::FederalState;

fn build() -> (OutbreakAnalysis, HashMap<u32, IspInfo>) {
    let out = sim();
    let table: HashMap<u32, IspInfo> = out
        .isp_table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let pipeline =
        GeolocationPipeline::new(&out.germany, &out.geodb, &table, out.config.plan.prefix_len);
    let analysis = OutbreakAnalysis::compute(
        &out.germany,
        &out.records,
        &filter,
        &pipeline,
        |client| {
            let net = cwa_geo::geodb::mask(client, out.config.plan.prefix_len);
            table.get(&net).map(|e| e.isp)
        },
        out.config.days,
    );
    (analysis, table)
}

fn regenerate_and_print(analysis: &OutbreakAnalysis) {
    let out = sim();
    println!("\n============ §3 outbreak analysis (regenerated) ============");

    println!("per-state growth, Jun 23–25 vs Jun 20–22 (paper: increase in ALL states):");
    let growth = analysis.state_growth(5..8, 8..11);
    for s in FederalState::ALL {
        let marker = if s == FederalState::NordrheinWestfalen {
            "  <-- NRW (outbreak state)"
        } else {
            ""
        };
        println!("  {:<4} {:>5.2}x{marker}", s.abbrev(), growth[s.index()]);
    }
    let (nrw, median, within) = analysis.nrw_vs_rest(5..8, 8..11, 1.25);
    println!(
        "NRW {nrw:.2}x vs median-of-rest {median:.2}x → within 25%: {within} (paper: 'not only in NRW')"
    );

    let national = analysis.national_growth(5..8, 8..11);
    let gt = out.germany.by_name("Gütersloh").unwrap().id;
    let g = analysis.district_growth(gt, 5..8, 8..11);
    println!(
        "\nGütersloh itself: {g:.2}x vs national {national:.2}x (paper: 'increased only very slightly')"
    );

    println!("\nBerlin Jun 18 growth per ISP (Jun 18–19 vs Jun 16–17):");
    let gt_isp = out
        .plan
        .isps
        .iter()
        .find(|i| i.ground_truth_routers)
        .unwrap();
    for (isp, growth) in analysis.berlin_isp_growth(1..3, 3..5) {
        let name = &out.plan.isps[usize::from(isp)].name;
        let marker = if isp == gt_isp.id.0 {
            "  <-- the single ISP (paper)"
        } else {
            ""
        };
        println!("  {name:<18} {growth:>5.2}x{marker}");
    }
    println!("=============================================================\n");
}

fn bench(c: &mut Criterion) {
    let (analysis, table) = build();
    regenerate_and_print(&analysis);
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let pipeline =
        GeolocationPipeline::new(&out.germany, &out.geodb, &table, out.config.plan.prefix_len);

    c.bench_function("outbreak/compute_tables", |b| {
        b.iter(|| {
            OutbreakAnalysis::compute(
                &out.germany,
                black_box(&out.records),
                &filter,
                &pipeline,
                |client| {
                    let net = cwa_geo::geodb::mask(client, out.config.plan.prefix_len);
                    table.get(&net).map(|e| e.isp)
                },
                out.config.days,
            )
        })
    });
    c.bench_function("outbreak/growth_queries", |b| {
        b.iter(|| {
            let g = analysis.state_growth(5..8, 8..11);
            let n = analysis.national_growth(5..8, 8..11);
            let b_ = analysis.berlin_isp_growth(1..3, 3..5);
            (g, n, b_)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
