//! **Figure 2** — "Hourly aggregated HTTPS traffic from CWA CDN to
//! users normed to the minimum (left y-axis) and the total app
//! downloads in million from Google/Apple (right y-axis)."
//!
//! Regenerates the figure's three series, prints the per-day rows, and
//! benchmarks the analysis steps (filtering + hourly bucketing +
//! normalization + figure assembly).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cwa_analysis::figures::Figure2;
use cwa_analysis::filter::FlowFilter;
use cwa_analysis::timeseries::HourlySeries;
use cwa_bench::{render_daily_table, sim};

fn regenerate_and_print() {
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let hours = out.config.days * 24;
    let series = HourlySeries::from_records(matching.iter(), hours);
    let downloads: Vec<f64> = (0..hours).map(|h| out.downloads.downloads_at(h)).collect();
    let fig = Figure2::assemble(&series, &downloads, 48);

    println!("\n================ Figure 2 (regenerated) ================");
    println!("{}", render_daily_table(&series.flows, &series.bytes));
    println!("release jump (paper: 7.5x): {:.2}x", series.release_jump());
    // Blind event detection: the paper's two events found from the data.
    let changes = cwa_analysis::changepoint::detect_increases(
        &series.daily_flows(),
        &cwa_analysis::changepoint::CusumConfig {
            window: 1,
            ..Default::default()
        },
    );
    for c in &changes {
        println!(
            "detected change: Jun {} (+{:.0}%)",
            15 + c.day,
            (c.log_ratio.exp() - 1.0) * 100.0
        );
    }
    println!(
        "downloads: {:.1}M by Jun 17 12:00 (paper: 6.4M @ 36h), {:.1}M by Jun 25",
        out.downloads.downloads_at(60) / 1e6,
        out.downloads.downloads_at(263) / 1e6
    );
    println!("hourly flows normed to min (one char per hour):");
    println!("{}", fig.ascii_flows(fig.flows_normed.len()));
    println!("=========================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_and_print();
    let out = sim();
    let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
    let matching = filter.apply_owned(&out.records);
    let hours = out.config.days * 24;

    c.bench_function("fig2/filter_records", |b| {
        b.iter(|| black_box(filter.apply(black_box(&out.records))).len())
    });
    c.bench_function("fig2/hourly_bucketing", |b| {
        b.iter(|| HourlySeries::from_records(black_box(&matching).iter(), hours))
    });
    let series = HourlySeries::from_records(matching.iter(), hours);
    c.bench_function("fig2/normalize_and_assemble", |b| {
        let downloads: Vec<f64> = (0..hours).map(|h| out.downloads.downloads_at(h)).collect();
        b.iter(|| Figure2::assemble(black_box(&series), black_box(&downloads), 48))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
