//! Micro-benchmarks of every substrate the reproduction is built on:
//! crypto primitives, Crypto-PAn, the flow cache, the v5 codec, the
//! Exposure Notification key schedule and matching engine, and the
//! traffic generator's samplers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

use cwa_crypto::{aes128_ctr, hkdf_sha256, hmac_sha256, sha256, Aes128};
use cwa_exposure::matching::{EncounterStore, MatchingEngine};
use cwa_exposure::tek::{DiagnosisKey, TemporaryExposureKey};
use cwa_exposure::time::EnIntervalNumber;
use cwa_netflow::cache::{FlowCache, FlowCacheConfig};
use cwa_netflow::flow::FlowKey;
use cwa_netflow::sampling::sample_packet_count;
use cwa_netflow::v5::{packetize, ExportPacket};
use cwa_netflow::CryptoPan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn crypto_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data_1k = vec![0xa5u8; 1024];
    let data_64k = vec![0xa5u8; 65_536];

    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256/1KiB", |b| b.iter(|| sha256(black_box(&data_1k))));
    g.throughput(Throughput::Bytes(65_536));
    g.bench_function("sha256/64KiB", |b| b.iter(|| sha256(black_box(&data_64k))));

    g.throughput(Throughput::Elements(1));
    g.bench_function("hmac_sha256/64B_msg", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&data_1k[..64])))
    });
    g.bench_function("hkdf/16B_okm", |b| {
        b.iter(|| hkdf_sha256(None, black_box(b"temporary exposure key"), b"EN-RPIK", 16))
    });

    let aes = Aes128::new(&[7u8; 16]);
    g.bench_function("aes128/block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&[1u8; 16])))
    });
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("aes128_ctr/1KiB", |b| {
        b.iter(|| aes128_ctr(&[7u8; 16], &[0u8; 16], black_box(&data_1k)))
    });
    g.finish();
}

fn netflow_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("netflow");

    let cp = CryptoPan::new(&[9u8; 32]);
    g.throughput(Throughput::Elements(1));
    g.bench_function("cryptopan/anonymize", |b| {
        b.iter(|| cp.anonymize(black_box(Ipv4Addr::new(84, 17, 3, 9))))
    });

    g.bench_function("flow_cache/account_1k_packets", |b| {
        b.iter(|| {
            let mut cache = FlowCache::new(FlowCacheConfig::default());
            for i in 0..1000u32 {
                let key = FlowKey::tcp(
                    Ipv4Addr::new(81, 200, 16, 1),
                    443,
                    Ipv4Addr::from(0x54000000 + (i % 128)),
                    50_000,
                );
                cache.account(key, 1200, 0x18, u64::from(i) * 10);
            }
            cache.flush();
            cache.take_expired().len()
        })
    });

    // v5 codec throughput.
    let records: Vec<_> = (0..30u8)
        .map(|i| cwa_netflow::flow::FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 1),
                443,
                Ipv4Addr::new(84, 0, 0, i),
                50_000,
            ),
            packets: 3,
            bytes: 4200,
            first_ms: 1000,
            last_ms: 2000,
            tcp_flags: 0x18,
        })
        .collect();
    let (packets, _) = packetize(&records, 1, 1000, 0, 0);
    let wire = packets[0].encode();
    g.throughput(Throughput::Elements(30));
    g.bench_function("v5/encode_30_records", |b| b.iter(|| packets[0].encode()));
    g.bench_function("v5/decode_30_records", |b| {
        b.iter(|| ExportPacket::decode(black_box(wire.clone())).unwrap())
    });

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    g.bench_function("sampling/binomial_draw", |b| {
        b.iter(|| sample_packet_count(&mut rng, black_box(20), 1000))
    });

    // v9 template-based codec.
    let mut v9 = cwa_netflow::V9Exporter::new(1);
    let wire_v9 = v9.export(&records[..24], 0, 0);
    g.bench_function("v9/export_24_records", |b| {
        b.iter(|| v9.export(black_box(&records[..24]), 0, 0))
    });
    g.bench_function("v9/decode_24_records", |b| {
        let mut decoder = cwa_netflow::V9Decoder::new();
        decoder.decode(wire_v9.clone()).unwrap();
        b.iter(|| decoder.decode(black_box(wire_v9.clone())).unwrap())
    });

    // Biflow pairing.
    let unidirectional: Vec<_> = records
        .iter()
        .flat_map(|r| {
            let mut up = *r;
            up.key = r.key.reversed();
            [*r, up]
        })
        .collect();
    g.throughput(Throughput::Elements(unidirectional.len() as u64));
    g.bench_function("biflow/merge_60_records", |b| {
        b.iter(|| {
            cwa_netflow::merge_biflows(
                black_box(&unidirectional),
                &cwa_netflow::BiflowConfig::default(),
            )
            .len()
        })
    });
    g.finish();
}

fn exposure_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("exposure");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let tek = TemporaryExposureKey::generate(&mut rng, EnIntervalNumber(144 * 18_000));

    g.throughput(Throughput::Elements(144));
    g.bench_function("tek/derive_all_144_rpis", |b| b.iter(|| tek.all_rpis()));

    // Matching: 50 published keys against a store of 500 encounters.
    let keys: Vec<DiagnosisKey> = (0..50)
        .map(|i| {
            let t =
                TemporaryExposureKey::generate(&mut rng, EnIntervalNumber(144 * (18_000 + i % 14)));
            DiagnosisKey::new(t, 5)
        })
        .collect();
    let mut store = EncounterStore::new();
    // 10 of the keys were actually met.
    for dk in keys.iter().take(10) {
        let enin = EnIntervalNumber(dk.tek.rolling_start_interval_number + 50);
        store.record(dk.tek.rpi(enin), enin, 30, 10);
    }
    for i in 0..490u64 {
        let stranger = TemporaryExposureKey::generate(&mut rng, EnIntervalNumber(144 * 18_000));
        let enin = EnIntervalNumber(stranger.rolling_start_interval_number + (i % 144) as u32);
        store.record(stranger.rpi(enin), enin, 60, 5);
    }
    let engine = MatchingEngine::default();
    let now = EnIntervalNumber(144 * 18_015);
    g.throughput(Throughput::Elements(50));
    g.bench_function("matching/50_keys_vs_500_encounters", |b| {
        b.iter(|| engine.match_keys(black_box(&keys), &store, now).len())
    });

    // Export encode/decode of a realistic daily file.
    let export = cwa_exposure::export::TemporaryExposureKeyExport::new_de(0, 86_400, keys.clone());
    let wire = export.encode();
    g.bench_function("export/encode_50_keys", |b| {
        b.iter(|| export.encode().len())
    });
    g.bench_function("export/decode_50_keys", |b| {
        b.iter(|| {
            cwa_exposure::export::TemporaryExposureKeyExport::decode(black_box(&wire)).unwrap()
        })
    });
    g.finish();
}

fn p256_benches(c: &mut Criterion) {
    use cwa_crypto::p256::SigningKey;
    let mut g = c.benchmark_group("p256");
    g.sample_size(10); // big-int math; keep runs short
    let mut secret = [0u8; 32];
    secret[31] = 0x42;
    secret[0] = 0x01;
    let key = SigningKey::from_bytes(&secret);
    let vk = key.verifying_key();
    let msg = vec![0xa5u8; 4096];
    let sig = key.sign(&msg);

    g.bench_function("sign_export_4KiB", |b| b.iter(|| key.sign(black_box(&msg))));
    g.bench_function("verify_export_4KiB", |b| {
        b.iter(|| vk.verify(black_box(&msg), &sig))
    });
    g.finish();
}

fn geo_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("geo");
    let germany = cwa_geo::Germany::build();
    g.bench_function("germany/build", |b| b.iter(cwa_geo::Germany::build));
    let plan = cwa_geo::AddressPlan::build(&germany, cwa_geo::AddressPlanConfig::default());
    g.bench_function("plan/lookup", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hosts: Vec<Ipv4Addr> = (0..1024)
            .map(|_| {
                let a = &plan.allocations()[rng.gen_range(0..plan.allocations().len())];
                a.host(rng.gen_range(0..a.capacity))
            })
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % hosts.len();
            plan.lookup(black_box(hosts[i])).is_some()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    crypto_benches,
    netflow_benches,
    exposure_benches,
    p256_benches,
    geo_benches
);
criterion_main!(benches);
