//! **Sharded vs. unsharded streaming pipeline** — wall time of
//! `Study::run_sharded(n)` (router fleet split across `n` crossbeam
//! workers, each filtering and analyzing its own record partition,
//! partials merged at the end) against the single-threaded
//! `Study::run_streaming` baseline, at two scales.
//!
//! Speedup scales with physical cores: on a single-core host every
//! shard count time-slices one CPU and speedup hovers around 1.0 (the
//! sharded path then only pays channel + merge overhead). The host's
//! parallelism is recorded in the output so downstream checks can
//! interpret the numbers (`scripts/ci.sh` only enforces a speedup
//! floor when `host_cpus >= 2`).
//!
//! Plain `harness = false` binary with manual timing, same as the
//! streaming bench. Results go to `BENCH_sharded.json`.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use cwa_core::{Study, StudyConfig};
use cwa_netflow::CountingSink;
use cwa_simnet::{ShardKeyMode, Simulation};

const SCALES: [f64; 2] = [0.005, 0.02];
const SHARDS: [usize; 3] = [1, 2, 4];
const REPS: usize = 3;

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    wall_ms: f64,
    /// Wall-time ratio `run_streaming / run_sharded(n)`.
    speedup: f64,
    /// Largest per-shard export-hour chunk — the sharded path's memory
    /// bound (each worker holds at most one chunk of its own shard).
    max_shard_peak_resident_records: u64,
}

#[derive(Serialize)]
struct RunRow {
    scale: f64,
    streaming_wall_ms: f64,
    total_records: u64,
    matching_flows: u64,
    sharded: Vec<ShardRow>,
}

#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    generated_by: &'static str,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// speedup is only meaningful relative to this.
    host_cpus: usize,
    reps_per_path: usize,
    statistic: &'static str,
    runs: Vec<RunRow>,
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_runs<F: FnMut() -> u64>(mut run: F) -> (f64, u64) {
    let mut samples = Vec::with_capacity(REPS);
    let mut check = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        check = black_box(run());
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median_ms(samples), check)
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    println!("host cpus: {host_cpus}");
    println!("scale    shards  wall_ms    speedup  max_shard_resident");
    for scale in SCALES {
        let config = StudyConfig::at_scale(scale);

        let (stream_ms, stream_flows) = time_runs(|| {
            Study::new(config)
                .run_streaming()
                .expect("study failed")
                .matching_flows
        });
        println!("{scale:<8} stream  {stream_ms:<10.1} 1.00");

        let prepared = Simulation::new(config.sim).prepare();
        let mut counting = CountingSink::default();
        let (_truth, _stats) = prepared.run_traffic(&mut counting);

        let mut sharded_rows = Vec::new();
        for shards in SHARDS {
            let (wall_ms, flows) = time_runs(|| {
                Study::new(config)
                    .run_sharded(shards)
                    .expect("study failed")
                    .matching_flows
            });
            assert_eq!(
                flows, stream_flows,
                "sharded and streaming must agree on the matching-flow count"
            );
            let (_truth, results) = prepared
                .run_traffic_sharded(ShardKeyMode::Common, vec![CountingSink::default(); shards]);
            let max_peak = results
                .iter()
                .map(|(_, stats)| stats.peak_resident_records)
                .max()
                .unwrap_or(0);
            let speedup = stream_ms / wall_ms;
            println!("{scale:<8} {shards:<7} {wall_ms:<10.1} {speedup:<8.2} {max_peak}");
            sharded_rows.push(ShardRow {
                shards,
                wall_ms: (wall_ms * 1e3).round() / 1e3,
                speedup: (speedup * 1e3).round() / 1e3,
                max_shard_peak_resident_records: max_peak,
            });
        }

        rows.push(RunRow {
            scale,
            streaming_wall_ms: (stream_ms * 1e3).round() / 1e3,
            total_records: counting.records,
            matching_flows: stream_flows,
            sharded: sharded_rows,
        });
    }

    let doc = BenchDoc {
        schema: "cwa-bench-sharded/v1",
        generated_by: "cargo bench -p cwa-bench --bench sharded",
        host_cpus,
        reps_per_path: REPS,
        statistic: "median wall ms",
        runs: rows,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded.json");
    let pretty = serde_json::to_string_pretty(&doc).expect("serializes");
    match std::fs::write(path, pretty + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
