//! **Robustness** — the claim table across independent seeds.
//!
//! A reproduction that only works at one RNG seed is a coincidence.
//! This bench re-runs the full study at several seeds and prints the
//! per-claim pass rate, then benchmarks one full study iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use cwa_core::{Study, StudyConfig};

const SCALE: f64 = 0.02;
const SEEDS: [u64; 5] = [0x2020_0616, 1, 42, 0xDEAD_BEEF, 7_777_777];

fn regenerate_and_print() {
    println!(
        "\n=========== Claim pass rate across {} seeds (scale {SCALE}) ===========",
        SEEDS.len()
    );
    let mut passes: BTreeMap<&'static str, u32> = BTreeMap::new();
    let mut measured: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();

    for &seed in &SEEDS {
        let mut config = StudyConfig::at_scale(SCALE);
        config.sim.seed = seed;
        let report = Study::new(config).run().expect("study failed");
        for claim in &report.claims {
            let code = claim.id.code();
            *passes.entry(code).or_insert(0) += u32::from(claim.pass);
            measured.entry(code).or_default().push(claim.measured);
        }
    }

    println!("claim  pass  measured range");
    for (code, pass) in &passes {
        let values = &measured[code];
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("{code:<6} {pass}/{}   [{lo:.3}, {hi:.3}]", SEEDS.len());
    }
    println!("=====================================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_and_print();
    let mut g = c.benchmark_group("robustness");
    g.sample_size(10);
    g.bench_function("full_study_scale_0.004", |b| {
        b.iter(|| {
            let report = Study::new(StudyConfig::test_small())
                .run()
                .expect("study failed");
            black_box(report.claims.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
