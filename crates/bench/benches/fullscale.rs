//! **Full-scale headline run** — the chunked columnar pipeline at
//! scale 1.0 (the paper's full eleven-day trace) on a single core:
//! wall clock, sustained records/s, peak resident records, and the
//! Crypto-PAn prefix-cache hit rate.
//!
//! Three comparison sections precede the headline (so their timings
//! are not polluted by a multi-minute run right before them):
//!
//! * **sampler microbench** — the producer-side distributions in
//!   isolation: the legacy shapes (Knuth product-loop Poisson with a
//!   clamped-normal tail, per-packet Bernoulli binomial with a
//!   clamped-normal tail, one-shot Box–Muller that discards the sine
//!   variate) are reproduced verbatim inside this bench and raced
//!   against the exact constant-draw samplers in `cwa-samplers`
//!   (inversion + PTRS Poisson, BINV + BTPE binomial, paired-normal
//!   cache) over a workload-shaped mixture of parameters. The ratio is
//!   attributable to the sampler swap alone.
//! * **record path** — the chunked-pipeline comparison from the
//!   previous refactor, kept as a regression guard: the per-record
//!   shape (uncached Crypto-PAn, per-record `matches`, four per-record
//!   dyn `observe` calls) against the chunked shape over a captured
//!   scale-0.02 record stream. `scripts/ci.sh` enforces a floor on it.
//! * **end to end** — the scale-0.02 streaming study (median of 3)
//!   against the committed pre-chunking baseline in
//!   `BENCH_streaming.json` — that file is the frozen before-picture
//!   and is never rewritten here. The flight recorder used to
//!   attribute ~80% of streaming wall clock to traffic *generation*;
//!   the sampler swap attacks exactly that share, so end-to-end wall
//!   now moves multi-× (and ci.sh holds a floor on the speedup).
//!
//! The headline run carries the flight recorder, and a producer-only
//! pass times `generate_hour` end to end: the `producer` section
//! reports flow events/s and the `produce` span's share of streaming
//! wall clock at scale 1.0.
//!
//! Plain `harness = false` binary with manual timing: each measurement
//! is a full simulate+analyze run, so Criterion's sampling machinery
//! would only add noise-floor theater. Results are printed and written
//! to `BENCH_fullscale.json` at the workspace root.

use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use cwa_analysis::filter::FlowFilter;
use cwa_analysis::persistence::PersistenceAnalysis;
use cwa_analysis::timeseries::HourlySeries;
use cwa_core::{Study, StudyConfig};
use cwa_netflow::flow::in_prefix;
use cwa_netflow::{
    CachedCryptoPan, CountingSink, CryptoPan, FlowChunk, FlowRecord, FlowSink,
    DEFAULT_CHUNK_CAPACITY,
};
use cwa_obs::{Registry, Tracer};
use cwa_simnet::Simulation;

/// The scale the comparison sections run at — must match a row of the
/// committed `BENCH_streaming.json` baseline.
const COMPARE_SCALE: f64 = 0.02;
const COMPARE_REPS: usize = 3;

/// Draws per sampler side in the microbench.
const SAMPLER_DRAWS: u64 = 4_000_000;

/// The pre-swap sampler shapes, reproduced verbatim from the seed's
/// `cwa-simnet::stats` and `cwa-netflow::sampling` so the microbench
/// keeps a stable before-picture after the originals are gone.
mod legacy {
    use rand::Rng;

    /// One-shot Box–Muller: burns two uniforms and discards the sine
    /// variate.
    pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Knuth's product method below mean 30 (O(mean) uniforms), clamped
    /// normal approximation above (approximate).
    pub fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 100_000 {
                    return mean as u64;
                }
            }
        } else {
            let z = standard_normal(rng);
            (mean + mean.sqrt() * z).max(0.0).round() as u64
        }
    }

    /// Per-packet Bernoulli summation up to 64 packets (O(packets)
    /// uniforms), continuity-corrected clamped normal above
    /// (approximate).
    pub fn sample_packet_count<R: Rng>(rng: &mut R, packets: u64, n: u32) -> u64 {
        let n = n.max(1);
        if n == 1 {
            return packets;
        }
        let p = 1.0 / f64::from(n);
        if packets <= 64 {
            let mut hits = 0u64;
            for _ in 0..packets {
                if rng.gen::<f64>() < p {
                    hits += 1;
                }
            }
            hits
        } else {
            let mean = packets as f64 * p;
            let sd = (packets as f64 * p * (1.0 - p)).sqrt();
            let z = standard_normal(rng);
            let draw = (mean + sd * z + 0.5).floor();
            draw.clamp(0.0, packets as f64) as u64
        }
    }
}

#[derive(Serialize)]
struct Headline {
    scale: f64,
    wall_ms: f64,
    total_records: u64,
    matching_flows: u64,
    records_per_sec: f64,
    peak_resident_records: u64,
    cryptopan_cache_hits: u64,
    cryptopan_cache_misses: u64,
    cryptopan_cache_hit_rate: f64,
}

#[derive(Serialize)]
struct RecordPath {
    scale: f64,
    records: u64,
    matching_flows: u64,
    reps: usize,
    statistic: &'static str,
    per_record_ms: f64,
    chunked_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Comparison {
    scale: f64,
    reps: usize,
    statistic: &'static str,
    chunked_streaming_wall_ms: f64,
    baseline_streaming_wall_ms: Option<f64>,
    speedup_vs_baseline: Option<f64>,
}

#[derive(Serialize)]
struct SamplerMicro {
    draws_per_side: u64,
    legacy_poisson_ns_per_draw: f64,
    exact_poisson_ns_per_draw: f64,
    poisson_speedup: f64,
    legacy_binomial_ns_per_draw: f64,
    exact_binomial_ns_per_draw: f64,
    binomial_speedup: f64,
    legacy_normal_ns_per_draw: f64,
    paired_normal_ns_per_draw: f64,
    normal_speedup: f64,
}

#[derive(Serialize)]
struct Producer {
    scale: f64,
    wall_ms: f64,
    flow_events: u64,
    events_per_sec: f64,
    produce_span_ms: f64,
    produce_share_of_streaming: f64,
    sampler: SamplerMicro,
}

#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    generated_by: &'static str,
    host_cpus: usize,
    headline: Headline,
    producer: Producer,
    record_path: RecordPath,
    comparison: Comparison,
}

/// Times `SAMPLER_DRAWS` draws of `draw` (cycling a workload-shaped
/// parameter mixture by index) and returns ns/draw.
fn time_draws(mut draw: impl FnMut(&mut ChaCha8Rng, usize) -> u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE7C);
    let mut acc = 0u64;
    let t = Instant::now();
    for i in 0..SAMPLER_DRAWS {
        acc = acc.wrapping_add(draw(&mut rng, i as usize));
    }
    let ns = t.elapsed().as_nanos() as f64;
    black_box(acc);
    ns / SAMPLER_DRAWS as f64
}

/// Races the legacy sampler shapes against the exact constant-draw ones
/// over parameter mixtures shaped like the generator's workload.
fn sampler_microbench() -> SamplerMicro {
    // Arrival intensities spanning generate_hour's cohort-hour means,
    // straddling both samplers' small/large-mean cutoffs.
    const MEANS: [f64; 5] = [0.4, 2.5, 8.0, 35.0, 140.0];
    // Flow sizes at 1:1000 packet sampling: mostly small flows (the
    // log-normal bulk), a bulk-transfer tail crossing the legacy
    // 64-packet Bernoulli bound and the BINV/BTPE cutoff.
    const FLOWS: [u64; 5] = [6, 20, 60, 400, 20_000];
    const INTERVAL: u32 = 1000;

    let legacy_poisson = time_draws(|rng, i| legacy::poisson(rng, MEANS[i % MEANS.len()]));
    let exact_poisson = time_draws(|rng, i| cwa_samplers::poisson(rng, MEANS[i % MEANS.len()]));
    let legacy_binomial =
        time_draws(|rng, i| legacy::sample_packet_count(rng, FLOWS[i % FLOWS.len()], INTERVAL));
    let exact_binomial = time_draws(|rng, i| {
        cwa_samplers::binomial(rng, FLOWS[i % FLOWS.len()], 1.0 / f64::from(INTERVAL))
    });
    let legacy_normal = time_draws(|rng, _| legacy::standard_normal(rng) as u64);
    let mut cache = cwa_samplers::NormalCache::new();
    let paired_normal = time_draws(|rng, _| cache.standard_normal(rng) as u64);

    println!(
        "samplers ({SAMPLER_DRAWS} draws/side): poisson {legacy_poisson:.1} -> \
         {exact_poisson:.1} ns/draw ({:.2}x), binomial {legacy_binomial:.1} -> \
         {exact_binomial:.1} ns/draw ({:.2}x), normal {legacy_normal:.1} -> \
         {paired_normal:.1} ns/draw ({:.2}x)",
        legacy_poisson / exact_poisson,
        legacy_binomial / exact_binomial,
        legacy_normal / paired_normal,
    );
    SamplerMicro {
        draws_per_side: SAMPLER_DRAWS,
        legacy_poisson_ns_per_draw: round3(legacy_poisson),
        exact_poisson_ns_per_draw: round3(exact_poisson),
        poisson_speedup: round3(legacy_poisson / exact_poisson),
        legacy_binomial_ns_per_draw: round3(legacy_binomial),
        exact_binomial_ns_per_draw: round3(exact_binomial),
        binomial_speedup: round3(legacy_binomial / exact_binomial),
        legacy_normal_ns_per_draw: round3(legacy_normal),
        paired_normal_ns_per_draw: round3(paired_normal),
        normal_speedup: round3(legacy_normal / paired_normal),
    }
}

/// Sums the flight recorder's `produce` span durations (Chrome JSON
/// `dur` fields are microseconds).
fn produce_span_ms(tracer: &Tracer) -> f64 {
    let doc: serde_json::Value =
        serde_json::from_str(&tracer.to_chrome_json()).expect("tracer emits valid JSON");
    let mut total_us = 0.0;
    if let Some(events) = doc.get("traceEvents").and_then(|e| e.as_array()) {
        for ev in events {
            if ev.get("name").and_then(|n| n.as_str()) == Some("produce") {
                if let Some(serde_json::Value::Num(dur)) = ev.get("dur") {
                    total_us += dur.as_f64();
                }
            }
        }
    }
    total_us / 1e3
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// The streaming wall time the pre-refactor pipeline recorded at
/// `scale`, read from the committed `BENCH_streaming.json`.
fn baseline_streaming_ms(scale: f64) -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let text = std::fs::read_to_string(path).ok()?;
    let doc: serde_json::Value = serde_json::from_str(&text).ok()?;
    let num = |v: &serde_json::Value| match v {
        serde_json::Value::Num(n) => Some(n.as_f64()),
        _ => None,
    };
    doc.get("runs")?.as_array()?.iter().find_map(|run| {
        let s = num(run.get("scale")?)?;
        if (s - scale).abs() < 1e-12 {
            num(run.get("streaming_wall_ms")?)
        } else {
            None
        }
    })
}

/// Replays `records` through the pre-refactor record path: per-record
/// uncached Crypto-PAn, per-record filter evaluation, one dyn `observe`
/// call per consumer per matching record. Returns (wall ms, matching).
fn replay_per_record(
    records: &[FlowRecord],
    filter: &FlowFilter,
    server_prefixes: &[(Ipv4Addr, u8)],
    key: &[u8; 32],
    hours: u32,
    days: u32,
    prefix_len: u8,
) -> (f64, u64) {
    let cp = CryptoPan::new(key);
    let mut series = HourlySeries::new(hours);
    let mut persistence = PersistenceAnalysis::new(prefix_len, days);
    // Stand-ins for the geolocation/outbreak consumers (their side-table
    // plumbing is irrelevant here, and their internal work is identical
    // on both sides of the comparison — only the dispatch shape differs).
    let mut geo = CountingSink::default();
    let mut outbreak = CountingSink::default();
    let mut matching = 0u64;
    let t = Instant::now();
    {
        let mut consumers: [&mut dyn FlowSink; 4] =
            [&mut series, &mut persistence, &mut geo, &mut outbreak];
        for rec in records {
            let mut rec = *rec;
            if !server_prefixes
                .iter()
                .any(|&(p, l)| in_prefix(rec.key.src_ip, p, l))
            {
                rec.key.src_ip = cp.anonymize(rec.key.src_ip);
            }
            if !server_prefixes
                .iter()
                .any(|&(p, l)| in_prefix(rec.key.dst_ip, p, l))
            {
                rec.key.dst_ip = cp.anonymize(rec.key.dst_ip);
            }
            if filter.matches(&rec) {
                matching += 1;
                for sink in consumers.iter_mut() {
                    sink.observe(&rec);
                }
            }
        }
        for sink in consumers.iter_mut() {
            sink.finish();
        }
    }
    (
        black_box(t.elapsed().as_secs_f64() * 1e3),
        black_box(matching),
    )
}

/// Replays `records` through the chunked record path exactly as the
/// collector + `FanOut` run it: memoized Crypto-PAn, records packed
/// into columnar chunks, one `select_into` per chunk, one
/// `observe_chunk` per consumer per chunk. Returns (wall ms, matching).
fn replay_chunked(
    records: &[FlowRecord],
    filter: &FlowFilter,
    server_prefixes: &[(Ipv4Addr, u8)],
    key: &[u8; 32],
    hours: u32,
    days: u32,
    prefix_len: u8,
) -> (f64, u64) {
    let mut cp = CachedCryptoPan::new(CryptoPan::new(key));
    let mut series = HourlySeries::new(hours);
    let mut persistence = PersistenceAnalysis::new(prefix_len, days);
    let mut geo = CountingSink::default();
    let mut outbreak = CountingSink::default();
    let mut chunk = FlowChunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    let mut sel = FlowChunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    let mut matching = 0u64;
    let t = Instant::now();
    {
        let mut consumers: [&mut dyn FlowSink; 4] =
            [&mut series, &mut persistence, &mut geo, &mut outbreak];
        let flush = |chunk: &mut FlowChunk,
                     sel: &mut FlowChunk,
                     consumers: &mut [&mut dyn FlowSink; 4],
                     matching: &mut u64| {
            filter.select_into(chunk, sel);
            if !sel.is_empty() {
                *matching += sel.len() as u64;
                for sink in consumers.iter_mut() {
                    sink.observe_chunk(sel);
                }
            }
            chunk.clear();
        };
        for rec in records {
            let mut rec = *rec;
            if !server_prefixes
                .iter()
                .any(|&(p, l)| in_prefix(rec.key.src_ip, p, l))
            {
                rec.key.src_ip = cp.anonymize(rec.key.src_ip);
            }
            if !server_prefixes
                .iter()
                .any(|&(p, l)| in_prefix(rec.key.dst_ip, p, l))
            {
                rec.key.dst_ip = cp.anonymize(rec.key.dst_ip);
            }
            chunk.push(&rec);
            if chunk.len() >= DEFAULT_CHUNK_CAPACITY {
                flush(&mut chunk, &mut sel, &mut consumers, &mut matching);
            }
        }
        if !chunk.is_empty() {
            flush(&mut chunk, &mut sel, &mut consumers, &mut matching);
        }
        for sink in consumers.iter_mut() {
            sink.finish();
        }
    }
    (
        black_box(t.elapsed().as_secs_f64() * 1e3),
        black_box(matching),
    )
}

fn main() {
    // ── Samplers: legacy shapes vs. exact constant-draw shapes ─────
    eprintln!("[fullscale] racing sampler shapes …");
    let sampler = sampler_microbench();

    // ── Record path: per-record legacy shape vs. chunked shape ─────
    // Capture a real scale-0.02 record stream once. `run_traffic`'s
    // output is already anonymized; re-anonymizing it below costs
    // exactly what anonymizing the raw stream costs (Crypto-PAn is a
    // prefix-preserving bijection, so address/prefix reuse — what the
    // memo cache feeds on — is structurally identical).
    let compare_config = StudyConfig::at_scale(COMPARE_SCALE);
    eprintln!("[fullscale] capturing scale {COMPARE_SCALE} record stream …");
    let prepared = Simulation::new(compare_config.sim).prepare();
    let server_prefixes = prepared.cdn.service_prefixes.to_vec();
    let filter = FlowFilter::cwa(server_prefixes.clone());
    let mut records: Vec<FlowRecord> = Vec::new();
    let _ = prepared.run_traffic(&mut records);
    let key = compare_config.sim.vantage.anon_key;
    let days = compare_config.sim.days;
    let hours = days * 24;
    let prefix_len = compare_config.persistence_prefix_len;

    let mut legacy_samples = Vec::with_capacity(COMPARE_REPS);
    let mut chunked_samples = Vec::with_capacity(COMPARE_REPS);
    let mut legacy_matching = 0;
    let mut chunked_matching = 0;
    for _ in 0..COMPARE_REPS {
        let (ms, m) = replay_per_record(
            &records,
            &filter,
            &server_prefixes,
            &key,
            hours,
            days,
            prefix_len,
        );
        legacy_samples.push(ms);
        legacy_matching = m;
        let (ms, m) = replay_chunked(
            &records,
            &filter,
            &server_prefixes,
            &key,
            hours,
            days,
            prefix_len,
        );
        chunked_samples.push(ms);
        chunked_matching = m;
    }
    assert_eq!(
        legacy_matching, chunked_matching,
        "both record paths must select the same flows"
    );
    let per_record_ms = median_ms(legacy_samples);
    let chunked_ms = median_ms(chunked_samples);
    let record_path_speedup = per_record_ms / chunked_ms;
    println!(
        "record path ({} records, {} matching): per-record {per_record_ms:.1}ms, \
         chunked {chunked_ms:.1}ms -> {record_path_speedup:.2}x",
        records.len(),
        legacy_matching,
    );
    let record_path = RecordPath {
        scale: COMPARE_SCALE,
        records: records.len() as u64,
        matching_flows: legacy_matching,
        reps: COMPARE_REPS,
        statistic: "median wall ms",
        per_record_ms: round3(per_record_ms),
        chunked_ms: round3(chunked_ms),
        speedup: round3(record_path_speedup),
    };
    drop(records);

    // ── End to end: scale-0.02 study vs. the frozen baseline ───────
    let mut samples = Vec::with_capacity(COMPARE_REPS);
    for _ in 0..COMPARE_REPS {
        let t = Instant::now();
        black_box(
            Study::new(compare_config)
                .run_streaming()
                .expect("comparison study failed"),
        );
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let chunked_e2e_ms = median_ms(samples);
    let baseline_ms = baseline_streaming_ms(COMPARE_SCALE);
    let speedup = baseline_ms.map(|b| b / chunked_e2e_ms);
    match (baseline_ms, speedup) {
        (Some(b), Some(s)) => println!(
            "end to end (scale {COMPARE_SCALE}): chunked {chunked_e2e_ms:.1}ms \
             vs baseline {b:.1}ms -> {s:.2}x"
        ),
        _ => println!(
            "end to end (scale {COMPARE_SCALE}): chunked {chunked_e2e_ms:.1}ms \
             (no baseline row in BENCH_streaming.json)"
        ),
    }
    let comparison = Comparison {
        scale: COMPARE_SCALE,
        reps: COMPARE_REPS,
        statistic: "median wall ms",
        chunked_streaming_wall_ms: round3(chunked_e2e_ms),
        baseline_streaming_wall_ms: baseline_ms.map(round3),
        speedup_vs_baseline: speedup.map(round3),
    };

    // ── Headline: scale 1.0, one core, chunked streaming path ──────
    let config = StudyConfig::at_scale(1.0);
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::new());
    eprintln!("[fullscale] running scale 1.0 streaming study (single rep) …");
    let t = Instant::now();
    let report = black_box(
        Study::new(config)
            .with_metrics(Arc::clone(&registry))
            .with_trace(Arc::clone(&tracer))
            .run_streaming()
            .expect("full-scale study failed"),
    );
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let produce_ms = produce_span_ms(&tracer);

    let hits = registry
        .counter("netflow.collector.cryptopan_cache_hits")
        .get();
    let misses = registry
        .counter("netflow.collector.cryptopan_cache_misses")
        .get();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    // Residency + producer isolation: drive the producer once more into
    // a counting sink — the streaming path holds at most one export
    // hour of records, and with no analysis behind it this pass times
    // generate_hour (plus vantage bookkeeping) alone.
    eprintln!("[fullscale] measuring peak residency (producer-only pass) …");
    let producer_registry = Arc::new(Registry::new());
    let prepared = Simulation::new(config.sim)
        .with_metrics(Arc::clone(&producer_registry))
        .prepare();
    let mut sink = CountingSink::default();
    let producer_t = Instant::now();
    let (_truth, stats) = prepared.run_traffic(&mut sink);
    let producer_wall_ms = producer_t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sink.records, report.total_records);
    assert!(stats.peak_resident_records < sink.records);
    let flow_events = producer_registry
        .counter("simnet.traffic.flow_events")
        .get();
    let events_per_sec = flow_events as f64 / (producer_wall_ms / 1e3);
    let produce_share = produce_ms / wall_ms;
    println!(
        "producer (scale 1.0): {:.1}s wall, {flow_events} flow events \
         ({events_per_sec:.0}/s); produce span {:.1}s = {:.1}% of streaming wall",
        producer_wall_ms / 1e3,
        produce_ms / 1e3,
        produce_share * 100.0,
    );
    let producer = Producer {
        scale: 1.0,
        wall_ms: round3(producer_wall_ms),
        flow_events,
        events_per_sec: round3(events_per_sec),
        produce_span_ms: round3(produce_ms),
        produce_share_of_streaming: round3(produce_share),
        sampler,
    };

    let records_per_sec = report.total_records as f64 / (wall_ms / 1e3);
    println!(
        "scale 1.0: {:.1}s wall, {} records ({:.0}/s), {} matching, \
         peak resident {}, Crypto-PAn cache {:.2}% hit ({} hits / {} misses)",
        wall_ms / 1e3,
        report.total_records,
        records_per_sec,
        report.matching_flows,
        stats.peak_resident_records,
        hit_rate * 100.0,
        hits,
        misses,
    );

    let doc = BenchDoc {
        schema: "cwa-bench-fullscale/v1",
        generated_by: "cargo bench -p cwa-bench --bench fullscale",
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        headline: Headline {
            scale: 1.0,
            wall_ms: round3(wall_ms),
            total_records: report.total_records,
            matching_flows: report.matching_flows,
            records_per_sec: round3(records_per_sec),
            peak_resident_records: stats.peak_resident_records,
            cryptopan_cache_hits: hits,
            cryptopan_cache_misses: misses,
            cryptopan_cache_hit_rate: round3(hit_rate),
        },
        producer,
        record_path,
        comparison,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fullscale.json");
    let pretty = serde_json::to_string_pretty(&doc).expect("serializes");
    match std::fs::write(path, pretty + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
