//! **Ablation** — the design-choice experiments DESIGN.md calls out:
//!
//! 1. *News vs. infection*: the paper argues the June-23 re-surge is
//!    media-driven. Run the counterfactual scenarios (outbreaks without
//!    news; nothing at all) and compare re-surge magnitudes.
//! 2. *Sampling sensitivity*: how the observable record count and the
//!    "few packets per flow" limitation change with the router sampling
//!    interval.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cwa_analysis::filter::FlowFilter;
use cwa_simnet::sim::ScenarioKind;
use cwa_simnet::vantage::VantageConfig;
use cwa_simnet::{SimConfig, SimOutput, Simulation};

const SCALE: f64 = 0.008;

fn run(kind: ScenarioKind, sampling: u32) -> SimOutput {
    Simulation::new(SimConfig {
        scale: SCALE,
        scenario: kind,
        vantage: VantageConfig {
            sampling_interval: sampling,
            ..VantageConfig::default()
        },
        ..SimConfig::default()
    })
    .run()
}

fn resurge(out: &SimOutput) -> f64 {
    let t = &out.truth.cwa_flows_by_hour;
    let pre: u64 = t[5 * 24..8 * 24].iter().sum();
    let post: u64 = t[8 * 24..11 * 24].iter().sum();
    post as f64 / pre.max(1) as f64
}

fn regenerate_and_print() {
    println!("\n================= Ablation experiments =================");

    println!("A1: June-23 re-surge (Jun 23–25 / Jun 20–22 flows) by scenario:");
    for (label, kind) in [
        ("paper (outbreaks + national news)", ScenarioKind::Paper),
        (
            "outbreaks, no news coverage     ",
            ScenarioKind::OutbreaksWithoutNews,
        ),
        ("quiet (no outbreaks, no news)   ", ScenarioKind::Quiet),
    ] {
        let out = run(kind, 1000);
        println!("  {label}: {:.3}x", resurge(&out));
    }
    println!("  → the re-surge needs the *news*, not the infections (paper's conclusion)");

    println!("\nA2: router sampling interval vs. what the researchers see:");
    for sampling in [100u32, 1000, 4000] {
        let out = run(ScenarioKind::Paper, sampling);
        let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
        let matching = filter.apply(&out.records);
        let single = matching.iter().filter(|r| r.packets <= 2).count() as f64
            / matching.len().max(1) as f64;
        println!(
            "  1:{sampling:<5} → {:>7} records, {:>5.1}% with ≤2 packets",
            matching.len(),
            single * 100.0
        );
    }
    println!("  → at ISP-scale sampling, flow-size app/website separation is hopeless (§2)");
    println!("=========================================================\n");
}

fn bench(c: &mut Criterion) {
    regenerate_and_print();
    // Benchmark the full simulation at a tiny scale (the ablation's unit
    // of work).
    c.bench_function("ablation/simulate_tiny_world", |b| {
        b.iter(|| {
            let out = Simulation::new(SimConfig {
                scale: 0.001,
                days: 3,
                ..SimConfig::test_small()
            })
            .run();
            black_box(out.records.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
