//! **Batch vs. streaming study pipeline** — wall time and record
//! residency of `Study::run` (materialize all flow records, then five
//! analysis passes) against `Study::run_streaming` (fused single-pass
//! fan-out, one export-hour chunk resident at a time), at two scales.
//!
//! Plain `harness = false` binary with manual timing: each measurement
//! is a full simulate+analyze run (seconds), so Criterion's sampling
//! machinery would only add noise-floor theater around a handful of
//! iterations. Results are printed as a table and written to
//! `BENCH_streaming.json` at the workspace root.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use cwa_core::{Study, StudyConfig};
use cwa_netflow::CountingSink;
use cwa_simnet::Simulation;

const SCALES: [f64; 2] = [0.005, 0.02];
const REPS: usize = 3;

#[derive(Serialize)]
struct RunRow {
    scale: f64,
    batch_wall_ms: f64,
    streaming_wall_ms: f64,
    speedup: f64,
    total_records: u64,
    peak_resident_records_batch: u64,
    peak_resident_records_streaming: u64,
    matching_flows: u64,
}

#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    generated_by: &'static str,
    reps_per_path: usize,
    statistic: &'static str,
    runs: Vec<RunRow>,
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_runs<F: FnMut() -> u64>(mut run: F) -> (f64, u64) {
    let mut samples = Vec::with_capacity(REPS);
    let mut check = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        check = black_box(run());
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (median_ms(samples), check)
}

fn main() {
    let mut rows = Vec::new();
    println!("scale    batch_ms   stream_ms  speedup  resident(batch)  resident(stream)");
    for scale in SCALES {
        let config = StudyConfig::at_scale(scale);

        let (batch_ms, batch_flows) = time_runs(|| {
            Study::new(config)
                .run()
                .expect("study failed")
                .matching_flows
        });
        let (stream_ms, stream_flows) = time_runs(|| {
            Study::new(config)
                .run_streaming()
                .expect("study failed")
                .matching_flows
        });
        assert_eq!(
            batch_flows, stream_flows,
            "batch and streaming must agree on the matching-flow count"
        );

        // Residency: drive the producer once into a counting sink. The
        // batch path holds every record at peak; the streaming path
        // holds at most one export hour.
        let prepared = Simulation::new(config.sim).prepare();
        let mut sink = CountingSink::default();
        let (_truth, stats) = prepared.run_traffic(&mut sink);
        assert!(stats.peak_resident_records < sink.records);

        println!(
            "{scale:<8} {batch_ms:<10.1} {stream_ms:<10.1} {:<8.2} {:<16} {}",
            batch_ms / stream_ms,
            sink.records,
            stats.peak_resident_records
        );
        rows.push(RunRow {
            scale,
            batch_wall_ms: (batch_ms * 1e3).round() / 1e3,
            streaming_wall_ms: (stream_ms * 1e3).round() / 1e3,
            speedup: ((batch_ms / stream_ms) * 1e3).round() / 1e3,
            total_records: sink.records,
            peak_resident_records_batch: sink.records,
            peak_resident_records_streaming: stats.peak_resident_records,
            matching_flows: batch_flows,
        });
    }

    let doc = BenchDoc {
        schema: "cwa-bench-streaming/v1",
        generated_by: "cargo bench -p cwa-bench --bench streaming",
        reps_per_path: REPS,
        statistic: "median wall ms",
        runs: rows,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let pretty = serde_json::to_string_pretty(&doc).expect("serializes");
    match std::fs::write(path, pretty + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
