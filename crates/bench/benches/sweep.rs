//! **Scenario sweep** — wall time of `run_sweep` over a small scenario
//! matrix, serial vs. sharded, plus the cost of scenario parsing and
//! overlay alone.
//!
//! The matrix deliberately includes a starved scenario (scale far below
//! the 0.02 viability floor): starvation is the sweep's steady state,
//! not an edge case, so the bench must pay for it. The serial and
//! sharded tables are asserted byte-identical before any timing is
//! reported — a sweep that disagrees with itself is not worth timing.
//!
//! Plain `harness = false` binary with manual timing, same as the
//! streaming and sharded benches. Results go to `BENCH_sweep.json`.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use cwa_core::{run_sweep, ScenarioMatrix, StudyConfig};

const BASE_SCALE: f64 = 0.01;
const REPS: usize = 3;

const MATRIX: &str = r#"
[[scenario]]
name = "baseline"

[[scenario]]
name = "slow-logistic-launch"
[scenario.adoption]
family = "logistic"

[[scenario]]
name = "coarse-sampling"
[scenario.vantage]
sampling_interval = 1000

[[scenario]]
name = "starved-tiny-scale"
scale = 0.004

[[scenario]]
name = "migrated-cdn"
[scenario.cdn_migration]
day = 3
share_percent = 40

[[scenario]]
name = "no-outbreaks"
remove_outbreaks = ["Berlin", "Gütersloh", "Warendorf"]
"#;

#[derive(Serialize)]
struct SweepRow {
    shards: usize,
    wall_ms: f64,
    /// Wall-time ratio `serial / sharded(n)`.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchDoc {
    schema: &'static str,
    generated_by: &'static str,
    host_cpus: usize,
    reps_per_path: usize,
    statistic: &'static str,
    base_scale: f64,
    scenarios: usize,
    starved_cells: usize,
    parse_overlay_us: f64,
    runs: Vec<SweepRow>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite wall time"));
    xs[xs.len() / 2]
}

fn time_runs(mut f: impl FnMut() -> String) -> (f64, String) {
    let mut walls = Vec::with_capacity(REPS);
    let mut out = String::new();
    for _ in 0..REPS {
        let start = Instant::now();
        out = black_box(f());
        walls.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (median(walls), out)
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let base = StudyConfig::at_scale(BASE_SCALE);
    let matrix = ScenarioMatrix::parse(MATRIX).expect("bench matrix parses");

    // Parse + overlay alone, amortized: the fixed cost a sweep pays
    // before any simulation runs.
    let start = Instant::now();
    const PARSE_REPS: u32 = 200;
    for _ in 0..PARSE_REPS {
        black_box(ScenarioMatrix::parse(black_box(MATRIX)).expect("parses"));
    }
    let parse_overlay_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(PARSE_REPS);

    println!(
        "\n=========== Scenario sweep: {} scenarios at base scale {BASE_SCALE} ({host_cpus} cpus) ===========",
        matrix.scenarios.len()
    );
    println!("parse+matrix: {parse_overlay_us:.1} us");
    println!("{:<8} {:<10} speedup", "shards", "wall ms");

    let (serial_ms, serial_json) = time_runs(|| {
        run_sweep(&matrix, &base, 1)
            .expect("sweep failed")
            .to_json()
    });
    println!("{:<8} {serial_ms:<10.1} 1.00", "1");
    let starved_cells = serial_json.matches("\"starved\"").count();
    assert!(
        starved_cells > 0,
        "the starved-tiny-scale scenario must starve at least one cell"
    );

    let mut rows = vec![SweepRow {
        shards: 1,
        wall_ms: (serial_ms * 1e3).round() / 1e3,
        speedup: 1.0,
    }];
    for shards in [2usize, 4] {
        let (wall_ms, json) = time_runs(|| {
            run_sweep(&matrix, &base, shards)
                .expect("sweep failed")
                .to_json()
        });
        assert_eq!(
            json, serial_json,
            "survival table must be byte-identical across shard counts"
        );
        let speedup = serial_ms / wall_ms;
        println!("{shards:<8} {wall_ms:<10.1} {speedup:<8.2}");
        rows.push(SweepRow {
            shards,
            wall_ms: (wall_ms * 1e3).round() / 1e3,
            speedup: (speedup * 1e3).round() / 1e3,
        });
    }

    let doc = BenchDoc {
        schema: "cwa-bench-sweep/v1",
        generated_by: "cargo bench -p cwa-bench --bench sweep",
        host_cpus,
        reps_per_path: REPS,
        statistic: "median wall ms",
        base_scale: BASE_SCALE,
        scenarios: matrix.scenarios.len(),
        starved_cells,
        parse_overlay_us: (parse_overlay_us * 1e3).round() / 1e3,
        runs: rows,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let pretty = serde_json::to_string_pretty(&doc).expect("serializes");
    match std::fs::write(path, pretty + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
