//! # cwa-bench — shared helpers for the benchmark harness
//!
//! Every bench binary regenerates one of the paper's figures or claim
//! sets (printing the same rows/series the paper reports) and then
//! Criterion-benchmarks the analysis step that produces it. The
//! expensive simulation is run once per binary and shared.

use std::sync::OnceLock;

use cwa_simnet::{SimConfig, SimOutput, Simulation};

/// The benchmark scale: large enough for stable figures, small enough
/// for quick iteration. Figure shapes are scale-invariant (see
/// DESIGN.md).
pub const BENCH_SCALE: f64 = 0.02;

/// One shared simulation output per bench binary.
pub fn sim() -> &'static SimOutput {
    static SIM: OnceLock<SimOutput> = OnceLock::new();
    SIM.get_or_init(|| {
        eprintln!("[cwa-bench] simulating June 15–25 at scale {BENCH_SCALE} …");
        let t = std::time::Instant::now();
        let out = Simulation::new(SimConfig {
            scale: BENCH_SCALE,
            ..SimConfig::default()
        })
        .run();
        eprintln!(
            "[cwa-bench] simulation done in {:?} ({} records)",
            t.elapsed(),
            out.records.len()
        );
        out
    })
}

/// Renders an hourly series as a day-by-day table (the Fig. 2 rows).
pub fn render_daily_table(flows: &[u64], bytes: &[u64]) -> String {
    let mut out = String::from("day      date    flows     bytes(MB)  flows/min_day  peak_hour\n");
    let day_flow_min = flows
        .chunks(24)
        .map(|d| d.iter().sum::<u64>())
        .filter(|&f| f > 0)
        .min()
        .unwrap_or(1)
        .max(1);
    for (day, (fchunk, bchunk)) in flows.chunks(24).zip(bytes.chunks(24)).enumerate() {
        let f: u64 = fchunk.iter().sum();
        let b: u64 = bchunk.iter().sum();
        let peak = fchunk
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(h, _)| h)
            .unwrap_or(0);
        out.push_str(&format!(
            "{:<8} Jun {:<4} {:<9} {:<10.1} {:<14.2} {:02}:00\n",
            day,
            15 + day,
            f,
            b as f64 / 1e6,
            f as f64 / day_flow_min as f64,
            peak
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_table_renders() {
        let flows = vec![10u64; 48];
        let bytes = vec![1000u64; 48];
        let table = render_daily_table(&flows, &bytes);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("Jun 15"));
        assert!(table.contains("Jun 16"));
    }
}
