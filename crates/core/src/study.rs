//! The study runner: simulate → analyze → evaluate.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cwa_analysis::figures::{Figure2, Figure3};
use cwa_analysis::filter::FlowFilter;
use cwa_analysis::geoloc::{GeolocationPipeline, IspInfo};
use cwa_analysis::outbreak::OutbreakAnalysis;
use cwa_analysis::persistence::PersistenceAnalysis;
use cwa_analysis::timeseries::HourlySeries;
use cwa_epidemic::{AdoptionConfig, AdoptionModel, Timeline};
use cwa_epidemic::timeline::{
    JULY_24_DAY, MILESTONE_36H_HOUR,
};
use cwa_simnet::{SimConfig, SimOutput, Simulation};

use crate::claims::{Claim, ClaimId};
use crate::report::StudyReport;

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// The simulation configuration.
    pub sim: SimConfig,
    /// Routing-prefix length used by the persistence analysis (the
    /// paper's "regular routing prefixes"; /24 by default).
    pub persistence_prefix_len: u8,
}

impl Default for StudyConfig {
    fn default() -> Self {
        let sim = SimConfig::default();
        StudyConfig { sim, persistence_prefix_len: persistence_len_for_scale(sim.scale) }
    }
}

impl StudyConfig {
    /// Fast configuration for tests.
    pub fn test_small() -> Self {
        let sim = SimConfig::test_small();
        StudyConfig { sim, persistence_prefix_len: persistence_len_for_scale(sim.scale) }
    }

    /// A configuration at an explicit scale with matched persistence
    /// granularity.
    pub fn at_scale(scale: f64) -> Self {
        let sim = SimConfig { scale, ..SimConfig::default() };
        StudyConfig { sim, persistence_prefix_len: persistence_len_for_scale(scale) }
    }
}

/// Picks the routing-prefix granularity for the persistence analysis so
/// that the per-prefix flow *density* matches the full-scale study.
///
/// The paper's persistence quantiles are properties of how often a
/// typical routing prefix is re-observed; halving the traffic volume
/// while keeping /24 prefixes would halve that density and skew the
/// distribution toward sparse one-off prefixes. Coarsening the prefix by
/// one bit per halving of `scale` keeps the density — and thus the
/// reproduced distribution — invariant.
pub fn persistence_len_for_scale(scale: f64) -> u8 {
    let len = 24.0 + (scale.max(1e-6) / 0.7).log2();
    len.round().clamp(8.0, 24.0) as u8
}

/// The study runner.
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a runner.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Runs simulation + analysis + claim evaluation.
    pub fn run(&self) -> StudyReport {
        let sim = Simulation::new(self.config.sim).run();
        self.analyze(&sim)
    }

    /// Runs the analysis on an existing simulation output (lets callers
    /// reuse one expensive simulation for several analyses).
    pub fn analyze(&self, sim: &SimOutput) -> StudyReport {
        let cfg = &self.config;
        let days = sim.config.days;
        let hours = days * 24;
        let scale = sim.config.scale;

        // §2: the data set.
        let filter = FlowFilter::cwa(sim.cdn.service_prefixes.to_vec());
        let matching = filter.apply_owned(&sim.records);

        // Figure 2 inputs.
        let series = HourlySeries::from_records(matching.iter(), hours);
        let downloads_hourly: Vec<f64> =
            (0..hours).map(|h| sim.downloads.downloads_at(h)).collect();
        let figure2 = Figure2::assemble(&series, &downloads_hourly, 48);

        // Side tables in the analysis crate's vocabulary.
        let isp_table: HashMap<u32, IspInfo> = sim
            .isp_table
            .iter()
            .map(|(&net, e)| {
                (net, IspInfo { isp: e.isp.0, router_district: e.router_district })
            })
            .collect();
        let pipeline = GeolocationPipeline::new(
            &sim.germany,
            &sim.geodb,
            &isp_table,
            sim.config.plan.prefix_len,
        );

        // Figure 3: 10 days starting at release (June 16–25).
        let geo_10day = pipeline.run(&sim.records, &filter, 1, days.min(11));
        let geo_day1 = pipeline.run(&sim.records, &filter, 1, 2);
        let figure3 = Figure3::assemble(&sim.germany, &geo_10day);

        // Persistence.
        let mut persistence = PersistenceAnalysis::new(cfg.persistence_prefix_len, days);
        persistence.ingest(matching.iter());

        // Outbreak analysis.
        let outbreak = OutbreakAnalysis::compute(
            &sim.germany,
            &sim.records,
            &filter,
            &pipeline,
            |client| {
                let net = cwa_geo::geodb::mask(client, sim.config.plan.prefix_len);
                isp_table.get(&net).map(|e| e.isp)
            },
            days,
        );

        // Adoption milestones need the curve through July 24.
        let adoption_long = AdoptionModel::new(AdoptionConfig::default()).run(
            &sim.germany,
            &sim.scenario,
            Timeline::through_july(),
        );

        let mut claims = Vec::new();

        // ---- C1: ≈3.3 M matching flows (scale-adjusted). ----
        let flows_fullscale = matching.len() as f64 / scale;
        claims.push(Claim::evaluate(
            ClaimId::C1MatchingFlows,
            "≈3.3M matching flows within June 15–25 (§2)",
            Some(3.3e6),
            flows_fullscale,
            (1.5e6, 6.5e6),
            format!("{} records at scale {scale}", matching.len()),
        ));

        // ---- C2: 7.5× release-day jump. ----
        let jump = series.release_jump();
        claims.push(Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "7.5× increase of flows on June 16 (§3)",
            Some(7.5),
            jump,
            (4.0, 12.0),
            format!("daily flows: {:?}", series.daily_flows()),
        ));

        // ---- C3: download milestones. ----
        let d36 = adoption_long.downloads_at(MILESTONE_36H_HOUR);
        claims.push(Claim::evaluate(
            ClaimId::C3aDownloads36h,
            "6.4M downloads 36 h after release (§3)",
            Some(6.4e6),
            d36,
            (5.4e6, 7.4e6),
            String::new(),
        ));
        let dj24 = adoption_long.downloads_at(JULY_24_DAY * 24 + 23);
        claims.push(Claim::evaluate(
            ClaimId::C3bDownloadsJuly24,
            "16.2M total downloads by July 24 (§3)",
            Some(16.2e6),
            dj24,
            (15.0e6, 17.5e6),
            String::new(),
        ));

        // ---- C4: prefix persistence quantiles. ----
        let median = persistence.fraction_quantile(0.5);
        let p75 = persistence.fraction_quantile(0.75);
        claims.push(Claim::evaluate(
            ClaimId::C4aPersistenceMedian,
            "50% of prefixes occur in 67% of possible days (§3)",
            Some(0.67),
            median,
            (0.45, 0.90),
            format!("{} prefixes at /{}", persistence.prefix_count(), cfg.persistence_prefix_len),
        ));
        claims.push(Claim::evaluate(
            ClaimId::C4bPersistenceP75,
            "75% of prefixes occur in ≤80% of possible days (§3)",
            Some(0.80),
            p75,
            (0.60, 1.0),
            String::new(),
        ));

        // ---- C5: district coverage. ----
        let cov10 = geo_10day.coverage(1);
        claims.push(Claim::evaluate(
            ClaimId::C5aCoverage10Day,
            "almost all districts emit requests over 10 days (Fig. 3)",
            None,
            cov10,
            (0.95, 1.0),
            String::new(),
        ));
        let cov1 = geo_day1.coverage(1);
        claims.push(Claim::evaluate(
            ClaimId::C5bCoverageDay1,
            "the first-day map is almost the same (§3)",
            None,
            cov1 / cov10.max(1e-9),
            (0.85, 1.01),
            format!("day-1 coverage {cov1:.3}, 10-day coverage {cov10:.3}"),
        ));

        // ---- C6: outbreak (non-)effects. ----
        // Windows around June 23: pre = Jun 20–22 (days 5..8),
        // post = Jun 23–25 (days 8..11).
        let (nrw, median_rest, _within) = outbreak.nrw_vs_rest(5..8, 8..11, 1.25);
        claims.push(Claim::evaluate(
            ClaimId::C6aNrwVsRest,
            "June-23 increase occurs in all states, not only NRW (§3)",
            None,
            nrw / median_rest,
            (0.80, 1.25),
            format!("NRW growth {nrw:.3}, median other states {median_rest:.3}"),
        ));

        let national = outbreak.national_growth(5..8, 8..11);
        let guetersloh = sim
            .germany
            .by_name("Gütersloh")
            .map(|d| outbreak.district_growth(d.id, 5..8, 8..11))
            .unwrap_or(f64::NAN);
        claims.push(Claim::evaluate(
            ClaimId::C6bGuetersloh,
            "Gütersloh itself increased only very slightly (§3)",
            None,
            guetersloh / national,
            // The substantive bound is the upper one: a *local* effect
            // would push Gütersloh well above the national growth. The
            // district's small per-day counts make the ratio noisy
            // downward at reduced scales.
            (0.5, 1.5),
            format!("Gütersloh growth {guetersloh:.3}, national {national:.3}"),
        ));

        // Berlin June 18: pre = Jun 16–17 (days 1..3), post = Jun 18–19
        // (days 3..5). Compare the ground-truth ISP's growth of
        // Berlin-located traffic against the median of the other ISPs.
        let gt_isp = sim
            .plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .map(|i| i.id.0)
            .unwrap_or(u8::MAX);
        let berlin_growth = outbreak.berlin_isp_growth(1..3, 3..5);
        let gt_growth = berlin_growth
            .iter()
            .find(|(isp, _)| *isp == gt_isp)
            .map(|&(_, g)| g)
            .unwrap_or(f64::NAN);
        let mut others: Vec<f64> = berlin_growth
            .iter()
            .filter(|(isp, _)| *isp != gt_isp)
            .map(|&(_, g)| g)
            .filter(|g| g.is_finite())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let other_median =
            others.get(others.len() / 2).copied().unwrap_or(f64::NAN);
        claims.push(Claim::evaluate(
            ClaimId::C6cBerlinSingleIsp,
            "Berlin June-18 outbreak visible only within a single ISP (§3)",
            None,
            gt_growth / other_median,
            (1.10, 6.0),
            format!(
                "ground-truth ISP growth {gt_growth:.3}, median other ISPs {other_median:.3}, all: {berlin_growth:?}"
            ),
        ));

        // ---- C7: DNS / side-data claims. ----
        let api_first = sim.dns.api_top1m_days.first().copied();
        claims.push(Claim::evaluate(
            ClaimId::C7aUmbrellaApi,
            "API name entered the Umbrella top 1M late in the window (Jun 24) (§2)",
            Some(9.0),
            api_first.map(f64::from).unwrap_or(f64::NAN),
            (6.0, 10.0),
            format!("top-1M days: {:?}", sim.dns.api_top1m_days),
        ));
        claims.push(Claim::evaluate(
            ClaimId::C7bUmbrellaWebsite,
            "the website never appeared in the top 1M (§2)",
            Some(0.0),
            sim.dns.website_top1m_days.len() as f64,
            (0.0, 0.0),
            String::new(),
        ));
        claims.push(Claim::evaluate(
            ClaimId::C7cGroundTruthShare,
            "18% of geolocations from router ground truth (§3)",
            Some(0.18),
            geo_10day.ground_truth_share(),
            (0.12, 0.25),
            String::new(),
        ));

        StudyReport {
            config: *cfg,
            figure2,
            figure3,
            claims,
            matching_flows: matching.len() as u64,
            total_records: sim.records.len() as u64,
            district_flows: geo_10day.district_flows.clone(),
            persistence_median: median,
            persistence_p75: p75,
            ground_truth_share: geo_10day.ground_truth_share(),
            release_jump: jump,
            api_rank_by_day: sim.dns.api_rank.clone(),
            website_rank_by_day: sim.dns.website_rank.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small run for all study-level assertions (the full
    /// claim-by-claim validation lives in the integration tests).
    #[test]
    fn study_runs_and_reports() {
        let report = Study::new(StudyConfig::test_small()).run();
        assert_eq!(report.claims.len(), 14);
        assert!(report.matching_flows > 0);
        assert!(report.total_records > report.matching_flows);
        // Figure 2 has one point per hour.
        assert_eq!(report.figure2.flows_normed.len(), 264);
        // Figure 3 covers all districts.
        assert_eq!(report.figure3.rows.len(), 401);
        // The text rendering mentions every claim code.
        let text = report.render_text();
        for claim in &report.claims {
            assert!(text.contains(claim.id.code()), "missing {}", claim.id.code());
        }
    }
}
