//! The study runner: simulate → analyze → evaluate.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use cwa_obs::{Counter, LiveSnapshot, Registry, StageLog, TraceBuf, Tracer};

use cwa_analysis::figures::{Figure2, Figure3};
use cwa_analysis::filter::FlowFilter;
use cwa_analysis::geoloc::{GeoDayAccumulator, GeoResult, GeolocationPipeline, IspInfo};
use cwa_analysis::outbreak::{OutbreakAccumulator, OutbreakAnalysis};
use cwa_analysis::persistence::PersistenceAnalysis;
use cwa_analysis::stream::{FanOut, StreamCounts};
use cwa_analysis::timeseries::HourlySeries;
use cwa_analysis::windowed::{WindowSnapshot, WindowedView};
use cwa_epidemic::timeline::{JULY_24_DAY, MILESTONE_36H_HOUR};
use cwa_epidemic::{AdoptionCurve, AdoptionModel, Scenario, Timeline};
use cwa_geo::{AddressPlan, FederalState, GeoDb, Germany};
use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::{FlowChunk, FlowSink};
use cwa_simnet::{
    shard_keys, DnsStudy, IspSideEntry, PreparedSim, ShardKeyMode, SimConfig, SimOutput, Simulation,
};

use crate::claims::{Cell, Claim, ClaimId};
use crate::live::{LiveOptions, WindowVerdicts};
use crate::report::{PhaseTiming, RunManifest, StudyReport};

/// Minimum per-cell observation counts below which the claims reading a
/// cell are reported as [`Verdict::Starved`](crate::claims::Verdict)
/// instead of pass/fail. The thresholds were tuned empirically across
/// scales 0.0005–0.02: at scale 0.02 every cell clears its threshold
/// (the full claim table evaluates, nothing starves); at 0.01 the day-1
/// geo window is the first cell to drop under (≈1.4k located flows —
/// its C5b share estimate is visibly noise-driven there); at 0.005 the
/// Berlin per-ISP window follows (≈75 pre-window flows); and the
/// default `test_small` scale 0.004 additionally drains the Gütersloh
/// pre-window. A starved cell means "not enough observations to judge",
/// never "the claim failed".
pub mod min_support {
    /// §2 matching flows for C1 — any evidence at all.
    pub const FLOWS: u64 = 1;
    /// Pre-release-day flows for the C2 jump denominator.
    pub const DAY0_FLOWS: u64 = 25;
    /// Distinct prefixes behind the C4 persistence quantiles.
    pub const PREFIXES: u64 = 20;
    /// Located flows in the 10-day geo window (C5a, C7c).
    pub const GEO_10DAY_FLOWS: u64 = 5_000;
    /// Located flows in the day-1 geo window (C5b).
    pub const GEO_DAY1_FLOWS: u64 = 2_000;
    /// National pre-window flows for the C6a growth ratio.
    pub const OUTBREAK_NATIONAL_PRE: u64 = 400;
    /// Gütersloh pre-window flows for the C6b growth ratio.
    pub const OUTBREAK_DISTRICT_PRE: u64 = 12;
    /// Berlin per-ISP pre-window flows for C6c.
    pub const OUTBREAK_BERLIN_PRE: u64 = 100;
}

/// A structured failure of a study run. Since starvation degraded into
/// per-claim [`Verdict::Starved`](crate::claims::Verdict) verdicts,
/// everything data-related is reported *inside* the [`StudyReport`];
/// these errors remain only for explicit strictness and misconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The run produced records, but none matched the §2 CWA filter —
    /// typically a scale so small that not a single sampled CWA flow
    /// survived 1-in-N packet sampling. Only raised under
    /// [`Study::strict`]; the default path reports every claim as
    /// starved instead.
    NoMatchingFlows {
        /// The traffic scale that was simulated.
        scale: f64,
        /// How many (non-matching) records the run did produce.
        total_records: u64,
    },
    /// A sharded run was asked for more shards than there are export
    /// engines (routers) to split across, or for zero shards.
    InvalidShardCount {
        /// The requested shard count.
        requested: usize,
        /// The configured router count (the maximum).
        routers: u8,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::NoMatchingFlows {
                scale,
                total_records,
            } => write!(
                f,
                "no flows matched the §2 CWA filter at scale {scale} \
                 ({total_records} records total) and --strict refuses \
                 starved reports; drop --strict to get a report with \
                 per-claim starved verdicts, or raise --scale — 0.02 is \
                 the smallest scale at which every claim evaluates \
                 (below it, starved cells like C5b day-1 coverage are \
                 reported as starved, not failed; see EXPERIMENTS.md)"
            ),
            StudyError::InvalidShardCount { requested, routers } => write!(
                f,
                "shard count {requested} is invalid: must be between 1 \
                 and the router count ({routers})"
            ),
        }
    }
}

impl std::error::Error for StudyError {}

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// The simulation configuration.
    pub sim: SimConfig,
    /// Routing-prefix length used by the persistence analysis (the
    /// paper's "regular routing prefixes"; /24 by default).
    pub persistence_prefix_len: u8,
}

impl Default for StudyConfig {
    fn default() -> Self {
        let sim = SimConfig::default();
        StudyConfig {
            sim,
            persistence_prefix_len: persistence_len_for_scale(sim.scale),
        }
    }
}

impl StudyConfig {
    /// Fast configuration for tests.
    pub fn test_small() -> Self {
        let sim = SimConfig::test_small();
        StudyConfig {
            sim,
            persistence_prefix_len: persistence_len_for_scale(sim.scale),
        }
    }

    /// A configuration at an explicit scale with matched persistence
    /// granularity.
    pub fn at_scale(scale: f64) -> Self {
        let sim = SimConfig {
            scale,
            ..SimConfig::default()
        };
        StudyConfig {
            sim,
            persistence_prefix_len: persistence_len_for_scale(scale),
        }
    }
}

/// Picks the routing-prefix granularity for the persistence analysis so
/// that the per-prefix flow *density* matches the full-scale study.
///
/// The paper's persistence quantiles are properties of how often a
/// typical routing prefix is re-observed; halving the traffic volume
/// while keeping /24 prefixes would halve that density and skew the
/// distribution toward sparse one-off prefixes. Coarsening the prefix by
/// one bit per halving of `scale` keeps the density — and thus the
/// reproduced distribution — invariant.
pub fn persistence_len_for_scale(scale: f64) -> u8 {
    let len = 24.0 + (scale.max(1e-6) / 0.7).log2();
    len.round().clamp(8.0, 24.0) as u8
}

/// The study runner.
pub struct Study {
    config: StudyConfig,
    metrics: Option<Arc<Registry>>,
    trace: Option<Arc<Tracer>>,
    /// Refuse to assemble a report when no flow matched the §2 filter
    /// (the pre-degradation behaviour, opt-in via `--strict`).
    strict: bool,
    /// Lazily-created flight-recorder track for study-level phase spans
    /// (pid 0 / tid 201 "study"), shared by every run on this runner.
    phase_buf: OnceLock<Arc<TraceBuf>>,
    /// Override for the columnar batch size on the record path. Not part
    /// of [`StudyConfig`]: any capacity yields byte-identical reports, so
    /// it must not perturb the config hash.
    chunk_capacity: Option<usize>,
}

/// Converts the simulator's ISP side table into the analysis crate's
/// vocabulary (shared by the batch and streaming paths).
fn analysis_isp_table(table: &HashMap<u32, IspSideEntry>) -> HashMap<u32, IspInfo> {
    table
        .iter()
        .map(|(&net, e)| {
            (
                net,
                IspInfo {
                    isp: e.isp.0,
                    router_district: e.router_district,
                },
            )
        })
        .collect()
}

/// Client-address → ISP resolver over the anonymized side table.
fn isp_resolver(
    isp_table: &HashMap<u32, IspInfo>,
    prefix_len: u8,
) -> impl Fn(std::net::Ipv4Addr) -> Option<u8> + '_ {
    move |client| {
        let net = cwa_geo::geodb::mask(client, prefix_len);
        isp_table.get(&net).map(|e| e.isp)
    }
}

/// Everything the analysis stages produce before claim evaluation. Both
/// the batch path ([`Study::run`] / [`Study::analyze`]) and the
/// streaming path ([`Study::run_streaming`]) fill this struct and hand
/// it to the shared report assembly, which guarantees the two paths
/// cannot diverge in how claims are derived.
struct AnalysisProducts {
    series: HourlySeries,
    geo_10day: GeoResult,
    geo_day1: GeoResult,
    persistence: PersistenceAnalysis,
    outbreak: OutbreakAnalysis,
    matching_flows: u64,
    total_records: u64,
}

/// The consumer names shared by the streaming and sharded paths (must
/// stay in [`FanOut`] registration order so merged counts line up).
const CONSUMER_NAMES: [&str; 4] = ["timeseries", "geoloc", "persistence", "outbreak"];

/// One shard's private analysis chain: the §2 filter applied once, then
/// fan-out into shard-local partial accumulators — a [`FanOut`] without
/// the `&mut dyn` borrows, so the whole chain is `Send` and can live on
/// a crossbeam worker. Each worker fills its own `ShardConsumers`; the
/// main thread then merges the partials with the accumulators' `absorb`
/// operations, which is exact because every accumulator is a
/// commutative monoid over records.
struct ShardConsumers<'w> {
    filter: &'w FlowFilter,
    series: HourlySeries,
    geo: GeoDayAccumulator<'w>,
    persistence: PersistenceAnalysis,
    outbreak: OutbreakAccumulator<'w, Box<dyn Fn(Ipv4Addr) -> Option<u8> + Send + Sync + 'w>>,
    counts: StreamCounts,
    /// `sim.shard.<i>.records` — live per-shard record throughput.
    records_counter: Option<Arc<Counter>>,
    /// Flight-recorder stage timing onto this shard's "analysis" track,
    /// flushed as coalesced filter/analyze spans at every export-hour
    /// checkpoint.
    trace: Option<StageLog>,
    /// Reusable selection scratch for the chunked path.
    selection: FlowChunk,
}

impl FlowSink for ShardConsumers<'_> {
    fn observe(&mut self, rec: &FlowRecord) {
        self.counts.records_in += 1;
        if let Some(counter) = &self.records_counter {
            counter.add(1);
        }
        let Some(log) = &mut self.trace else {
            // Untraced fast path: zero timing overhead.
            if !self.filter.matches(rec) {
                return;
            }
            self.counts.records_matched += 1;
            self.series.observe(rec);
            self.geo.observe(rec);
            self.persistence.observe(rec);
            self.outbreak.observe(rec);
            for (_, count) in &mut self.counts.consumers {
                *count += 1;
            }
            return;
        };
        let mut t = log.now_ns();
        let matched = self.filter.matches(rec);
        let now = log.now_ns();
        log.add_filter(now.saturating_sub(t));
        if !matched {
            return;
        }
        t = now;
        self.counts.records_matched += 1;
        self.series.observe(rec);
        let now = log.now_ns();
        log.add_stage(0, now.saturating_sub(t));
        t = now;
        self.geo.observe(rec);
        let now = log.now_ns();
        log.add_stage(1, now.saturating_sub(t));
        t = now;
        self.persistence.observe(rec);
        let now = log.now_ns();
        log.add_stage(2, now.saturating_sub(t));
        t = now;
        self.outbreak.observe(rec);
        let now = log.now_ns();
        log.add_stage(3, now.saturating_sub(t));
        for (_, count) in &mut self.counts.consumers {
            *count += 1;
        }
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.counts.records_in += chunk.len() as u64;
        if let Some(counter) = &self.records_counter {
            counter.add(chunk.len() as u64);
        }
        let mut sel = std::mem::take(&mut self.selection);
        match &mut self.trace {
            None => {
                // Untraced fast path: one filter pass and one dyn-free
                // call per consumer per chunk.
                self.filter.select_into(chunk, &mut sel);
                if !sel.is_empty() {
                    let matched = sel.len() as u64;
                    self.counts.records_matched += matched;
                    self.series.observe_chunk(&sel);
                    self.geo.observe_chunk(&sel);
                    self.persistence.observe_chunk(&sel);
                    self.outbreak.observe_chunk(&sel);
                    for (_, count) in &mut self.counts.consumers {
                        *count += matched;
                    }
                }
            }
            Some(log) => {
                let mut t = log.now_ns();
                self.filter.select_into(chunk, &mut sel);
                let now = log.now_ns();
                log.add_filter(now.saturating_sub(t));
                if !sel.is_empty() {
                    let matched = sel.len() as u64;
                    self.counts.records_matched += matched;
                    t = now;
                    self.series.observe_chunk(&sel);
                    let now = log.now_ns();
                    log.add_stage(0, now.saturating_sub(t));
                    t = now;
                    self.geo.observe_chunk(&sel);
                    let now = log.now_ns();
                    log.add_stage(1, now.saturating_sub(t));
                    t = now;
                    self.persistence.observe_chunk(&sel);
                    let now = log.now_ns();
                    log.add_stage(2, now.saturating_sub(t));
                    t = now;
                    self.outbreak.observe_chunk(&sel);
                    let now = log.now_ns();
                    log.add_stage(3, now.saturating_sub(t));
                    for (_, count) in &mut self.counts.consumers {
                        *count += matched;
                    }
                }
            }
        }
        self.selection = sel;
    }

    fn finish(&mut self) {
        if let Some(log) = &mut self.trace {
            log.flush();
        }
        self.series.finish();
        self.geo.finish();
        self.persistence.finish();
        self.outbreak.finish();
    }

    fn checkpoint(&mut self) {
        if let Some(log) = &mut self.trace {
            log.flush();
        }
    }
}

/// Borrowed side data the report assembly needs. Available both from a
/// finished [`SimOutput`] and — mid-run — from a [`PreparedSim`], which
/// is what lets live mode assemble interim reports while the traffic
/// generator is still streaming.
struct ReportContext<'a> {
    config: &'a SimConfig,
    germany: &'a Germany,
    plan: &'a AddressPlan,
    scenario: &'a Scenario,
    downloads: &'a AdoptionCurve,
    dns: &'a DnsStudy,
}

impl<'a> ReportContext<'a> {
    fn from_output(sim: &'a SimOutput) -> Self {
        ReportContext {
            config: &sim.config,
            germany: &sim.germany,
            plan: &sim.plan,
            scenario: &sim.scenario,
            downloads: &sim.downloads,
            dns: &sim.dns,
        }
    }

    fn from_prepared(sim: &'a PreparedSim) -> Self {
        ReportContext {
            config: &sim.config,
            germany: &sim.germany,
            plan: &sim.plan,
            scenario: &sim.scenario,
            downloads: &sim.downloads,
            dns: &sim.dns,
        }
    }
}

/// One live consumer chain: the §2 filter applied once, feeding a
/// [`WindowedView`] (the four study-tier accumulators plus the sliding
/// window tiers). `Send` whenever the resolver is, so the sharded
/// driver can run one per worker exactly like [`ShardConsumers`].
struct LiveSink<'w, F> {
    filter: &'w FlowFilter,
    view: WindowedView<'w, F>,
    counts: StreamCounts,
    /// `sim.shard.<i>.records` — live per-shard record throughput
    /// (sharded runs only).
    records_counter: Option<Arc<Counter>>,
    /// Reusable selection scratch for the chunked path.
    selection: FlowChunk,
    /// Sharded interim publication: at every simulated day boundary the
    /// shard deposits a clone of its view and counts here, and a
    /// publisher thread merges the aligned fronts off the hot path. The
    /// real sink is untouched, so the end-of-run merge (and therefore
    /// the final report bytes) cannot observe the difference.
    deposits: Option<Arc<Mutex<VecDeque<ShardDeposit<'w, F>>>>>,
}

/// One shard's day-boundary snapshot, queued for interim merging.
struct ShardDeposit<'w, F> {
    view: WindowedView<'w, F>,
    counts: StreamCounts,
}

impl<F> FlowSink for LiveSink<'_, F>
where
    F: Fn(Ipv4Addr) -> Option<u8> + Clone,
{
    fn observe(&mut self, rec: &FlowRecord) {
        self.counts.records_in += 1;
        if let Some(counter) = &self.records_counter {
            counter.add(1);
        }
        if !self.filter.matches(rec) {
            return;
        }
        self.counts.records_matched += 1;
        self.view.observe(rec);
        for (_, count) in &mut self.counts.consumers {
            *count += 1;
        }
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.counts.records_in += chunk.len() as u64;
        if let Some(counter) = &self.records_counter {
            counter.add(chunk.len() as u64);
        }
        let mut sel = std::mem::take(&mut self.selection);
        self.filter.select_into(chunk, &mut sel);
        if !sel.is_empty() {
            let matched = sel.len() as u64;
            self.counts.records_matched += matched;
            self.view.observe_chunk(&sel);
            for (_, count) in &mut self.counts.consumers {
                *count += matched;
            }
        }
        self.selection = sel;
    }

    fn checkpoint(&mut self) {
        // Drives the view's day boundaries — one call per export hour,
        // identical across shards, which is what makes window eviction
        // commute with the merge.
        self.view.checkpoint();
        if let Some(queue) = &self.deposits {
            // Every shard checkpoints the same hours in lockstep, so
            // the fronts of all deposit queues always carry the same
            // `hours_seen` — exactly what `absorb` requires. The extra
            // post-finish checkpoint lands at `hours + 1`, never on a
            // day boundary, so each shard deposits exactly `days` times.
            if self.view.hours_seen() % 24 == 0 {
                queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(ShardDeposit {
                        view: self.view.clone(),
                        counts: self.counts.clone(),
                    });
            }
        }
    }
}

/// Publishes interim documents into the live mailbox: the three figure
/// documents after every export hour, a full `/report` envelope at
/// every day boundary (claim evaluation per hour would dominate small
/// replays).
struct LivePublisher<'a> {
    study: &'a Study,
    ctx: ReportContext<'a>,
    live: Arc<LiveSnapshot>,
}

impl LivePublisher<'_> {
    fn tick<F>(&self, view: &WindowedView<'_, F>, counts: &StreamCounts)
    where
        F: Fn(Ipv4Addr) -> Option<u8>,
    {
        // Publication overhead is itself observable: `live.publish_ns`
        // times every tick, `live.publishes` counts them.
        let _span = self
            .study
            .metrics
            .as_ref()
            .map(|m| m.span("live.publish_ns"));
        let snap = view.snapshot();
        crate::live::publish_figures(&self.live, &snap);
        if view.hours_seen() % 24 == 0 {
            let days = self.ctx.config.days;
            let products = AnalysisProducts {
                series: view.series.clone(),
                geo_10day: view.geo.result(1, days.min(11)),
                geo_day1: view.geo.result(1, 2),
                persistence: view.persistence.clone(),
                outbreak: view.outbreak.to_analysis(),
                matching_flows: counts.records_matched,
                total_records: counts.records_in,
            };
            if let Ok(report) =
                self.study
                    .assemble_report_ctx(&self.ctx, products, Vec::new(), false)
            {
                let window =
                    evaluate_window_claims(&self.ctx, &snap.window, counts.records_matched);
                self.live.publish_report(crate::live::render_report(
                    &report,
                    snap.day,
                    snap.hours_seen,
                    days,
                    false,
                    &window,
                ));
            }
        }
        if let Some(registry) = &self.study.metrics {
            registry.counter("live.publishes").add(1);
        }
    }
}

/// Re-judges the window-evaluable subset of the claim table over the
/// sliding last-N-days window of a live run, so a standing observation
/// can distinguish "passing now" from "passed overall". Claims whose
/// inputs cannot be re-derived from the raw window are omitted: C3/C7a/
/// C7b read public side data, C4 needs the lifetime persistence bitmap,
/// C5b needs a day-1 slice the window eventually evicts, and C6b needs
/// per-district outbreak days beyond the windowed state tier. Day-
/// anchored claims (C2, C6a, C6c) are evaluated only while their
/// anchor days are still inside the window.
fn evaluate_window_claims(
    ctx: &ReportContext<'_>,
    window: &WindowSnapshot,
    matching_flows: u64,
) -> WindowVerdicts {
    let scale = ctx.config.scale;
    let mut verdicts = Vec::new();

    // C1: matching flows inside the window, scale-adjusted against the
    // same §2 band (the window spans the paper's whole 11-day
    // observation until days start falling off the back).
    let window_flows = window.flows();
    verdicts.push(
        Claim::evaluate(
            ClaimId::C1MatchingFlows,
            "≈3.3M matching flows within June 15–25 (§2)",
            Some(3.3e6),
            window_flows as f64 / scale,
            (1.5e6, 6.5e6),
            format!(
                "{window_flows} window flows at scale {scale}, days {}..{}",
                window.from_day, window.to_day
            ),
        )
        .with_starvation(
            Cell::Flows,
            window_flows,
            min_support::FLOWS,
            matching_flows,
        ),
    );

    // C2: the release-day jump, while day 0 is still in the window.
    if window.from_day == 0 {
        let day0 = window.daily_flows().first().copied().unwrap_or(0);
        verdicts.push(
            Claim::evaluate(
                ClaimId::C2ReleaseJump,
                "7.5× increase of flows on June 16 (§3)",
                Some(7.5),
                window.release_jump(),
                (4.0, 12.0),
                format!("window daily flows: {:?}", window.daily_flows()),
            )
            .with_starvation(
                Cell::HourlySeries,
                day0,
                min_support::DAY0_FLOWS,
                matching_flows,
            ),
        );
    }

    // C5a: district coverage of the window itself.
    let located = window.located_flows();
    verdicts.push(
        Claim::evaluate(
            ClaimId::C5aCoverage10Day,
            "almost all districts emit requests over 10 days (Fig. 3)",
            None,
            window.coverage(1),
            (0.95, 1.0),
            String::new(),
        )
        .with_starvation(
            Cell::GeoWindow,
            located,
            min_support::GEO_10DAY_FLOWS,
            matching_flows,
        ),
    );

    // C6a: the June-23 national (non-)effect, while both comparison
    // windows (days 5..8 pre, 8..11 post) are inside the window.
    if window.contains_days(5..11) {
        let growth = window.state_growth(5..8, 8..11);
        let nrw = growth[FederalState::NordrheinWestfalen.index()];
        let mut others: Vec<f64> = growth
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != FederalState::NordrheinWestfalen.index())
            .map(|(_, &g)| g)
            .filter(|g| g.is_finite())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_rest = others.get(others.len() / 2).copied().unwrap_or(f64::NAN);
        let national_pre: u64 = window.state_sum(5..8).iter().sum();
        verdicts.push(
            Claim::evaluate(
                ClaimId::C6aNrwVsRest,
                "June-23 increase occurs in all states, not only NRW (§3)",
                None,
                nrw / median_rest,
                (0.80, 1.25),
                format!("NRW growth {nrw:.3}, median other states {median_rest:.3}"),
            )
            .with_starvation(
                Cell::Outbreak,
                national_pre,
                min_support::OUTBREAK_NATIONAL_PRE,
                matching_flows,
            ),
        );
    }

    // C6c: the Berlin single-ISP signature, while days 1..5 are inside
    // the window.
    if window.contains_days(1..5) {
        let gt_isp = ctx
            .plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .map(|i| i.id.0)
            .unwrap_or(u8::MAX);
        let berlin_growth = window.berlin_isp_growth(1..3, 3..5);
        let gt_growth = berlin_growth
            .iter()
            .find(|(isp, _)| *isp == gt_isp)
            .map(|&(_, g)| g)
            .unwrap_or(f64::NAN);
        let mut others: Vec<f64> = berlin_growth
            .iter()
            .filter(|(isp, _)| *isp != gt_isp)
            .map(|&(_, g)| g)
            .filter(|g| g.is_finite())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let other_median = others.get(others.len() / 2).copied().unwrap_or(f64::NAN);
        let berlin_pre = window.berlin_sum(1..3);
        verdicts.push(
            Claim::evaluate(
                ClaimId::C6cBerlinSingleIsp,
                "Berlin June-18 outbreak visible only within a single ISP (§3)",
                None,
                gt_growth / other_median,
                (1.10, 6.0),
                format!(
                    "ground-truth ISP growth {gt_growth:.3}, median other ISPs {other_median:.3}"
                ),
            )
            .with_starvation(
                Cell::Outbreak,
                berlin_pre,
                min_support::OUTBREAK_BERLIN_PRE,
                matching_flows,
            ),
        );
    }

    // C7c: ground-truth attribution share of the window geolocations.
    verdicts.push(
        Claim::evaluate(
            ClaimId::C7cGroundTruthShare,
            "18% of geolocations from router ground truth (§3)",
            Some(0.18),
            window.ground_truth_share(),
            (0.12, 0.25),
            String::new(),
        )
        .with_starvation(
            Cell::GeoWindow,
            located,
            min_support::GEO_10DAY_FLOWS,
            matching_flows,
        ),
    );

    WindowVerdicts {
        from_day: window.from_day,
        to_day: window.to_day,
        verdicts,
    }
}

/// Pops one aligned day-boundary deposit per shard (when every shard
/// has one queued), merges them in shard order, and publishes the
/// merged interim state. Returns whether a merge happened.
fn publish_front_deposits<F>(
    queues: &[Arc<Mutex<VecDeque<ShardDeposit<'_, F>>>>],
    publisher: &LivePublisher<'_>,
) -> bool
where
    F: Fn(Ipv4Addr) -> Option<u8>,
{
    // Lock all queues up front (fixed order; the workers each touch
    // only their own queue, so this cannot deadlock) and only consume
    // when every shard has a deposit — the fronts then carry the same
    // `hours_seen`, which is what `absorb` asserts.
    let mut guards: Vec<_> = queues
        .iter()
        .map(|q| q.lock().unwrap_or_else(|e| e.into_inner()))
        .collect();
    if guards.iter().any(|g| g.is_empty()) {
        return false;
    }
    let mut parts: Vec<ShardDeposit<'_, F>> = guards
        .iter_mut()
        .map(|g| g.pop_front().expect("checked non-empty"))
        .collect();
    drop(guards);
    let mut merged = parts.remove(0);
    for part in &parts {
        merged.view.absorb(&part.view);
        merged.counts.absorb(&part.counts);
    }
    publisher.tick(&merged.view, &merged.counts);
    true
}

/// Serial-driver wrapper adding wall-clock replay pacing and
/// per-checkpoint publication on top of a [`LiveSink`].
struct PacedLiveSink<'w, F> {
    inner: LiveSink<'w, F>,
    /// Wall-clock sleep per simulated export hour.
    pace: Option<Duration>,
    publisher: Option<LivePublisher<'w>>,
}

impl<F> FlowSink for PacedLiveSink<'_, F>
where
    F: Fn(Ipv4Addr) -> Option<u8> + Clone,
{
    fn observe(&mut self, rec: &FlowRecord) {
        self.inner.observe(rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.inner.observe_chunk(chunk);
    }

    fn checkpoint(&mut self) {
        self.inner.checkpoint();
        if let Some(pace) = self.pace {
            std::thread::sleep(pace);
        }
        if let Some(publisher) = &self.publisher {
            publisher.tick(&self.inner.view, &self.inner.counts);
        }
    }
}

impl Study {
    /// Creates a runner.
    pub fn new(config: StudyConfig) -> Self {
        Study {
            config,
            metrics: None,
            trace: None,
            strict: false,
            phase_buf: OnceLock::new(),
            chunk_capacity: None,
        }
    }

    /// Overrides the capacity of the columnar [`FlowChunk`] batches the
    /// collector hands to the analysis sinks. Purely a performance knob:
    /// reports are byte-identical for any capacity, so it is deliberately
    /// kept out of [`StudyConfig`] (and the config hash). Mostly useful
    /// for invariance tests; the default of
    /// [`cwa_netflow::sink::DEFAULT_CHUNK_CAPACITY`] is right for
    /// production runs.
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = Some(capacity);
        self
    }

    /// Strict mode: fail with [`StudyError::NoMatchingFlows`] when the
    /// §2 filter matches nothing, instead of producing a report whose
    /// claims are all marked starved. Off by default — a starved cell
    /// degrades the affected claims, it does not abort the study.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Attaches an observability registry: the simulation's counters
    /// land in it, and every analysis stage contributes a timer plus
    /// record counts. Pure observation — reports stay bit-identical
    /// (modulo the volatile manifest timings) with metrics on or off.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a flight recorder: every pipeline stage (produce,
    /// export, drain, filter, analyze, channel stalls) lands in the
    /// tracer's per-thread ring buffers, exportable as Chrome
    /// trace-event JSON via [`Tracer::to_chrome_json`]. Pure
    /// observation — reports stay bit-identical (modulo the volatile
    /// manifest timings) with tracing on or off.
    pub fn with_trace(mut self, tracer: Arc<Tracer>) -> Self {
        self.trace = Some(tracer);
        self
    }

    /// Records one finished phase: into the manifest timing list, as an
    /// observability timer when a registry is attached, and as a
    /// back-dated span on the "study" trace track when a tracer is.
    fn record_phase(&self, timings: &mut Vec<PhaseTiming>, phase: &str, elapsed: Duration) {
        let duration_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        timings.push(PhaseTiming {
            phase: phase.to_owned(),
            duration_ns,
        });
        if let Some(registry) = &self.metrics {
            registry.timer(phase).record(elapsed);
        }
        if let Some(tracer) = &self.trace {
            let buf = self
                .phase_buf
                .get_or_init(|| tracer.thread(0, 201, "study"));
            let name = tracer.name(phase);
            let now = buf.now_ns();
            buf.complete(name, now.saturating_sub(duration_ns), duration_ns);
        }
    }

    /// Runs simulation + analysis + claim evaluation.
    ///
    /// Fails with [`StudyError::NoMatchingFlows`] when the configured
    /// scale is too small for any CWA flow to survive sampling.
    pub fn run(&self) -> Result<StudyReport, StudyError> {
        let started = Instant::now();
        let mut simulation = Simulation::new(self.config.sim);
        if let Some(registry) = &self.metrics {
            simulation = simulation.with_metrics(Arc::clone(registry));
        }
        if let Some(tracer) = &self.trace {
            simulation = simulation.with_trace(Arc::clone(tracer));
        }
        if let Some(capacity) = self.chunk_capacity {
            simulation = simulation.with_chunk_capacity(capacity);
        }
        let sim = simulation.run();
        let simulate = started.elapsed();
        self.analyze_with_prelude(&sim, Some(simulate))
    }

    /// Runs the analysis on an existing simulation output (lets callers
    /// reuse one expensive simulation for several analyses).
    pub fn analyze(&self, sim: &SimOutput) -> Result<StudyReport, StudyError> {
        self.analyze_with_prelude(sim, None)
    }

    fn analyze_with_prelude(
        &self,
        sim: &SimOutput,
        simulate: Option<Duration>,
    ) -> Result<StudyReport, StudyError> {
        let cfg = &self.config;
        let days = sim.config.days;
        let hours = days * 24;

        let mut timings: Vec<PhaseTiming> = Vec::new();
        if let Some(elapsed) = simulate {
            self.record_phase(&mut timings, "phase.simulate", elapsed);
        }

        // §2: the data set. Borrowed references into `sim.records` —
        // the matching set is not materialized a second time.
        let t = Instant::now();
        let filter = FlowFilter::cwa(sim.cdn.service_prefixes.to_vec());
        let matching = filter.apply(&sim.records);
        self.record_phase(&mut timings, "analysis.filter", t.elapsed());
        if let Some(registry) = &self.metrics {
            registry
                .counter("analysis.filter.records_in")
                .add(sim.records.len() as u64);
            registry
                .counter("analysis.filter.records_matched")
                .add(matching.len() as u64);
        }

        // Figure 2 inputs.
        let t = Instant::now();
        let series = HourlySeries::from_records(matching.iter().copied(), hours);
        self.record_phase(&mut timings, "analysis.timeseries", t.elapsed());
        if let Some(registry) = &self.metrics {
            registry
                .counter("analysis.timeseries.hours")
                .add(u64::from(hours));
        }

        // Side tables in the analysis crate's vocabulary.
        let t = Instant::now();
        let isp_table = analysis_isp_table(&sim.isp_table);
        let pipeline = GeolocationPipeline::new(
            &sim.germany,
            &sim.geodb,
            &isp_table,
            sim.config.plan.prefix_len,
        );

        // Figure 3: 10 days starting at release (June 16–25). One
        // accumulator pass over the already-filtered records serves
        // both the 10-day and the day-1 windows (the day-1 map used to
        // cost a second full scan of all records).
        let mut geo_acc = GeoDayAccumulator::new(&pipeline, days.min(11));
        for rec in matching.iter().copied() {
            geo_acc.observe(rec);
        }
        let geo_10day = geo_acc.result(1, days.min(11));
        let geo_day1 = geo_acc.result(1, 2);
        self.record_phase(&mut timings, "analysis.geoloc", t.elapsed());
        if let Some(registry) = &self.metrics {
            let attributed: u64 = geo_10day.district_flows.iter().sum();
            registry
                .counter("analysis.geoloc.attributed_flows")
                .add(attributed);
        }

        // Persistence.
        let t = Instant::now();
        let mut persistence = PersistenceAnalysis::new(cfg.persistence_prefix_len, days);
        persistence.ingest(matching.iter().copied());
        self.record_phase(&mut timings, "analysis.persistence", t.elapsed());
        if let Some(registry) = &self.metrics {
            registry
                .counter("analysis.persistence.prefixes")
                .add(persistence.prefix_count() as u64);
        }

        // Outbreak analysis over the same already-filtered records —
        // no further full scan.
        let t = Instant::now();
        let mut outbreak_acc = OutbreakAccumulator::new(
            &sim.germany,
            &pipeline,
            isp_resolver(&isp_table, sim.config.plan.prefix_len),
            days,
        );
        for rec in matching.iter().copied() {
            outbreak_acc.observe(rec);
        }
        let outbreak = outbreak_acc.into_analysis();
        self.record_phase(&mut timings, "analysis.outbreak", t.elapsed());

        let products = AnalysisProducts {
            series,
            geo_10day,
            geo_day1,
            persistence,
            outbreak,
            matching_flows: matching.len() as u64,
            total_records: sim.records.len() as u64,
        };
        self.assemble_report(sim, products, timings)
    }

    /// Runs the fused simulate+analyze streaming pipeline.
    ///
    /// The simulation emits each export hour's flow records straight
    /// into a [`FanOut`] driver, which applies the §2 filter once and
    /// feeds every analysis consumer incrementally — the full record
    /// vector is never materialized; only one emission chunk (an export
    /// hour) is resident at a time. The resulting [`StudyReport`] is
    /// bit-identical to [`Study::run`]'s modulo the volatile phase
    /// timings (compare after [`StudyReport::strip_volatile`]).
    pub fn run_streaming(&self) -> Result<StudyReport, StudyError> {
        let cfg = &self.config;
        let days = cfg.sim.days;
        let hours = days * 24;

        let started = Instant::now();
        let mut simulation = Simulation::new(cfg.sim);
        if let Some(registry) = &self.metrics {
            simulation = simulation.with_metrics(Arc::clone(registry));
        }
        if let Some(tracer) = &self.trace {
            simulation = simulation.with_trace(Arc::clone(tracer));
        }
        if let Some(capacity) = self.chunk_capacity {
            simulation = simulation.with_chunk_capacity(capacity);
        }
        let prepared = simulation.prepare();

        let mut timings: Vec<PhaseTiming> = Vec::new();
        let (products, truth) = {
            let filter = FlowFilter::cwa(prepared.cdn.service_prefixes.to_vec());
            let isp_table = analysis_isp_table(&prepared.isp_table);
            let pipeline = GeolocationPipeline::new(
                &prepared.germany,
                &prepared.geodb,
                &isp_table,
                prepared.config.plan.prefix_len,
            );

            let mut series = HourlySeries::new(hours);
            let mut geo_acc = GeoDayAccumulator::new(&pipeline, days.min(11));
            let mut persistence = PersistenceAnalysis::new(cfg.persistence_prefix_len, days);
            let mut outbreak_acc = OutbreakAccumulator::new(
                &prepared.germany,
                &pipeline,
                isp_resolver(&isp_table, prepared.config.plan.prefix_len),
                days,
            );

            let (records_in, records_matched, consumer_counts, truth) = {
                let mut fan = FanOut::new(&filter);
                fan.register("timeseries", &mut series);
                fan.register("geoloc", &mut geo_acc);
                fan.register("persistence", &mut persistence);
                fan.register("outbreak", &mut outbreak_acc);
                if let Some(tracer) = &self.trace {
                    fan.attach_trace(tracer, tracer.thread(0, 200, "analysis"));
                }
                let (truth, _stats) = prepared.run_traffic(&mut fan);
                (
                    fan.records_in(),
                    fan.records_matched(),
                    fan.consumer_counts(),
                    truth,
                )
            };
            self.record_phase(&mut timings, "phase.simulate_analyze", started.elapsed());

            let geo_10day = geo_acc.result(1, days.min(11));
            let geo_day1 = geo_acc.result(1, 2);

            if let Some(registry) = &self.metrics {
                // Streaming-specific counters: one per consumer plus
                // the driver's own in/matched totals.
                registry
                    .counter("analysis.stream.records_in")
                    .add(records_in);
                registry
                    .counter("analysis.stream.records_matched")
                    .add(records_matched);
                for (name, count) in &consumer_counts {
                    registry
                        .counter(&format!("analysis.stream.{name}.records"))
                        .add(*count);
                }
                // Plus the batch pipeline's counters with identical
                // values, so dashboards read the same either way.
                registry
                    .counter("analysis.filter.records_in")
                    .add(records_in);
                registry
                    .counter("analysis.filter.records_matched")
                    .add(records_matched);
                registry
                    .counter("analysis.timeseries.hours")
                    .add(u64::from(hours));
                registry
                    .counter("analysis.geoloc.attributed_flows")
                    .add(geo_10day.district_flows.iter().sum::<u64>());
                registry
                    .counter("analysis.persistence.prefixes")
                    .add(persistence.prefix_count() as u64);
            }

            (
                AnalysisProducts {
                    series,
                    geo_10day,
                    geo_day1,
                    persistence,
                    outbreak: outbreak_acc.into_analysis(),
                    matching_flows: records_matched,
                    total_records: records_in,
                },
                truth,
            )
        };

        // Side data (DNS study, download curve, plan ground truth) for
        // claim evaluation; `records` stays empty by construction.
        let sim = prepared.into_output(Vec::new(), truth);
        self.assemble_report(&sim, products, timings)
    }

    /// Runs the sharded streaming pipeline: the router fleet is split
    /// into `shards` vantage-point shards, each producing, filtering
    /// and analyzing its own record partition on a dedicated worker
    /// (bounded channels provide backpressure), and the partial
    /// accumulators are merged deterministically at the end.
    ///
    /// All shards anonymize under the common study key
    /// ([`ShardKeyMode::Common`]), so the merged report is identical to
    /// [`Study::run_streaming`]'s after
    /// [`strip_volatile`](StudyReport::strip_volatile) — and exactly
    /// identical for `shards == 1`, where the partition is trivial.
    pub fn run_sharded(&self, shards: usize) -> Result<StudyReport, StudyError> {
        self.run_sharded_with(shards, ShardKeyMode::Common)
    }

    /// [`run_sharded`](Study::run_sharded) with an explicit key mode.
    ///
    /// Under [`ShardKeyMode::PerShard`] every shard anonymizes with its
    /// own derived Crypto-PAn key and analyzes against side tables
    /// re-keyed to match (the paper's per-engine anonymization, §2).
    /// Claim values then differ slightly from the common-key run: the
    /// persistence analysis cannot unify a prefix observed by two
    /// differently-keyed shards.
    pub fn run_sharded_with(
        &self,
        shards: usize,
        key_mode: ShardKeyMode,
    ) -> Result<StudyReport, StudyError> {
        let cfg = &self.config;
        let routers = cfg.sim.vantage.routers;
        if shards == 0 || shards > usize::from(routers) {
            return Err(StudyError::InvalidShardCount {
                requested: shards,
                routers,
            });
        }
        let days = cfg.sim.days;
        let hours = days * 24;
        let prefix_len = cfg.sim.plan.prefix_len;

        let started = Instant::now();
        let mut simulation = Simulation::new(cfg.sim);
        if let Some(registry) = &self.metrics {
            simulation = simulation.with_metrics(Arc::clone(registry));
        }
        if let Some(tracer) = &self.trace {
            simulation = simulation.with_trace(Arc::clone(tracer));
        }
        if let Some(capacity) = self.chunk_capacity {
            simulation = simulation.with_chunk_capacity(capacity);
        }
        let prepared = simulation.prepare();

        let mut timings: Vec<PhaseTiming> = Vec::new();
        let (products, truth) = {
            let filter = FlowFilter::cwa(prepared.cdn.service_prefixes.to_vec());
            let common_table = analysis_isp_table(&prepared.isp_table);
            // Per-shard side tables, re-keyed to each shard's own Crypto-PAn
            // key; empty (all shards share the prepared tables) under the
            // common key.
            let keyed_tables: Vec<(GeoDb, HashMap<u32, IspInfo>)> = match key_mode {
                ShardKeyMode::Common => Vec::new(),
                ShardKeyMode::PerShard => shard_keys(&cfg.sim.vantage.anon_key, shards, key_mode)
                    .iter()
                    .map(|key| {
                        let (geodb, table) = prepared.side_tables_for_key(key);
                        (geodb, analysis_isp_table(&table))
                    })
                    .collect(),
            };
            let shard_tables = |i: usize| -> (&GeoDb, &HashMap<u32, IspInfo>) {
                match key_mode {
                    ShardKeyMode::Common => (&prepared.geodb, &common_table),
                    ShardKeyMode::PerShard => (&keyed_tables[i].0, &keyed_tables[i].1),
                }
            };
            let pipelines: Vec<GeolocationPipeline> = (0..shards)
                .map(|i| {
                    let (geodb, table) = shard_tables(i);
                    GeolocationPipeline::new(&prepared.germany, geodb, table, prefix_len)
                })
                .collect();
            let sinks: Vec<ShardConsumers> = (0..shards)
                .map(|i| {
                    let (_, table) = shard_tables(i);
                    ShardConsumers {
                        filter: &filter,
                        series: HourlySeries::new(hours),
                        geo: GeoDayAccumulator::new(&pipelines[i], days.min(11)),
                        persistence: PersistenceAnalysis::new(cfg.persistence_prefix_len, days),
                        outbreak: OutbreakAccumulator::new(
                            &prepared.germany,
                            &pipelines[i],
                            Box::new(isp_resolver(table, prefix_len)),
                            days,
                        ),
                        counts: StreamCounts::zeroed(&CONSUMER_NAMES),
                        records_counter: self
                            .metrics
                            .as_ref()
                            .map(|m| m.counter(&format!("sim.shard.{i:02}.records"))),
                        trace: self.trace.as_ref().map(|t| {
                            let buf = t.thread((i + 1) as u32, 2, "analysis");
                            StageLog::new(t, buf, &CONSUMER_NAMES)
                        }),
                        selection: FlowChunk::default(),
                    }
                })
                .collect();

            let (truth, results) = prepared.run_traffic_sharded(key_mode, sinks);
            self.record_phase(&mut timings, "phase.simulate_analyze", started.elapsed());

            // Deterministic merge: absorb the partials in shard order. Every
            // accumulator merge is an element-wise monoid operation, so the
            // result equals a single pass over the union stream.
            let t = Instant::now();
            let mut parts = results.into_iter().map(|(sink, _stats)| sink);
            let mut merged = parts.next().expect("at least one shard");
            for part in parts {
                merged.series.absorb(&part.series);
                merged.geo.absorb(&part.geo);
                merged.persistence.absorb(&part.persistence);
                merged.outbreak.absorb(&part.outbreak);
                merged.counts.absorb(&part.counts);
            }
            self.record_phase(&mut timings, "phase.merge", t.elapsed());

            let geo_10day = merged.geo.result(1, days.min(11));
            let geo_day1 = merged.geo.result(1, 2);

            if let Some(registry) = &self.metrics {
                // Same counter names and values as the unsharded streaming
                // run, computed from the merged totals.
                registry
                    .counter("analysis.stream.records_in")
                    .add(merged.counts.records_in);
                registry
                    .counter("analysis.stream.records_matched")
                    .add(merged.counts.records_matched);
                for (name, count) in &merged.counts.consumers {
                    registry
                        .counter(&format!("analysis.stream.{name}.records"))
                        .add(*count);
                }
                registry
                    .counter("analysis.filter.records_in")
                    .add(merged.counts.records_in);
                registry
                    .counter("analysis.filter.records_matched")
                    .add(merged.counts.records_matched);
                registry
                    .counter("analysis.timeseries.hours")
                    .add(u64::from(hours));
                registry
                    .counter("analysis.geoloc.attributed_flows")
                    .add(geo_10day.district_flows.iter().sum::<u64>());
                registry
                    .counter("analysis.persistence.prefixes")
                    .add(merged.persistence.prefix_count() as u64);
            }

            (
                AnalysisProducts {
                    series: merged.series,
                    geo_10day,
                    geo_day1,
                    persistence: merged.persistence,
                    outbreak: merged.outbreak.into_analysis(),
                    matching_flows: merged.counts.records_matched,
                    total_records: merged.counts.records_in,
                },
                truth,
            )
        };
        let sim = prepared.into_output(Vec::new(), truth);
        self.assemble_report(&sim, products, timings)
    }

    /// Runs the live windowed pipeline: the same fused simulate+analyze
    /// stream as [`run_streaming`](Study::run_streaming), but consumed
    /// through a [`WindowedView`] that additionally maintains the
    /// sliding last-N-days window with tiered downsampling, optionally
    /// paced against the wall clock ([`LiveOptions::replay_speed`]) and
    /// publishing interim `/report` + `/figures/*` documents into a
    /// [`LiveSnapshot`] mailbox as the replay advances.
    ///
    /// The returned report equals [`Study::run_streaming`]'s after
    /// [`strip_volatile`](StudyReport::strip_volatile) whenever the
    /// horizon fits the study tier (≤ 64 days, the persistence bitmap's
    /// width). Longer horizons — endless mode — cap the study tier at
    /// 64 days while the sliding window keeps advancing with bounded
    /// resident state; a batch run cannot cover such horizons at all.
    ///
    /// With `opts.shards > 1` the view is sharded exactly like
    /// [`run_sharded`](Study::run_sharded) (common anonymization key,
    /// deterministic absorb-merge in shard order). Pacing is a
    /// serial-driver feature — sharded runs replay at full speed — but
    /// both drivers publish interim documents: the sharded one merges
    /// day-boundary shard snapshots off the hot path and publishes the
    /// merged state once per simulated day.
    pub fn run_live(&self, opts: &LiveOptions) -> Result<StudyReport, StudyError> {
        let cfg = &self.config;
        let routers = cfg.sim.vantage.routers;
        let shards = opts.shards;
        if shards == 0 || shards > usize::from(routers) {
            return Err(StudyError::InvalidShardCount {
                requested: shards,
                routers,
            });
        }
        let days = cfg.sim.days;
        let study_days = days.min(64);
        let plan_prefix_len = cfg.sim.plan.prefix_len;

        let started = Instant::now();
        let mut simulation = Simulation::new(cfg.sim);
        if let Some(registry) = &self.metrics {
            simulation = simulation.with_metrics(Arc::clone(registry));
        }
        if let Some(tracer) = &self.trace {
            simulation = simulation.with_trace(Arc::clone(tracer));
        }
        if let Some(capacity) = self.chunk_capacity {
            simulation = simulation.with_chunk_capacity(capacity);
        }
        let prepared = simulation.prepare();

        let mut timings: Vec<PhaseTiming> = Vec::new();
        let (products, truth, final_snapshot) = {
            let filter = FlowFilter::cwa(prepared.cdn.service_prefixes.to_vec());
            let isp_table = analysis_isp_table(&prepared.isp_table);
            let pipeline = GeolocationPipeline::new(
                &prepared.germany,
                &prepared.geodb,
                &isp_table,
                plan_prefix_len,
            );
            // A concrete `Clone` closure (not the opaque `isp_resolver`
            // return): the view clones it into its outbreak study tier.
            let table = &isp_table;
            let resolver = move |client: Ipv4Addr| {
                table
                    .get(&cwa_geo::geodb::mask(client, plan_prefix_len))
                    .map(|e| e.isp)
            };
            let make_sink = |records_counter: Option<Arc<Counter>>| LiveSink {
                filter: &filter,
                view: WindowedView::new(
                    &prepared.germany,
                    &pipeline,
                    resolver,
                    cfg.persistence_prefix_len,
                    study_days,
                    opts.window,
                ),
                counts: StreamCounts::zeroed(&CONSUMER_NAMES),
                records_counter,
                selection: FlowChunk::default(),
                deposits: None,
            };

            let (merged, truth) = if shards == 1 {
                let mut sink = PacedLiveSink {
                    inner: make_sink(None),
                    pace: opts
                        .replay_speed
                        .map(|speed| Duration::from_secs_f64(3600.0 / speed.max(1e-6))),
                    publisher: opts.publish.as_ref().map(|live| LivePublisher {
                        study: self,
                        ctx: ReportContext::from_prepared(&prepared),
                        live: Arc::clone(live),
                    }),
                };
                let (truth, _stats) = prepared.run_traffic(&mut sink);
                (sink.inner, truth)
            } else {
                // Interim publication for the sharded driver: each shard
                // deposits a day-boundary clone of its state into its own
                // queue, and a publisher thread merges aligned fronts and
                // publishes while traffic keeps flowing. The real sinks
                // never see any of this, so the end-of-run merge stays
                // byte-identical to `run_streaming`.
                let publisher = opts.publish.as_ref().map(|live| LivePublisher {
                    study: self,
                    ctx: ReportContext::from_prepared(&prepared),
                    live: Arc::clone(live),
                });
                let queues: Vec<_> = (0..shards)
                    .map(|_| Arc::new(Mutex::new(VecDeque::new())))
                    .collect();
                let sinks: Vec<_> = (0..shards)
                    .map(|i| {
                        let mut sink = make_sink(
                            self.metrics
                                .as_ref()
                                .map(|m| m.counter(&format!("sim.shard.{i:02}.records"))),
                        );
                        if publisher.is_some() {
                            sink.deposits = Some(Arc::clone(&queues[i]));
                        }
                        sink
                    })
                    .collect();
                let stop = AtomicBool::new(false);
                let (truth, results) = std::thread::scope(|scope| {
                    let pump = publisher.as_ref().map(|p| {
                        scope.spawn(|| loop {
                            if !publish_front_deposits(&queues, p) {
                                // Empty after the run ended means fully
                                // drained: every shard deposits the same
                                // number of day-boundary snapshots.
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(2));
                            }
                        })
                    });
                    let out = prepared.run_traffic_sharded(ShardKeyMode::Common, sinks);
                    stop.store(true, Ordering::Release);
                    if let Some(handle) = pump {
                        handle.join().expect("live publisher thread");
                    }
                    out
                });
                let mut parts = results.into_iter().map(|(sink, _stats)| sink);
                let mut merged = parts.next().expect("at least one shard");
                for part in parts {
                    merged.view.absorb(&part.view);
                    merged.counts.absorb(&part.counts);
                }
                (merged, truth)
            };
            self.record_phase(&mut timings, "phase.simulate_analyze", started.elapsed());

            let geo_10day = merged.view.geo.result(1, days.min(11));
            let geo_day1 = merged.view.geo.result(1, 2);
            let snapshot = merged.view.snapshot();

            if let Some(registry) = &self.metrics {
                // Same counter names and values as the streaming run.
                registry
                    .counter("analysis.stream.records_in")
                    .add(merged.counts.records_in);
                registry
                    .counter("analysis.stream.records_matched")
                    .add(merged.counts.records_matched);
                for (name, count) in &merged.counts.consumers {
                    registry
                        .counter(&format!("analysis.stream.{name}.records"))
                        .add(*count);
                }
                registry
                    .counter("analysis.filter.records_in")
                    .add(merged.counts.records_in);
                registry
                    .counter("analysis.filter.records_matched")
                    .add(merged.counts.records_matched);
                registry
                    .counter("analysis.timeseries.hours")
                    .add(u64::from(study_days * 24));
                registry
                    .counter("analysis.geoloc.attributed_flows")
                    .add(geo_10day.district_flows.iter().sum::<u64>());
                registry
                    .counter("analysis.persistence.prefixes")
                    .add(merged.view.persistence.prefix_count() as u64);
            }

            let counts = merged.counts;
            let view = merged.view;
            (
                AnalysisProducts {
                    series: view.series,
                    geo_10day,
                    geo_day1,
                    persistence: view.persistence,
                    outbreak: view.outbreak.into_analysis(),
                    matching_flows: counts.records_matched,
                    total_records: counts.records_in,
                },
                truth,
                snapshot,
            )
        };

        let sim = prepared.into_output(Vec::new(), truth);
        let report = self.assemble_report(&sim, products, timings)?;
        if let Some(live) = &opts.publish {
            // The served end state is exactly the returned report.
            let _span = self.metrics.as_ref().map(|m| m.span("live.publish_ns"));
            let window = evaluate_window_claims(
                &ReportContext::from_output(&sim),
                &final_snapshot.window,
                report.matching_flows,
            );
            crate::live::publish_figures(live, &final_snapshot);
            live.publish_report(crate::live::render_report(
                &report,
                final_snapshot.day,
                final_snapshot.hours_seen,
                days,
                true,
                &window,
            ));
            if let Some(registry) = &self.metrics {
                registry.counter("live.publishes").add(1);
            }
        }
        Ok(report)
    }

    /// Claim evaluation, figures, and manifest assembly — shared
    /// verbatim by the batch and streaming paths so both produce the
    /// exact same report from the same analysis products.
    fn assemble_report(
        &self,
        sim: &SimOutput,
        products: AnalysisProducts,
        timings: Vec<PhaseTiming>,
    ) -> Result<StudyReport, StudyError> {
        self.assemble_report_ctx(&ReportContext::from_output(sim), products, timings, true)
    }

    /// [`assemble_report`](Study::assemble_report) over borrowed side
    /// data, so live mode can evaluate the claim table mid-run from a
    /// [`PreparedSim`]. `finalize` marks the end-of-run call: only that
    /// one enforces `--strict` and flips the `sim.progress.done` gauge
    /// (an interim report must not make `/progress` claim completion).
    fn assemble_report_ctx(
        &self,
        sim: &ReportContext<'_>,
        products: AnalysisProducts,
        mut timings: Vec<PhaseTiming>,
        finalize: bool,
    ) -> Result<StudyReport, StudyError> {
        if finalize && self.strict && products.matching_flows == 0 {
            return Err(StudyError::NoMatchingFlows {
                scale: sim.config.scale,
                total_records: products.total_records,
            });
        }
        let cfg = &self.config;
        let days = sim.config.days;
        let hours = days * 24;
        let scale = sim.config.scale;
        let AnalysisProducts {
            series,
            geo_10day,
            geo_day1,
            persistence,
            outbreak,
            matching_flows,
            total_records,
        } = products;

        // Endless live runs cap the study tier at 64 days (the
        // persistence bitmap's width), so Figure 2 covers at most the
        // tier the series actually holds; for every batch run the series
        // spans the full horizon and this is exactly `hours`.
        let figure_hours = hours.min(series.flows.len() as u32);
        let downloads_hourly: Vec<f64> = (0..figure_hours)
            .map(|h| sim.downloads.downloads_at(h))
            .collect();
        let figure2 = Figure2::assemble(&series, &downloads_hourly, 48);
        let figure3 = Figure3::assemble(sim.germany, &geo_10day);

        // Adoption milestones need the curve through July 24, under the
        // run's own adoption parameters (a scenario overlay may have
        // changed the curve family).
        let t = Instant::now();
        let adoption_long = AdoptionModel::new(sim.config.adoption).run(
            sim.germany,
            sim.scenario,
            Timeline::through_july(),
        );
        self.record_phase(&mut timings, "analysis.adoption", t.elapsed());

        // Per-cell support: how many observations each claim's input
        // cell actually carries. A cell below its threshold (see
        // [`min_support`]) starves the claims reading it — reported as
        // `Verdict::Starved`, never as NaN or a bogus pass/fail.
        let daily = series.daily_flows();
        let day0_flows = daily.first().copied().unwrap_or(0);
        let geo10_flows: u64 = geo_10day.district_flows.iter().sum();
        let geo1_flows: u64 = geo_day1.district_flows.iter().sum();
        let prefix_support = persistence.prefix_count() as u64;
        let national_pre: u64 = (5..8)
            .filter_map(|d| outbreak.state_flows.get(d))
            .map(|states| states.iter().sum::<u64>())
            .sum();
        let guetersloh_idx = sim
            .germany
            .by_name("Gütersloh")
            .map(|d| usize::from(d.id.0));
        let guetersloh_pre: u64 = (5..8)
            .filter_map(|d| outbreak.district_flows.get(d))
            .map(|row| {
                guetersloh_idx
                    .and_then(|i| row.get(i))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        let berlin_pre: u64 = outbreak
            .berlin_isp_flows
            .values()
            .map(|per_day| (1..3).filter_map(|d| per_day.get(d)).sum::<u64>())
            .sum();

        if std::env::var_os("CWA_DEBUG_SUPPORT").is_some() {
            eprintln!(
                "SUPPORT scale={scale} matching={matching_flows} day0={day0_flows} \
                 prefixes={prefix_support} geo10={geo10_flows} geo1={geo1_flows} \
                 national_pre={national_pre} guetersloh_pre={guetersloh_pre} \
                 berlin_pre={berlin_pre}"
            );
        }

        let mut claims = Vec::new();

        // ---- C1: ≈3.3 M matching flows (scale-adjusted). ----
        let flows_fullscale = matching_flows as f64 / scale;
        claims.push(
            Claim::evaluate(
                ClaimId::C1MatchingFlows,
                "≈3.3M matching flows within June 15–25 (§2)",
                Some(3.3e6),
                flows_fullscale,
                (1.5e6, 6.5e6),
                format!("{matching_flows} records at scale {scale}"),
            )
            .with_starvation(
                Cell::Flows,
                matching_flows,
                min_support::FLOWS,
                matching_flows,
            ),
        );

        // ---- C2: 7.5× release-day jump. ----
        let jump = series.release_jump();
        claims.push(
            Claim::evaluate(
                ClaimId::C2ReleaseJump,
                "7.5× increase of flows on June 16 (§3)",
                Some(7.5),
                jump,
                (4.0, 12.0),
                format!("daily flows: {:?}", series.daily_flows()),
            )
            .with_starvation(
                Cell::HourlySeries,
                day0_flows,
                min_support::DAY0_FLOWS,
                matching_flows,
            ),
        );

        // ---- C3: download milestones. ----
        let d36 = adoption_long.downloads_at(MILESTONE_36H_HOUR);
        claims.push(Claim::evaluate(
            ClaimId::C3aDownloads36h,
            "6.4M downloads 36 h after release (§3)",
            Some(6.4e6),
            d36,
            (5.4e6, 7.4e6),
            String::new(),
        ));
        let dj24 = adoption_long.downloads_at(JULY_24_DAY * 24 + 23);
        claims.push(Claim::evaluate(
            ClaimId::C3bDownloadsJuly24,
            "16.2M total downloads by July 24 (§3)",
            Some(16.2e6),
            dj24,
            (15.0e6, 17.5e6),
            String::new(),
        ));

        // ---- C4: prefix persistence quantiles. ----
        let median = persistence.fraction_quantile(0.5);
        let p75 = persistence.fraction_quantile(0.75);
        claims.push(
            Claim::evaluate(
                ClaimId::C4aPersistenceMedian,
                "50% of prefixes occur in 67% of possible days (§3)",
                Some(0.67),
                median,
                (0.45, 0.90),
                format!(
                    "{} prefixes at /{}",
                    persistence.prefix_count(),
                    cfg.persistence_prefix_len
                ),
            )
            .with_starvation(
                Cell::Persistence,
                prefix_support,
                min_support::PREFIXES,
                matching_flows,
            ),
        );
        claims.push(
            Claim::evaluate(
                ClaimId::C4bPersistenceP75,
                "75% of prefixes occur in ≤80% of possible days (§3)",
                Some(0.80),
                p75,
                (0.60, 1.0),
                String::new(),
            )
            .with_starvation(
                Cell::Persistence,
                prefix_support,
                min_support::PREFIXES,
                matching_flows,
            ),
        );

        // ---- C5: district coverage. ----
        let cov10 = geo_10day.coverage(1);
        claims.push(
            Claim::evaluate(
                ClaimId::C5aCoverage10Day,
                "almost all districts emit requests over 10 days (Fig. 3)",
                None,
                cov10,
                (0.95, 1.0),
                String::new(),
            )
            .with_starvation(
                Cell::GeoWindow,
                geo10_flows,
                min_support::GEO_10DAY_FLOWS,
                matching_flows,
            ),
        );
        let cov1 = geo_day1.coverage(1);
        claims.push(
            Claim::evaluate(
                ClaimId::C5bCoverageDay1,
                "the first-day map is almost the same (§3)",
                None,
                cov1 / cov10.max(1e-9),
                (0.85, 1.01),
                format!("day-1 coverage {cov1:.3}, 10-day coverage {cov10:.3}"),
            )
            .with_starvation(
                Cell::GeoWindow,
                geo1_flows,
                min_support::GEO_DAY1_FLOWS,
                matching_flows,
            ),
        );

        // ---- C6: outbreak (non-)effects. ----
        // Windows around June 23: pre = Jun 20–22 (days 5..8),
        // post = Jun 23–25 (days 8..11).
        let (nrw, median_rest, _within) = outbreak.nrw_vs_rest(5..8, 8..11, 1.25);
        claims.push(
            Claim::evaluate(
                ClaimId::C6aNrwVsRest,
                "June-23 increase occurs in all states, not only NRW (§3)",
                None,
                nrw / median_rest,
                (0.80, 1.25),
                format!("NRW growth {nrw:.3}, median other states {median_rest:.3}"),
            )
            .with_starvation(
                Cell::Outbreak,
                national_pre,
                min_support::OUTBREAK_NATIONAL_PRE,
                matching_flows,
            ),
        );

        let national = outbreak.national_growth(5..8, 8..11);
        let guetersloh = sim
            .germany
            .by_name("Gütersloh")
            .map(|d| outbreak.district_growth(d.id, 5..8, 8..11))
            .unwrap_or(f64::NAN);
        claims.push(
            Claim::evaluate(
                ClaimId::C6bGuetersloh,
                "Gütersloh itself increased only very slightly (§3)",
                None,
                guetersloh / national,
                // The substantive bound is the upper one: a *local* effect
                // would push Gütersloh well above the national growth. The
                // district's small per-day counts make the ratio noisy
                // downward at reduced scales.
                (0.5, 1.5),
                format!("Gütersloh growth {guetersloh:.3}, national {national:.3}"),
            )
            .with_starvation(
                Cell::Outbreak,
                guetersloh_pre,
                min_support::OUTBREAK_DISTRICT_PRE,
                matching_flows,
            ),
        );

        // Berlin June 18: pre = Jun 16–17 (days 1..3), post = Jun 18–19
        // (days 3..5). Compare the ground-truth ISP's growth of
        // Berlin-located traffic against the median of the other ISPs.
        let gt_isp = sim
            .plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .map(|i| i.id.0)
            .unwrap_or(u8::MAX);
        let berlin_growth = outbreak.berlin_isp_growth(1..3, 3..5);
        let gt_growth = berlin_growth
            .iter()
            .find(|(isp, _)| *isp == gt_isp)
            .map(|&(_, g)| g)
            .unwrap_or(f64::NAN);
        let mut others: Vec<f64> = berlin_growth
            .iter()
            .filter(|(isp, _)| *isp != gt_isp)
            .map(|&(_, g)| g)
            .filter(|g| g.is_finite())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let other_median = others.get(others.len() / 2).copied().unwrap_or(f64::NAN);
        claims.push(Claim::evaluate(
            ClaimId::C6cBerlinSingleIsp,
            "Berlin June-18 outbreak visible only within a single ISP (§3)",
            None,
            gt_growth / other_median,
            (1.10, 6.0),
            format!(
                "ground-truth ISP growth {gt_growth:.3}, median other ISPs {other_median:.3}, all: {berlin_growth:?}"
            ),
        )
        .with_starvation(
            Cell::Outbreak,
            berlin_pre,
            min_support::OUTBREAK_BERLIN_PRE,
            matching_flows,
        ));

        // ---- C7: DNS / side-data claims. ----
        let api_first = sim.dns.api_top1m_days.first().copied();
        claims.push(Claim::evaluate(
            ClaimId::C7aUmbrellaApi,
            "API name entered the Umbrella top 1M late in the window (Jun 24) (§2)",
            Some(9.0),
            api_first.map(f64::from).unwrap_or(f64::NAN),
            (6.0, 10.0),
            format!("top-1M days: {:?}", sim.dns.api_top1m_days),
        ));
        claims.push(Claim::evaluate(
            ClaimId::C7bUmbrellaWebsite,
            "the website never appeared in the top 1M (§2)",
            Some(0.0),
            sim.dns.website_top1m_days.len() as f64,
            (0.0, 0.0),
            String::new(),
        ));
        claims.push(
            Claim::evaluate(
                ClaimId::C7cGroundTruthShare,
                "18% of geolocations from router ground truth (§3)",
                Some(0.18),
                geo_10day.ground_truth_share(),
                (0.12, 0.25),
                String::new(),
            )
            .with_starvation(
                Cell::GeoWindow,
                geo10_flows,
                min_support::GEO_10DAY_FLOWS,
                matching_flows,
            ),
        );

        // Run manifest: provenance + timings. The hash covers the
        // configuration as actually simulated (callers can analyze a
        // SimOutput produced under a different config than `self`).
        let effective = StudyConfig {
            sim: *sim.config,
            persistence_prefix_len: cfg.persistence_prefix_len,
        };
        let config_json = serde_json::to_string(&effective).expect("config serializes");
        let digest = cwa_crypto::sha256(config_json.as_bytes());
        let config_hash: String = digest[..8].iter().map(|b| format!("{b:02x}")).collect();
        let manifest = RunManifest {
            seed: sim.config.seed,
            scale: sim.config.scale,
            days: sim.config.days,
            parallel: sim.config.parallel,
            config_hash,
            phase_timings: timings,
        };

        // Live telemetry: the run is complete — `/progress` flips to
        // "done" and `/healthz` stops treating flat record counters as
        // a stall. Interim (non-finalizing) assemblies must not flip it.
        if finalize {
            if let Some(registry) = &self.metrics {
                registry.gauge("sim.progress.done").set(1);
            }
        }

        Ok(StudyReport {
            config: *cfg,
            manifest,
            figure2,
            figure3,
            claims,
            matching_flows,
            total_records,
            district_flows: geo_10day.district_flows.clone(),
            persistence_median: median,
            persistence_p75: p75,
            ground_truth_share: geo_10day.ground_truth_share(),
            release_jump: jump,
            api_rank_by_day: sim.dns.api_rank.clone(),
            website_rank_by_day: sim.dns.website_rank.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small run for all study-level assertions (the full
    /// claim-by-claim validation lives in the integration tests).
    #[test]
    fn study_runs_and_reports() {
        let report = Study::new(StudyConfig::test_small())
            .run()
            .expect("small study produces matching flows");
        assert_eq!(report.claims.len(), 14);
        assert!(report.matching_flows > 0);
        assert!(report.total_records > report.matching_flows);
        // The run manifest carries provenance and per-phase timings.
        assert_eq!(report.manifest.seed, report.config.sim.seed);
        assert_eq!(report.manifest.scale, report.config.sim.scale);
        assert_eq!(report.manifest.config_hash.len(), 16);
        let phases: Vec<&str> = report
            .manifest
            .phase_timings
            .iter()
            .map(|p| p.phase.as_str())
            .collect();
        for expected in [
            "phase.simulate",
            "analysis.filter",
            "analysis.timeseries",
            "analysis.geoloc",
            "analysis.persistence",
            "analysis.outbreak",
            "analysis.adoption",
        ] {
            assert!(phases.contains(&expected), "missing phase {expected}");
        }
        assert!(report.strip_volatile().manifest.phase_timings.is_empty());
        // Figure 2 has one point per hour.
        assert_eq!(report.figure2.flows_normed.len(), 264);
        // Figure 3 covers all districts.
        assert_eq!(report.figure3.rows.len(), 401);
        // The text rendering mentions every claim code.
        let text = report.render_text();
        for claim in &report.claims {
            assert!(
                text.contains(claim.id.code()),
                "missing {}",
                claim.id.code()
            );
        }
    }
}
