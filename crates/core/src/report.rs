//! The study report: figures, claims, rendering, JSON export.

use serde::{Deserialize, Serialize};

use cwa_analysis::figures::{Figure2, Figure3};

use crate::claims::{Claim, Verdict};
use crate::study::StudyConfig;

/// Wall time of one named pipeline phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name (e.g. `analysis.filter`).
    pub phase: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

/// Provenance of a study run: what produced this report, and how long
/// each phase took. Everything except `phase_timings` is a pure
/// function of the configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Master seed of the simulation.
    pub seed: u64,
    /// Traffic scale of the run.
    pub scale: f64,
    /// Simulated days.
    pub days: u32,
    /// Whether the parallel vantage driver was used.
    pub parallel: bool,
    /// SHA-256 (hex, first 16 chars) over the canonical JSON of the
    /// full study configuration.
    pub config_hash: String,
    /// Per-phase wall times, in execution order (volatile: differs
    /// between runs; strip with [`StudyReport::strip_volatile`] before
    /// comparing reports).
    pub phase_timings: Vec<PhaseTiming>,
}

/// Everything a study run produces, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// The configuration that produced this report.
    pub config: StudyConfig,
    /// Run provenance: seed, scale, config hash, per-phase timings.
    pub manifest: RunManifest,
    /// Figure 2 reproduction.
    pub figure2: Figure2,
    /// Figure 3 reproduction.
    pub figure3: Figure3,
    /// All evaluated claims.
    pub claims: Vec<Claim>,
    /// §2 matching flows (at the run's scale).
    pub matching_flows: u64,
    /// All collected records (matching + rejected).
    pub total_records: u64,
    /// C4a measured value.
    pub persistence_median: f64,
    /// C4b measured value.
    pub persistence_p75: f64,
    /// C7c measured value.
    pub ground_truth_share: f64,
    /// C2 measured value.
    pub release_jump: f64,
    /// Raw per-district flow counts behind Figure 3 (10-day window),
    /// indexed by `DistrictId`.
    pub district_flows: Vec<u64>,
    /// Daily Umbrella-model rank of the API name.
    pub api_rank_by_day: Vec<u64>,
    /// Daily rank of the website name.
    pub website_rank_by_day: Vec<u64>,
}

impl StudyReport {
    /// True if every claim passed.
    pub fn all_passed(&self) -> bool {
        self.claims.iter().all(|c| c.pass)
    }

    /// A copy with the wall-clock phase timings removed. Everything
    /// left is a pure function of the configuration, so two runs of
    /// the same config — serial or parallel, metrics on or off —
    /// compare equal (asserted by the integration tests).
    pub fn strip_volatile(&self) -> StudyReport {
        let mut report = self.clone();
        report.manifest.phase_timings.clear();
        report
    }

    /// The claims with a genuine out-of-band failure ([`Verdict::Fail`]).
    /// Starved claims are *not* failures — they carry no evidence either
    /// way and are listed by [`starved`](StudyReport::starved) instead.
    pub fn failures(&self) -> Vec<&Claim> {
        self.claims.iter().filter(|c| c.verdict.is_fail()).collect()
    }

    /// The claims whose input cell lacked data ([`Verdict::Starved`]).
    pub fn starved(&self) -> Vec<&Claim> {
        self.claims
            .iter()
            .filter(|c| c.verdict.is_starved())
            .collect()
    }

    /// Renders the paper-vs-measured table plus figure summaries.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== CWA reproduction: paper vs. measured ==\n\n");
        out.push_str(&format!(
            "records: {} total, {} matching the §2 filter (scale {})\n\n",
            self.total_records, self.matching_flows, self.config.sim.scale
        ));
        out.push_str(
            "id    paper                          measured      band             verdict\n",
        );
        out.push_str(
            "----  -----------------------------  ------------  ---------------  -------\n",
        );
        for c in &self.claims {
            let paper = c
                .paper_value
                .map(format_value)
                .unwrap_or_else(|| "(qualitative)".to_owned());
            out.push_str(&format!(
                "{:<5} {:<30} {:<13} [{}, {}]  {}\n",
                c.id.code(),
                paper,
                format_value(c.measured),
                format_value(c.band.0),
                format_value(c.band.1),
                match c.verdict {
                    Verdict::Pass => "ok",
                    Verdict::Fail => "FAIL",
                    Verdict::Starved { .. } => "starved",
                }
            ));
        }
        out.push('\n');
        let starved = self.starved();
        if !starved.is_empty() {
            out.push_str(&format!(
                "{} claim(s) starved at scale {} (insufficient data, not a failure): {}\n\n",
                starved.len(),
                self.config.sim.scale,
                starved
                    .iter()
                    .map(|c| c.id.code())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("Figure 2 (hourly flows normed to min, one char per hour):\n");
        out.push_str(&self.figure2.ascii_flows(self.figure2.flows_normed.len()));
        out.push('\n');
        out.push('\n');
        out.push_str(&format!(
            "Figure 3 (district coverage {:.1}%), top districts:\n",
            self.figure3.coverage * 100.0
        ));
        out.push_str(&self.figure3.top_table(10));
        out
    }

    /// JSON export of the full report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Figure 2 as a standalone SVG document.
    pub fn figure2_svg(&self) -> String {
        cwa_analysis::svg::figure2_svg(&self.figure2, 1000, 360)
    }

    /// Figure 3 as a standalone SVG bubble map.
    pub fn figure3_svg(&self) -> String {
        let germany = cwa_geo::Germany::build();
        let geo = cwa_analysis::geoloc::GeoResult {
            district_flows: self.district_flows.clone(),
            attribution_counts: std::collections::HashMap::new(),
        };
        cwa_analysis::svg::figure3_svg(&germany, &geo, 520, 640)
    }

    /// EXPERIMENTS.md-style markdown rows (one per claim).
    pub fn to_markdown_rows(&self) -> String {
        let mut out = String::new();
        for c in &self.claims {
            let paper = c
                .paper_value
                .map(format_value)
                .unwrap_or_else(|| "qualitative".to_owned());
            out.push_str(&format!(
                "| {} | {} | {} | {} | [{}, {}] | {} |\n",
                c.id.code(),
                c.paper_statement.replace('|', "/"),
                paper,
                format_value(c.measured),
                format_value(c.band.0),
                format_value(c.band.1),
                match c.verdict {
                    Verdict::Pass => "✅",
                    Verdict::Fail => "❌",
                    Verdict::Starved { .. } => "⚠️ starved",
                }
            ));
        }
        out
    }
}

/// Compact human formatting: 3.30M, 7.50, 0.67.
fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "NaN".to_owned();
    }
    if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::{Claim, ClaimId};
    use cwa_analysis::geoloc::GeoResult;
    use cwa_geo::Germany;
    use cwa_simnet::SimConfig;
    use std::collections::HashMap;

    fn dummy_report(pass: bool) -> StudyReport {
        let g = Germany::build();
        let geo = GeoResult {
            district_flows: vec![1; g.len()],
            attribution_counts: HashMap::new(),
        };
        StudyReport {
            config: crate::study::StudyConfig {
                sim: SimConfig::test_small(),
                persistence_prefix_len: 24,
            },
            manifest: RunManifest {
                seed: SimConfig::test_small().seed,
                scale: SimConfig::test_small().scale,
                days: 11,
                parallel: false,
                config_hash: "0123456789abcdef".to_owned(),
                phase_timings: vec![PhaseTiming {
                    phase: "analysis.filter".to_owned(),
                    duration_ns: 12_345,
                }],
            },
            figure2: Figure2 {
                flows_normed: vec![1.0, 2.0],
                bytes_normed: vec![1.0, 2.0],
                downloads_millions: vec![None, Some(1.0)],
            },
            figure3: Figure3::assemble(&g, &geo),
            claims: vec![Claim::evaluate(
                ClaimId::C2ReleaseJump,
                "7.5x jump",
                Some(7.5),
                if pass { 7.0 } else { 1.0 },
                (4.0, 12.0),
                String::new(),
            )],
            matching_flows: 123,
            total_records: 456,
            district_flows: vec![1; g.len()],
            persistence_median: 0.67,
            persistence_p75: 0.8,
            ground_truth_share: 0.18,
            release_jump: 7.0,
            api_rank_by_day: vec![2_000_000, 900_000],
            website_rank_by_day: vec![9_000_000, 8_000_000],
        }
    }

    #[test]
    fn pass_fail_logic() {
        assert!(dummy_report(true).all_passed());
        let failing = dummy_report(false);
        assert!(!failing.all_passed());
        assert_eq!(failing.failures().len(), 1);
        assert!(failing.starved().is_empty());
    }

    #[test]
    fn starved_claims_are_not_failures() {
        use crate::claims::Cell;
        let mut report = dummy_report(true);
        report.claims[0] = report.claims[0]
            .clone()
            .with_starvation(Cell::GeoWindow, 0, 100, 123);
        assert!(report.failures().is_empty(), "starved ≠ failed");
        assert_eq!(report.starved().len(), 1);
        assert!(!report.all_passed(), "but starved is not a pass either");
        let text = report.render_text();
        assert!(text.contains("starved"), "rendering names the verdict");
        let md = report.to_markdown_rows();
        assert!(md.contains("starved"));
    }

    #[test]
    fn text_rendering_contains_key_parts() {
        let text = dummy_report(true).render_text();
        assert!(text.contains("C2"));
        assert!(text.contains("7.50"));
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("ok"));
    }

    #[test]
    fn json_roundtrip() {
        let report = dummy_report(true);
        let json = report.to_json();
        let back: StudyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn strip_volatile_clears_timings_only() {
        let report = dummy_report(true);
        let stripped = report.strip_volatile();
        assert!(stripped.manifest.phase_timings.is_empty());
        assert_eq!(stripped.manifest.config_hash, report.manifest.config_hash);
        assert_eq!(stripped.manifest.seed, report.manifest.seed);
        assert_eq!(stripped.claims, report.claims);
        assert_ne!(stripped, report, "timings were present before stripping");
    }

    #[test]
    fn markdown_rows() {
        let md = dummy_report(false).to_markdown_rows();
        assert!(md.contains("| C2 |"));
        assert!(md.contains("❌"));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(3.3e6), "3.30M");
        assert_eq!(format_value(7.5), "7.50");
        assert_eq!(format_value(1500.0), "1.5k");
        assert_eq!(format_value(f64::NAN), "NaN");
    }
}
