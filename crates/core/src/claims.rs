//! The paper's quantitative claims and their tolerance bands.
//!
//! A poster has no numbered tables; its quantitative statements *are*
//! its tables. Each [`Claim`] records the paper's value, the band we
//! accept for a simulated reproduction (shapes and ratios are expected
//! to transfer; absolute vantage-point-specific constants are not), the
//! measured value, and pass/fail.

use serde::{Deserialize, Serialize};

/// Experiment identifiers (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClaimId {
    /// §2: ≈ 3.3 M matching flows within June 15–25.
    C1MatchingFlows,
    /// §3: 7.5× increase of flows on June 16.
    C2ReleaseJump,
    /// §3: 6.4 M downloads 36 h after release.
    C3aDownloads36h,
    /// §3: 16.2 M total downloads by July 24.
    C3bDownloadsJuly24,
    /// §3: median prefix occurs in 67 % of possible days.
    C4aPersistenceMedian,
    /// §3: p75 prefix occurs in 80 % of possible days.
    C4bPersistenceP75,
    /// §3/Fig. 3: almost all districts emit requests (10-day coverage).
    C5aCoverage10Day,
    /// §3: the first-day map looks almost the same (day-1 coverage).
    C5bCoverageDay1,
    /// §3: NRW's June-23 growth ≈ the other states' growth.
    C6aNrwVsRest,
    /// §3: Gütersloh itself increased "only very slightly".
    C6bGuetersloh,
    /// §3: Berlin June-18 visible in a single ISP only.
    C6cBerlinSingleIsp,
    /// §2: API name entered the Umbrella top 1 M late in the window.
    C7aUmbrellaApi,
    /// §2: the website never appeared in the top 1 M.
    C7bUmbrellaWebsite,
    /// §3: 18 % of geolocations from router ground truth.
    C7cGroundTruthShare,
}

impl ClaimId {
    /// Short id string used in reports ("C1", "C4a", …).
    pub fn code(self) -> &'static str {
        match self {
            ClaimId::C1MatchingFlows => "C1",
            ClaimId::C2ReleaseJump => "C2",
            ClaimId::C3aDownloads36h => "C3a",
            ClaimId::C3bDownloadsJuly24 => "C3b",
            ClaimId::C4aPersistenceMedian => "C4a",
            ClaimId::C4bPersistenceP75 => "C4b",
            ClaimId::C5aCoverage10Day => "C5a",
            ClaimId::C5bCoverageDay1 => "C5b",
            ClaimId::C6aNrwVsRest => "C6a",
            ClaimId::C6bGuetersloh => "C6b",
            ClaimId::C6cBerlinSingleIsp => "C6c",
            ClaimId::C7aUmbrellaApi => "C7a",
            ClaimId::C7bUmbrellaWebsite => "C7b",
            ClaimId::C7cGroundTruthShare => "C7c",
        }
    }
}

/// The analysis input cell a claim draws its measured value from. When
/// a cell carries too little data at a small scale, the claims reading
/// it are marked [`Verdict::Starved`] rather than pass/fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cell {
    /// The §2-filtered matching flow set itself.
    Flows,
    /// The hourly flow time series (Figure 2).
    HourlySeries,
    /// A geolocation window (Figure 3 / coverage / attribution).
    GeoWindow,
    /// The prefix-persistence distribution.
    Persistence,
    /// An outbreak pre/post comparison window.
    Outbreak,
    /// Public side data (download curve, DNS ranks) — never starves.
    SideData,
}

/// Per-claim outcome: in band, out of band, or not evaluable because
/// the claim's input cell lacks data at the simulated scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Measured value is finite and inside the band.
    Pass,
    /// Measured value is finite but outside the band — a genuine
    /// reproduction failure.
    Fail,
    /// The claim's input cell is starved: the value is meaningless
    /// (sparse or NaN), not wrong. Degrades the claim instead of
    /// aborting the whole report.
    Starved {
        /// Which input cell lacked data.
        cell: Cell,
        /// The run's §2 matching-flow count, for context.
        matching_flows: u64,
    },
}

impl Verdict {
    /// True for [`Verdict::Pass`].
    pub fn is_pass(self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// True for [`Verdict::Fail`].
    pub fn is_fail(self) -> bool {
        matches!(self, Verdict::Fail)
    }

    /// True for [`Verdict::Starved`].
    pub fn is_starved(self) -> bool {
        matches!(self, Verdict::Starved { .. })
    }

    /// Short lowercase label for tables: "pass" / "fail" / "starved".
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Starved { .. } => "starved",
        }
    }
}

/// One evaluated claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// Which claim.
    pub id: ClaimId,
    /// What the paper states (human-readable).
    pub paper_statement: String,
    /// The paper's numeric value, where it has one.
    pub paper_value: Option<f64>,
    /// The measured value from the reproduction.
    pub measured: f64,
    /// The acceptance band `[lo, hi]` (inclusive).
    pub band: (f64, f64),
    /// Whether the measured value falls in the band (false for both
    /// fail and starved; kept alongside `verdict` for compatibility).
    pub pass: bool,
    /// The three-way outcome (pass / fail / starved).
    pub verdict: Verdict,
    /// Extra context (e.g. per-state numbers).
    pub detail: String,
}

impl Claim {
    /// Evaluates a measured value against a band.
    pub fn evaluate(
        id: ClaimId,
        paper_statement: &str,
        paper_value: Option<f64>,
        measured: f64,
        band: (f64, f64),
        detail: String,
    ) -> Self {
        let pass = measured.is_finite() && measured >= band.0 && measured <= band.1;
        Claim {
            id,
            paper_statement: paper_statement.to_owned(),
            paper_value,
            measured,
            band,
            pass,
            verdict: if pass { Verdict::Pass } else { Verdict::Fail },
            detail,
        }
    }

    /// Downgrades this claim to [`Verdict::Starved`] when its input
    /// cell carries less data than `min_support` observations — or when
    /// the measured value is not finite (a NaN from an empty window is
    /// starvation by definition, never a reproduction failure).
    pub fn with_starvation(
        mut self,
        cell: Cell,
        support: u64,
        min_support: u64,
        matching_flows: u64,
    ) -> Self {
        if support < min_support || !self.measured.is_finite() {
            self.pass = false;
            self.verdict = Verdict::Starved {
                cell,
                matching_flows,
            };
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_in_band() {
        let c = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "7.5x",
            Some(7.5),
            6.9,
            (4.0, 12.0),
            String::new(),
        );
        assert!(c.pass);
    }

    #[test]
    fn evaluate_out_of_band() {
        let c = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "7.5x",
            Some(7.5),
            2.0,
            (4.0, 12.0),
            String::new(),
        );
        assert!(!c.pass);
    }

    #[test]
    fn nan_never_passes() {
        let c = Claim::evaluate(
            ClaimId::C1MatchingFlows,
            "3.3M",
            Some(3.3e6),
            f64::NAN,
            (0.0, f64::INFINITY),
            String::new(),
        );
        assert!(!c.pass);
    }

    #[test]
    fn band_is_inclusive() {
        let c = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            4.0,
            (4.0, 12.0),
            String::new(),
        );
        assert!(c.pass);
        let c = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            12.0,
            (4.0, 12.0),
            String::new(),
        );
        assert!(c.pass);
    }

    #[test]
    fn verdict_tracks_pass_flag() {
        let ok = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            6.0,
            (4.0, 12.0),
            String::new(),
        );
        assert_eq!(ok.verdict, Verdict::Pass);
        assert!(ok.verdict.is_pass() && ok.pass);
        let bad = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            1.0,
            (4.0, 12.0),
            String::new(),
        );
        assert_eq!(bad.verdict, Verdict::Fail);
        assert!(bad.verdict.is_fail() && !bad.pass);
    }

    #[test]
    fn starvation_downgrades_low_support() {
        let c = Claim::evaluate(
            ClaimId::C5bCoverageDay1,
            "",
            None,
            0.99,
            (0.85, 1.01),
            String::new(),
        )
        .with_starvation(Cell::GeoWindow, 3, 100, 7);
        assert!(!c.pass, "an in-band value from starved data is not a pass");
        assert_eq!(
            c.verdict,
            Verdict::Starved {
                cell: Cell::GeoWindow,
                matching_flows: 7
            }
        );
        assert_eq!(c.verdict.label(), "starved");
    }

    #[test]
    fn starvation_catches_nan_even_with_support() {
        let c = Claim::evaluate(
            ClaimId::C6aNrwVsRest,
            "",
            None,
            f64::NAN,
            (0.8, 1.25),
            String::new(),
        )
        .with_starvation(Cell::Outbreak, 10_000, 100, 9);
        assert!(c.verdict.is_starved(), "NaN is starvation, not failure");
    }

    #[test]
    fn starvation_leaves_supported_claims_alone() {
        let ok = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            6.0,
            (4.0, 12.0),
            String::new(),
        )
        .with_starvation(Cell::HourlySeries, 500, 100, 42);
        assert_eq!(ok.verdict, Verdict::Pass);
        let bad = Claim::evaluate(
            ClaimId::C2ReleaseJump,
            "",
            None,
            1.0,
            (4.0, 12.0),
            String::new(),
        )
        .with_starvation(Cell::HourlySeries, 500, 100, 42);
        assert_eq!(
            bad.verdict,
            Verdict::Fail,
            "out-of-band with good support stays a failure"
        );
    }

    #[test]
    fn codes_unique() {
        let all = [
            ClaimId::C1MatchingFlows,
            ClaimId::C2ReleaseJump,
            ClaimId::C3aDownloads36h,
            ClaimId::C3bDownloadsJuly24,
            ClaimId::C4aPersistenceMedian,
            ClaimId::C4bPersistenceP75,
            ClaimId::C5aCoverage10Day,
            ClaimId::C5bCoverageDay1,
            ClaimId::C6aNrwVsRest,
            ClaimId::C6bGuetersloh,
            ClaimId::C6cBerlinSingleIsp,
            ClaimId::C7aUmbrellaApi,
            ClaimId::C7bUmbrellaWebsite,
            ClaimId::C7cGroundTruthShare,
        ];
        let codes: std::collections::HashSet<_> = all.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), all.len());
    }
}
