//! The scenario sweep: run a [`ScenarioMatrix`] and tabulate which
//! claims survive each perturbation.
//!
//! The product is the *claim-survival table*: one row per scenario, one
//! cell per claim, each cell `pass` / `fail` / `starved`. Starvation is
//! data here, not an error — a scenario that drains a cell (tiny scale,
//! coarse sampling, a CDN migration the §2 filter misses) shows up as a
//! `starved` column, never as an aborted sweep.
//!
//! Every scenario runs over the existing sharded workers; the table is
//! derived only from [`StudyReport`] fields that are bit-identical
//! across shard counts, so the same matrix + seed produces a
//! byte-identical table serial or sharded (asserted by tests).

use std::fmt;

use serde::{Deserialize, Serialize};

use cwa_geo::Germany;

use crate::scenario::{ScenarioError, ScenarioMatrix};
use crate::study::{Study, StudyConfig, StudyError};
use crate::StudyReport;

/// A structured sweep failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The scenario file was invalid or a district did not resolve.
    Scenario(ScenarioError),
    /// One scenario's study run failed (misconfiguration — starvation
    /// never errors in a sweep).
    Study {
        /// The failing scenario's name.
        scenario: String,
        /// The underlying error.
        err: StudyError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Scenario(e) => write!(f, "{e}"),
            SweepError::Study { scenario, err } => {
                write!(f, "scenario '{scenario}': {err}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ScenarioError> for SweepError {
    fn from(e: ScenarioError) -> Self {
        SweepError::Scenario(e)
    }
}

/// One claim's outcome in one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurvivalCell {
    /// Claim code ("C1", "C4a", …).
    pub claim: String,
    /// "pass" / "fail" / "starved".
    pub verdict: String,
    /// The measured value, formatted (stable across shard counts; "NaN"
    /// when the starved pipeline produced no number at all).
    pub measured: String,
}

/// One scenario's row in the survival table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurvivalRow {
    /// Scenario name (file order is preserved).
    pub scenario: String,
    /// Config hash of the *effective* configuration the row ran under.
    pub config_hash: String,
    /// §2 matching flows of the run.
    pub matching_flows: u64,
    /// Per-claim outcomes, in claim-table order.
    pub cells: Vec<SurvivalCell>,
}

/// The claim-survival table: scenario × claim → verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurvivalTable {
    /// One row per scenario, in file order.
    pub rows: Vec<SurvivalRow>,
}

impl SurvivalTable {
    /// JSON export (deterministic: derived only from shard-invariant
    /// report fields).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }

    /// Renders the scenario × claim grid as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let codes: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.cells.iter().map(|c| c.claim.as_str()).collect())
            .unwrap_or_default();
        let name_w = self
            .rows
            .iter()
            .map(|r| r.scenario.chars().count())
            .chain(std::iter::once("scenario".len()))
            .max()
            .unwrap_or(8);
        out.push_str("== claim survival: scenario × claim ==\n\n");
        out.push_str(&format!("{:<name_w$}", "scenario"));
        for code in &codes {
            out.push_str(&format!("  {code:<7}"));
        }
        out.push_str("  matching_flows\n");
        for row in &self.rows {
            out.push_str(&format!("{:<name_w$}", row.scenario));
            for cell in &row.cells {
                out.push_str(&format!("  {:<7}", cell.verdict));
            }
            out.push_str(&format!("  {}\n", row.matching_flows));
        }
        let starved: usize = self
            .rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|c| c.verdict == "starved")
            .count();
        let failed: usize = self
            .rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|c| c.verdict == "fail")
            .count();
        out.push_str(&format!(
            "\n{} row(s), {} starved cell(s), {} failed cell(s)\n",
            self.rows.len(),
            starved,
            failed
        ));
        out
    }
}

/// Deterministic measured-value formatting for table cells.
fn format_measured(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4e}")
    } else {
        "NaN".to_owned()
    }
}

fn row_from(name: &str, report: &StudyReport) -> SurvivalRow {
    SurvivalRow {
        scenario: name.to_owned(),
        config_hash: report.manifest.config_hash.clone(),
        matching_flows: report.matching_flows,
        cells: report
            .claims
            .iter()
            .map(|c| SurvivalCell {
                claim: c.id.code().to_owned(),
                verdict: c.verdict.label().to_owned(),
                measured: format_measured(c.measured),
            })
            .collect(),
    }
}

/// Runs every scenario in the matrix over the sharded workers and
/// returns the survival table.
///
/// `shards` is a *request*: each row clamps it to its own
/// scenario-effective router count (a fleet-shrinking scenario must not
/// trip `InvalidShardCount` mid-sweep), and a request of 0 or 1 runs the
/// streaming single-pass path. Either way the resulting table is
/// byte-identical — it is derived only from shard-invariant report
/// fields.
pub fn run_sweep(
    matrix: &ScenarioMatrix,
    base: &StudyConfig,
    shards: usize,
) -> Result<SurvivalTable, SweepError> {
    let germany = Germany::build();
    let mut rows = Vec::with_capacity(matrix.scenarios.len());
    for spec in &matrix.scenarios {
        let cfg = spec.apply(base, &germany)?;
        let effective = shards.clamp(1, usize::from(cfg.sim.vantage.routers).max(1));
        let study = Study::new(cfg);
        let report = if effective > 1 {
            study.run_sharded(effective)
        } else {
            study.run_streaming()
        }
        .map_err(|err| SweepError::Study {
            scenario: spec.name.clone(),
            err,
        })?;
        rows.push(row_from(&spec.name, &report));
    }
    Ok(SurvivalTable { rows })
}

/// One claim's verdict tally across the seeds of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedFractionCell {
    /// Claim code ("C1", "C4a", …).
    pub claim: String,
    /// Seeds whose run passed the claim.
    pub passes: u32,
    /// Seeds whose run failed the claim (genuinely out of band).
    pub fails: u32,
    /// Seeds whose run starved the claim's input cell.
    pub starved: u32,
}

impl SeedFractionCell {
    /// Compact grid label: `passes/evaluated`, where starved runs don't
    /// count as evaluated; `—` when every seed starved the cell.
    pub fn label(&self) -> String {
        let evaluated = self.passes + self.fails;
        if evaluated == 0 {
            "—".to_owned()
        } else {
            format!("{}/{}", self.passes, evaluated)
        }
    }
}

/// One scenario's verdict tallies across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedFractionRow {
    /// Scenario name (file order is preserved).
    pub scenario: String,
    /// Seeds run for this row.
    pub seeds: u32,
    /// Per-claim tallies, in claim-table order.
    pub cells: Vec<SeedFractionCell>,
}

/// The seed-robustness table: scenario × claim → pass fraction over N
/// seeds. Where [`SurvivalTable`] answers "does the claim survive this
/// perturbation at all", this answers "how often", separating flaky
/// borderline cells from solid ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedFractionTable {
    /// One row per scenario, in file order.
    pub rows: Vec<SeedFractionRow>,
}

impl SeedFractionTable {
    /// JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }

    /// Renders the scenario × claim pass-fraction grid as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let codes: Vec<&str> = self
            .rows
            .first()
            .map(|r| r.cells.iter().map(|c| c.claim.as_str()).collect())
            .unwrap_or_default();
        let name_w = self
            .rows
            .iter()
            .map(|r| r.scenario.chars().count())
            .chain(std::iter::once("scenario".len()))
            .max()
            .unwrap_or(8);
        let seeds = self.rows.first().map(|r| r.seeds).unwrap_or(0);
        out.push_str(&format!(
            "== claim robustness: pass fraction over {seeds} seed(s) ==\n\
             (cells are passes/evaluated; starved runs are not evaluated, — = all starved)\n\n"
        ));
        out.push_str(&format!("{:<name_w$}", "scenario"));
        for code in &codes {
            out.push_str(&format!("  {code:<7}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<name_w$}", row.scenario));
            for cell in &row.cells {
                out.push_str(&format!("  {:<7}", cell.label()));
            }
            out.push('\n');
        }
        let flaky: usize = self
            .rows
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|c| c.passes > 0 && c.fails > 0)
            .count();
        out.push_str(&format!(
            "\n{} row(s), {} flaky cell(s) (mixed pass/fail across seeds)\n",
            self.rows.len(),
            flaky
        ));
        out
    }
}

/// Runs every scenario under `seeds` seeds (the scenario-effective seed,
/// then successive increments) and tallies per-claim verdicts into pass
/// fractions. The `shards` request is clamped per scenario exactly like
/// [`run_sweep`]; the table is shard-invariant for the same reason.
pub fn run_seed_sweep(
    matrix: &ScenarioMatrix,
    base: &StudyConfig,
    shards: usize,
    seeds: u32,
) -> Result<SeedFractionTable, SweepError> {
    assert!(seeds >= 1, "a seed sweep needs at least one seed");
    let germany = Germany::build();
    let mut rows = Vec::with_capacity(matrix.scenarios.len());
    for spec in &matrix.scenarios {
        let cfg0 = spec.apply(base, &germany)?;
        let effective = shards.clamp(1, usize::from(cfg0.sim.vantage.routers).max(1));
        let mut cells: Vec<SeedFractionCell> = Vec::new();
        for i in 0..seeds {
            let mut cfg = cfg0;
            cfg.sim.seed = cfg0.sim.seed.wrapping_add(u64::from(i));
            let study = Study::new(cfg);
            let report = if effective > 1 {
                study.run_sharded(effective)
            } else {
                study.run_streaming()
            }
            .map_err(|err| SweepError::Study {
                scenario: spec.name.clone(),
                err,
            })?;
            if cells.is_empty() {
                cells = report
                    .claims
                    .iter()
                    .map(|c| SeedFractionCell {
                        claim: c.id.code().to_owned(),
                        passes: 0,
                        fails: 0,
                        starved: 0,
                    })
                    .collect();
            }
            // The claim table is fixed; every seed reports the same
            // claims in the same order.
            assert_eq!(cells.len(), report.claims.len());
            for (cell, claim) in cells.iter_mut().zip(&report.claims) {
                assert_eq!(cell.claim, claim.id.code());
                if claim.verdict.is_pass() {
                    cell.passes += 1;
                } else if claim.verdict.is_fail() {
                    cell.fails += 1;
                } else {
                    cell.starved += 1;
                }
            }
        }
        rows.push(SeedFractionRow {
            scenario: spec.name.clone(),
            seeds,
            cells,
        });
    }
    Ok(SeedFractionTable { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SurvivalTable {
        SurvivalTable {
            rows: vec![SurvivalRow {
                scenario: "baseline".to_owned(),
                config_hash: "abcd".to_owned(),
                matching_flows: 42,
                cells: vec![
                    SurvivalCell {
                        claim: "C1".to_owned(),
                        verdict: "pass".to_owned(),
                        measured: "3.3000e6".to_owned(),
                    },
                    SurvivalCell {
                        claim: "C5b".to_owned(),
                        verdict: "starved".to_owned(),
                        measured: "NaN".to_owned(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn text_grid_contains_verdicts() {
        let text = table().render_text();
        assert!(text.contains("scenario"));
        assert!(text.contains("C1"));
        assert!(text.contains("C5b"));
        assert!(text.contains("pass"));
        assert!(text.contains("starved"));
        assert!(text.contains("1 starved cell(s)"));
    }

    #[test]
    fn json_roundtrip() {
        let t = table();
        let back: SurvivalTable = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn measured_formatting_is_deterministic() {
        assert_eq!(format_measured(3.3e6), "3.3000e6");
        assert_eq!(format_measured(f64::NAN), "NaN");
        assert_eq!(format_measured(f64::INFINITY), "NaN");
    }

    fn fraction_table() -> SeedFractionTable {
        SeedFractionTable {
            rows: vec![SeedFractionRow {
                scenario: "baseline".to_owned(),
                seeds: 5,
                cells: vec![
                    SeedFractionCell {
                        claim: "C1".to_owned(),
                        passes: 5,
                        fails: 0,
                        starved: 0,
                    },
                    SeedFractionCell {
                        claim: "C2".to_owned(),
                        passes: 3,
                        fails: 1,
                        starved: 1,
                    },
                    SeedFractionCell {
                        claim: "C5b".to_owned(),
                        passes: 0,
                        fails: 0,
                        starved: 5,
                    },
                ],
            }],
        }
    }

    #[test]
    fn fraction_labels_separate_starved_from_evaluated() {
        let t = fraction_table();
        let labels: Vec<String> = t.rows[0]
            .cells
            .iter()
            .map(SeedFractionCell::label)
            .collect();
        assert_eq!(labels, ["5/5", "3/4", "—"]);
        let text = t.render_text();
        assert!(text.contains("5 seed(s)"));
        assert!(text.contains("3/4"));
        assert!(text.contains("1 flaky cell(s)"), "{text}");
    }

    #[test]
    fn fraction_json_roundtrip() {
        let t = fraction_table();
        let back: SeedFractionTable = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
