//! # cwa-core — the reproduction's public API
//!
//! One entry point, [`Study`], runs the complete reproduction of
//! *"Corona-Warn-App: Tracing the Start of the Official COVID-19
//! Exposure Notification App for Germany"* (SIGCOMM '20 Posters):
//!
//! 1. simulate the world (epidemic, adoption, traffic, NetFlow capture)
//!    via `cwa-simnet`,
//! 2. run the paper's analysis pipeline (`cwa-analysis`) **on the
//!    anonymized sampled records only**, and
//! 3. evaluate every figure and quantitative claim of the paper against
//!    tolerance bands, producing a [`report::StudyReport`].
//!
//! ```no_run
//! use cwa_core::{Study, StudyConfig};
//!
//! let report = Study::new(StudyConfig::default()).run().unwrap();
//! println!("{}", report.render_text());
//! assert!(report.all_passed());
//! ```
//!
//! The experiment ids (F2, F3, C1–C7) match DESIGN.md and
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod live;
pub mod report;
pub mod scenario;
pub mod study;
pub mod sweep;

pub use claims::{Cell, Claim, ClaimId, Verdict};
pub use live::LiveOptions;
pub use report::StudyReport;
pub use scenario::{ScenarioError, ScenarioMatrix, ScenarioSpec};
pub use study::{Study, StudyConfig, StudyError};
pub use sweep::{
    run_seed_sweep, run_sweep, SeedFractionCell, SeedFractionRow, SeedFractionTable, SurvivalCell,
    SurvivalRow, SurvivalTable, SweepError,
};
