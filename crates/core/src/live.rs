//! Live-mode publication: options for
//! [`Study::run_live`](crate::Study::run_live) and the JSON documents a
//! live run publishes into the scrape server's [`LiveSnapshot`] mailbox.
//!
//! The documents are pre-rendered strings (`cwa-obs` sits below this
//! crate, so the server cannot serialize them itself) with stable
//! schema tags:
//!
//! * `/report` — a [`LIVE_REPORT_SCHEMA`] envelope wrapping the full
//!   interim [`StudyReport`] plus the stream position (`day`,
//!   `hours_seen`) and a `done` flag,
//! * `/figures/adoption`, `/figures/geo`, `/figures/outbreak` —
//!   [`LIVE_FIGURE_SCHEMA`] documents carrying the matching slice of
//!   the current [`WindowedSnapshot`].

use std::sync::Arc;

use serde::Serialize;

use cwa_analysis::windowed::{DaySummary, WindowConfig, WindowedSnapshot};
use cwa_obs::{LiveFigure, LiveSnapshot};

use crate::claims::Claim;
use crate::report::StudyReport;

/// Options for [`Study::run_live`](crate::Study::run_live).
#[derive(Clone)]
pub struct LiveOptions {
    /// Vantage shards (1 = the serial driver). Pacing is a
    /// serial-driver feature; sharded live runs replay at full speed
    /// but still publish merged interim documents once per simulated
    /// day (from day-boundary shard snapshots merged off the hot path).
    pub shards: usize,
    /// Simulated-time multiple of the wall clock: `N` replays one
    /// export hour every `3600 / N` wall seconds. `None` replays as
    /// fast as possible.
    pub replay_speed: Option<f64>,
    /// Mailbox the rendered documents are published into (share it with
    /// the scrape server's `TelemetryState::live`). `None` disables
    /// publication.
    pub publish: Option<Arc<LiveSnapshot>>,
    /// Sliding-window retention for the live view.
    pub window: WindowConfig,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            shards: 1,
            replay_speed: None,
            publish: None,
            window: WindowConfig::default(),
        }
    }
}

/// Schema tag of the `/report` envelope.
pub const LIVE_REPORT_SCHEMA: &str = "cwa-live/v1";
/// Schema tag of the `/figures/*` documents.
pub const LIVE_FIGURE_SCHEMA: &str = "cwa-live-figure/v1";

// The vendored serde derive does not support generic (or
// lifetime-parameterized) types, so every document struct below owns
// its data — publication cadence is per export hour at most, so the
// clones are cheap next to the snapshot itself.

#[derive(Serialize)]
struct ReportEnvelope {
    schema: &'static str,
    day: u64,
    hours_seen: u64,
    horizon_days: u32,
    done: bool,
    window_from_day: u64,
    window_to_day: u64,
    window_verdicts: Vec<Claim>,
    report: StudyReport,
}

/// The sliding-window slice a set of window verdicts was evaluated
/// over, plus the verdicts themselves. Claims whose inputs cannot be
/// re-derived from a window (public side data, lifetime persistence)
/// are simply absent from `verdicts`.
#[derive(Debug, Clone, Default)]
pub struct WindowVerdicts {
    /// First day (inclusive) of the evaluated window.
    pub from_day: u64,
    /// One past the last day of the evaluated window.
    pub to_day: u64,
    /// The window-evaluable claims, re-judged over the window only.
    pub verdicts: Vec<Claim>,
}

/// Renders the `/report` envelope around an interim (or final) report.
pub fn render_report(
    report: &StudyReport,
    day: u64,
    hours_seen: u64,
    horizon_days: u32,
    done: bool,
    window: &WindowVerdicts,
) -> String {
    serde_json::to_string_pretty(&ReportEnvelope {
        schema: LIVE_REPORT_SCHEMA,
        day,
        hours_seen,
        horizon_days,
        done,
        window_from_day: window.from_day,
        window_to_day: window.to_day,
        window_verdicts: window.verdicts.clone(),
        report: report.clone(),
    })
    .expect("report envelope serializes")
}

#[derive(Serialize)]
struct FigureDoc {
    schema: &'static str,
    figure: &'static str,
    day: u64,
    hours_seen: u64,
    window_from_day: u64,
    window_to_day: u64,
    data: serde_json::Value,
}

fn doc(figure: &'static str, snap: &WindowedSnapshot, data: serde_json::Value) -> String {
    serde_json::to_string_pretty(&FigureDoc {
        schema: LIVE_FIGURE_SCHEMA,
        figure,
        day: snap.day,
        hours_seen: snap.hours_seen,
        window_from_day: snap.window.from_day,
        window_to_day: snap.window.to_day,
        data,
    })
    .expect("figure document serializes")
}

/// Figure-2 slice: the hourly series across the sliding window plus the
/// retained cumulative per-day series.
#[derive(Serialize)]
struct AdoptionData {
    hourly_flows: Vec<u64>,
    hourly_bytes: Vec<u64>,
    daily: Vec<DaySummary>,
    total_flows: u64,
    total_bytes: u64,
    days_collapsed: u64,
}

/// Figure-3 slice: district intensities and attribution split, both for
/// the window and the lifetime.
#[derive(Serialize)]
struct GeoData {
    window_district_flows: Vec<u64>,
    window_attributions: [u64; 3],
    cumulative_district_flows: Vec<u64>,
    cumulative_attributions: [u64; 3],
    distinct_prefixes: u64,
}

/// §3 outbreak slice: per-day state tables and the Berlin per-ISP split
/// across the window.
#[derive(Serialize)]
struct OutbreakData {
    state_daily: Vec<[u64; 16]>,
    berlin_isp_daily: Vec<(u8, Vec<u64>)>,
    cumulative_state_flows: [u64; 16],
}

/// Renders one figure document from a live snapshot.
pub fn render_figure(figure: LiveFigure, snap: &WindowedSnapshot) -> String {
    match figure {
        LiveFigure::Adoption => doc(
            "adoption",
            snap,
            serde_json::to_value(&AdoptionData {
                hourly_flows: snap.window.hourly_flows.clone(),
                hourly_bytes: snap.window.hourly_bytes.clone(),
                daily: snap.cumulative.daily.clone(),
                total_flows: snap.cumulative.flows,
                total_bytes: snap.cumulative.bytes,
                days_collapsed: snap.cumulative.days_collapsed,
            }),
        ),
        LiveFigure::Geo => doc(
            "geo",
            snap,
            serde_json::to_value(&GeoData {
                window_district_flows: snap.window.district_flows.clone(),
                window_attributions: snap.window.attributions,
                cumulative_district_flows: snap.cumulative.district_flows.clone(),
                cumulative_attributions: snap.cumulative.attributions,
                distinct_prefixes: snap.window.distinct_prefixes,
            }),
        ),
        LiveFigure::Outbreak => doc(
            "outbreak",
            snap,
            serde_json::to_value(&OutbreakData {
                state_daily: snap.window.state_daily.clone(),
                berlin_isp_daily: snap.window.berlin_isp_daily.clone(),
                cumulative_state_flows: snap.cumulative.state_flows,
            }),
        ),
    }
}

/// Renders and publishes all three figure documents.
pub fn publish_figures(live: &Arc<LiveSnapshot>, snap: &WindowedSnapshot) {
    for figure in LiveFigure::ALL {
        live.publish_figure(figure, render_figure(figure, snap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_analysis::windowed::{CumulativeSnapshot, WindowSnapshot};

    fn snapshot() -> WindowedSnapshot {
        WindowedSnapshot {
            hours_seen: 49,
            day: 2,
            cumulative: CumulativeSnapshot {
                flows: 10,
                bytes: 4_000,
                attributions: [2, 7, 1],
                district_flows: vec![3, 0, 6],
                state_flows: [0; 16],
                daily: vec![DaySummary {
                    day: 0,
                    flows: 4,
                    bytes: 1_600,
                    located: 4,
                }],
                days_collapsed: 0,
            },
            window: WindowSnapshot {
                from_day: 0,
                to_day: 3,
                hourly_flows: vec![1; 72],
                hourly_bytes: vec![400; 72],
                district_flows: vec![3, 0, 6],
                attributions: [2, 7, 1],
                state_daily: vec![[0; 16]; 3],
                berlin_isp_daily: vec![(1, vec![0, 2, 1])],
                distinct_prefixes: 5,
            },
        }
    }

    fn num(v: Option<&serde_json::Value>) -> Option<u64> {
        match v {
            Some(serde_json::Value::Num(n)) => n.as_u64(),
            _ => None,
        }
    }

    #[test]
    fn figure_documents_parse_and_carry_position() {
        let snap = snapshot();
        for figure in LiveFigure::ALL {
            let body = render_figure(figure, &snap);
            let value: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
            assert_eq!(
                value.get("schema").and_then(|v| v.as_str()),
                Some(LIVE_FIGURE_SCHEMA)
            );
            assert_eq!(num(value.get("day")), Some(2));
            assert_eq!(num(value.get("hours_seen")), Some(49));
            assert_eq!(num(value.get("window_from_day")), Some(0));
            assert!(
                value.get("data").and_then(|v| v.as_object()).is_some(),
                "{figure:?}: {body}"
            );
        }
        let adoption: serde_json::Value =
            serde_json::from_str(&render_figure(LiveFigure::Adoption, &snap)).unwrap();
        let data = adoption.get("data").expect("data object");
        assert_eq!(
            data.get("hourly_flows")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(72)
        );
        assert_eq!(num(data.get("total_flows")), Some(10));
    }

    #[test]
    fn publish_figures_fills_every_slot() {
        let live = Arc::new(LiveSnapshot::new());
        publish_figures(&live, &snapshot());
        for figure in LiveFigure::ALL {
            let body = live.figure(figure).expect("published");
            assert!(body.contains(LIVE_FIGURE_SCHEMA));
        }
    }
}
