//! Config-driven scenario overlays and the TOML-subset matrix format.
//!
//! A *scenario* is a named set of overrides applied on top of a base
//! [`StudyConfig`]: adoption-curve family and parameters, per-router
//! sampling rate, extra/removed outbreaks, a CDN prefix migration,
//! cache timeouts and the DSL reconnect policy, traffic mix, and scale.
//! A *matrix* is a list of scenarios parsed from a TOML file; the
//! `sweep` subcommand runs each one and tabulates which claims survive
//! (see [`crate::sweep`]).
//!
//! The repository vendors no TOML crate, so this module ships a small
//! hand-written parser for the subset the matrix format needs:
//! `[[scenario]]` array-of-tables headers, `[scenario.sub]` sub-table
//! headers, dotted keys, strings, integers (incl. `0x…` and `_`
//! separators), floats, booleans, single-line string arrays, and `#`
//! comments. Unknown keys are hard errors — a typo must not silently
//! run the baseline.

use std::collections::BTreeMap;
use std::fmt;

use cwa_epidemic::AdoptionFamily;
use cwa_geo::Germany;
use cwa_simnet::{CdnMigration, ExtraOutbreak, ScenarioKind};

use crate::study::{persistence_len_for_scale, StudyConfig};

/// A structured scenario-file failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Syntax error in the TOML subset.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A key the scenario schema does not know.
    UnknownKey {
        /// The scenario's name (or its index if the name is missing).
        scenario: String,
        /// The offending (dotted) key.
        key: String,
    },
    /// A known key with an ill-typed or out-of-range value.
    BadValue {
        /// The scenario's name.
        scenario: String,
        /// The (dotted) key.
        key: String,
        /// What was expected.
        msg: String,
    },
    /// A district name that does not resolve in the country model.
    UnknownDistrict {
        /// The scenario's name.
        scenario: String,
        /// The unresolvable name.
        district: String,
    },
    /// A structurally invalid matrix (e.g. no scenarios at all).
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } => {
                write!(f, "scenario file line {line}: {msg}")
            }
            ScenarioError::UnknownKey { scenario, key } => {
                write!(f, "scenario '{scenario}': unknown key '{key}'")
            }
            ScenarioError::BadValue { scenario, key, msg } => {
                write!(f, "scenario '{scenario}', key '{key}': {msg}")
            }
            ScenarioError::UnknownDistrict { scenario, district } => {
                write!(
                    f,
                    "scenario '{scenario}': district '{district}' is not in the country model"
                )
            }
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario matrix: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    List(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::List(_) => "array",
        }
    }
}

/// One scenario's overrides on top of the base configuration. Every
/// field is optional; an empty spec is the baseline run under a
/// different name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Display name (row label in the survival table).
    pub name: String,
    /// Traffic scale override.
    pub scale: Option<f64>,
    /// Master-seed override.
    pub seed: Option<u64>,
    /// Base event-list variant ("paper" / "quiet" /
    /// "outbreaks-without-news").
    pub base: Option<ScenarioKind>,
    /// Adoption-curve family ("bass" / "logistic" / "linear").
    pub adoption_family: Option<AdoptionFamily>,
    /// Adoption launch-burst override.
    pub launch_burst: Option<f64>,
    /// Adoption innovation-rate override.
    pub p_innovation: Option<f64>,
    /// Adoption imitation-rate override.
    pub q_imitation: Option<f64>,
    /// Adoption market-size override.
    pub market_size: Option<f64>,
    /// Router-fleet size override.
    pub routers: Option<u8>,
    /// Packet-sampling interval override (100 ⇒ 1:100).
    pub sampling_interval: Option<u32>,
    /// Flow-cache inactive timeout override (ms).
    pub inactive_timeout_ms: Option<u64>,
    /// Flow-cache active timeout override (ms).
    pub active_timeout_ms: Option<u64>,
    /// Background-traffic ratio override.
    pub background_ratio: Option<f64>,
    /// DSL reconnect policy: active-subscriber fraction override.
    pub active_subscriber_fraction: Option<f64>,
    /// CDN migration start day.
    pub cdn_migration_day: Option<u32>,
    /// CDN migration share (percent of backend flows, 0–100).
    pub cdn_migration_share: Option<u8>,
    /// District names whose scenario events are removed.
    pub remove_outbreaks: Vec<String>,
    /// Extra outbreak: district name.
    pub extra_outbreak_district: Option<String>,
    /// Extra outbreak: start day.
    pub extra_outbreak_day: Option<u32>,
    /// Extra outbreak: seed cases.
    pub extra_outbreak_seed_cases: Option<u32>,
    /// Extra outbreak: national media-pulse intensity (0 = unreported).
    pub extra_outbreak_media: Option<f64>,
}

impl ScenarioSpec {
    /// Applies the overrides to `base`, resolving district names via
    /// `germany`. Returns the effective configuration for this row.
    pub fn apply(
        &self,
        base: &StudyConfig,
        germany: &Germany,
    ) -> Result<StudyConfig, ScenarioError> {
        let mut cfg = *base;
        if let Some(scale) = self.scale {
            cfg.sim.scale = scale;
            cfg.persistence_prefix_len = persistence_len_for_scale(scale);
        }
        if let Some(seed) = self.seed {
            cfg.sim.seed = seed;
        }
        if let Some(kind) = self.base {
            cfg.sim.scenario = kind;
        }
        if let Some(family) = self.adoption_family {
            cfg.sim.adoption.family = family;
        }
        if let Some(v) = self.launch_burst {
            cfg.sim.adoption.launch_burst = v;
        }
        if let Some(v) = self.p_innovation {
            cfg.sim.adoption.p_innovation = v;
        }
        if let Some(v) = self.q_imitation {
            cfg.sim.adoption.q_imitation = v;
        }
        if let Some(v) = self.market_size {
            cfg.sim.adoption.market_size = v;
        }
        if let Some(n) = self.routers {
            if n == 0 {
                return Err(ScenarioError::BadValue {
                    scenario: self.name.clone(),
                    key: "vantage.routers".to_owned(),
                    msg: "the fleet needs at least one router".to_owned(),
                });
            }
            cfg.sim.vantage.routers = n;
        }
        if let Some(v) = self.sampling_interval {
            if v == 0 {
                return Err(ScenarioError::BadValue {
                    scenario: self.name.clone(),
                    key: "vantage.sampling_interval".to_owned(),
                    msg: "sampling interval must be ≥ 1".to_owned(),
                });
            }
            cfg.sim.vantage.sampling_interval = v;
        }
        if let Some(v) = self.inactive_timeout_ms {
            cfg.sim.vantage.cache.inactive_timeout_ms = v;
        }
        if let Some(v) = self.active_timeout_ms {
            cfg.sim.vantage.cache.active_timeout_ms = v;
        }
        if let Some(v) = self.background_ratio {
            cfg.sim.traffic.background_ratio = v;
        }
        if let Some(v) = self.active_subscriber_fraction {
            cfg.sim.traffic.active_subscriber_fraction = v;
        }
        match (self.cdn_migration_day, self.cdn_migration_share) {
            (None, None) => {}
            (Some(day), Some(share)) => {
                if share > 100 {
                    return Err(ScenarioError::BadValue {
                        scenario: self.name.clone(),
                        key: "cdn_migration.share_percent".to_owned(),
                        msg: "a percentage, 0–100".to_owned(),
                    });
                }
                cfg.sim.cdn_migration = Some(CdnMigration {
                    day,
                    share_percent: share,
                });
            }
            _ => {
                return Err(ScenarioError::BadValue {
                    scenario: self.name.clone(),
                    key: "cdn_migration".to_owned(),
                    msg: "needs both 'day' and 'share_percent'".to_owned(),
                });
            }
        }
        let mut tweaks = cfg.sim.outbreaks;
        if self.remove_outbreaks.len() > tweaks.remove.len() {
            return Err(ScenarioError::BadValue {
                scenario: self.name.clone(),
                key: "remove_outbreaks".to_owned(),
                msg: format!("at most {} districts", tweaks.remove.len()),
            });
        }
        for (slot, name) in tweaks.remove.iter_mut().zip(&self.remove_outbreaks) {
            let district = germany
                .by_name(name)
                .ok_or_else(|| ScenarioError::UnknownDistrict {
                    scenario: self.name.clone(),
                    district: name.clone(),
                })?;
            *slot = Some(district.id);
        }
        if let Some(name) = &self.extra_outbreak_district {
            let district = germany
                .by_name(name)
                .ok_or_else(|| ScenarioError::UnknownDistrict {
                    scenario: self.name.clone(),
                    district: name.clone(),
                })?;
            tweaks.extra = Some(ExtraOutbreak {
                district: district.id,
                day: self.extra_outbreak_day.unwrap_or(2),
                seed_cases: self.extra_outbreak_seed_cases.unwrap_or(800),
                media_intensity: self.extra_outbreak_media.unwrap_or(0.8),
            });
        } else if self.extra_outbreak_day.is_some()
            || self.extra_outbreak_seed_cases.is_some()
            || self.extra_outbreak_media.is_some()
        {
            return Err(ScenarioError::BadValue {
                scenario: self.name.clone(),
                key: "extra_outbreak".to_owned(),
                msg: "needs a 'district' name".to_owned(),
            });
        }
        cfg.sim.outbreaks = tweaks;
        Ok(cfg)
    }

    fn from_table(index: usize, table: BTreeMap<String, Value>) -> Result<Self, ScenarioError> {
        let name = match table.get("name") {
            Some(Value::Str(s)) => s.clone(),
            Some(v) => {
                return Err(ScenarioError::BadValue {
                    scenario: format!("#{index}"),
                    key: "name".to_owned(),
                    msg: format!("expected a string, got {}", v.type_name()),
                })
            }
            None => format!("scenario-{index}"),
        };
        let mut spec = ScenarioSpec {
            name: name.clone(),
            ..ScenarioSpec::default()
        };
        let bad = |key: &str, msg: String| ScenarioError::BadValue {
            scenario: name.clone(),
            key: key.to_owned(),
            msg,
        };
        let as_f64 = |key: &str, v: &Value| match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(bad(
                key,
                format!("expected a number, got {}", other.type_name()),
            )),
        };
        let as_u64 = |key: &str, v: &Value| match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(bad(
                key,
                format!("expected a non-negative integer, got {other:?}"),
            )),
        };
        for (key, value) in &table {
            match key.as_str() {
                "name" => {}
                "scale" => spec.scale = Some(as_f64(key, value)?),
                "seed" => spec.seed = Some(as_u64(key, value)?),
                "base" => {
                    let s = match value {
                        Value::Str(s) => s.as_str(),
                        other => {
                            return Err(bad(
                                key,
                                format!("expected a string, got {}", other.type_name()),
                            ))
                        }
                    };
                    spec.base = Some(match s {
                        "paper" => ScenarioKind::Paper,
                        "quiet" => ScenarioKind::Quiet,
                        "outbreaks-without-news" => ScenarioKind::OutbreaksWithoutNews,
                        other => {
                            return Err(bad(
                                key,
                                format!(
                                    "unknown base '{other}' (paper, quiet, outbreaks-without-news)"
                                ),
                            ))
                        }
                    });
                }
                "adoption.family" => {
                    let s = match value {
                        Value::Str(s) => s.as_str(),
                        other => {
                            return Err(bad(
                                key,
                                format!("expected a string, got {}", other.type_name()),
                            ))
                        }
                    };
                    spec.adoption_family = Some(match s {
                        "bass" => AdoptionFamily::Bass,
                        "logistic" => AdoptionFamily::Logistic,
                        "linear" => AdoptionFamily::Linear,
                        other => {
                            return Err(bad(
                                key,
                                format!("unknown family '{other}' (bass, logistic, linear)"),
                            ))
                        }
                    });
                }
                "adoption.launch_burst" => spec.launch_burst = Some(as_f64(key, value)?),
                "adoption.p_innovation" => spec.p_innovation = Some(as_f64(key, value)?),
                "adoption.q_imitation" => spec.q_imitation = Some(as_f64(key, value)?),
                "adoption.market_size" => spec.market_size = Some(as_f64(key, value)?),
                "vantage.routers" => {
                    let v = as_u64(key, value)?;
                    spec.routers =
                        Some(u8::try_from(v).map_err(|_| bad(key, "at most 255".to_owned()))?);
                }
                "vantage.sampling_interval" => {
                    let v = as_u64(key, value)?;
                    spec.sampling_interval =
                        Some(u32::try_from(v).map_err(|_| bad(key, "fits in u32".to_owned()))?);
                }
                "cache.inactive_timeout_ms" => spec.inactive_timeout_ms = Some(as_u64(key, value)?),
                "cache.active_timeout_ms" => spec.active_timeout_ms = Some(as_u64(key, value)?),
                "traffic.background_ratio" => spec.background_ratio = Some(as_f64(key, value)?),
                "traffic.active_subscriber_fraction" => {
                    spec.active_subscriber_fraction = Some(as_f64(key, value)?)
                }
                "cdn_migration.day" => {
                    let v = as_u64(key, value)?;
                    spec.cdn_migration_day =
                        Some(u32::try_from(v).map_err(|_| bad(key, "fits in u32".to_owned()))?);
                }
                "cdn_migration.share_percent" => {
                    let v = as_u64(key, value)?;
                    spec.cdn_migration_share = Some(
                        u8::try_from(v).map_err(|_| bad(key, "a percentage, 0–100".to_owned()))?,
                    );
                }
                "remove_outbreaks" => {
                    let list = match value {
                        Value::List(items) => items,
                        other => {
                            return Err(bad(
                                key,
                                format!(
                                    "expected an array of district names, got {}",
                                    other.type_name()
                                ),
                            ))
                        }
                    };
                    for item in list {
                        match item {
                            Value::Str(s) => spec.remove_outbreaks.push(s.clone()),
                            other => {
                                return Err(bad(
                                    key,
                                    format!(
                                        "district names must be strings, got {}",
                                        other.type_name()
                                    ),
                                ))
                            }
                        }
                    }
                }
                "extra_outbreak.district" => {
                    spec.extra_outbreak_district = Some(match value {
                        Value::Str(s) => s.clone(),
                        other => {
                            return Err(bad(
                                key,
                                format!("expected a string, got {}", other.type_name()),
                            ))
                        }
                    });
                }
                "extra_outbreak.day" => {
                    let v = as_u64(key, value)?;
                    spec.extra_outbreak_day =
                        Some(u32::try_from(v).map_err(|_| bad(key, "fits in u32".to_owned()))?);
                }
                "extra_outbreak.seed_cases" => {
                    let v = as_u64(key, value)?;
                    spec.extra_outbreak_seed_cases =
                        Some(u32::try_from(v).map_err(|_| bad(key, "fits in u32".to_owned()))?);
                }
                "extra_outbreak.media_intensity" => {
                    spec.extra_outbreak_media = Some(as_f64(key, value)?)
                }
                unknown => {
                    return Err(ScenarioError::UnknownKey {
                        scenario: name,
                        key: unknown.to_owned(),
                    })
                }
            }
        }
        Ok(spec)
    }
}

/// A parsed scenario matrix: the ordered list of rows a sweep runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    /// The scenarios, in file order.
    pub scenarios: Vec<ScenarioSpec>,
}

impl ScenarioMatrix {
    /// Parses a matrix from the TOML-subset text format.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let tables = parse_toml_subset(text)?;
        if tables.is_empty() {
            return Err(ScenarioError::Invalid(
                "no [[scenario]] tables found".to_owned(),
            ));
        }
        let mut scenarios = Vec::with_capacity(tables.len());
        for (i, table) in tables.into_iter().enumerate() {
            scenarios.push(ScenarioSpec::from_table(i, table)?);
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != scenarios.len() {
            return Err(ScenarioError::Invalid(
                "scenario names must be unique".to_owned(),
            ));
        }
        Ok(ScenarioMatrix { scenarios })
    }
}

/// Parses the `[[scenario]]` TOML subset into one flat dotted-key table
/// per scenario.
fn parse_toml_subset(text: &str) -> Result<Vec<BTreeMap<String, Value>>, ScenarioError> {
    let mut tables: Vec<BTreeMap<String, Value>> = Vec::new();
    // Dotted prefix from the last `[scenario.sub]` header.
    let mut prefix = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ScenarioError::Parse { line: lineno, msg };
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if header.trim() != "scenario" {
                return Err(err(format!(
                    "unknown table array '[[{}]]' (only [[scenario]] is supported)",
                    header.trim()
                )));
            }
            tables.push(BTreeMap::new());
            prefix.clear();
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let header = header.trim();
            let sub = header.strip_prefix("scenario.").ok_or_else(|| {
                err(format!(
                    "unknown table '[{header}]' (use [scenario.<section>] after a [[scenario]])"
                ))
            })?;
            if tables.is_empty() {
                return Err(err(format!("'[{header}]' before the first [[scenario]]")));
            }
            prefix = format!("{sub}.");
            continue;
        }
        let (key, value_src) = line
            .split_once('=')
            .ok_or_else(|| err(format!("expected 'key = value', got '{line}'")))?;
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            return Err(err(format!("invalid key '{key}'")));
        }
        let table = tables
            .last_mut()
            .ok_or_else(|| err("key before the first [[scenario]]".to_owned()))?;
        let value = parse_value(value_src.trim()).map_err(&err)?;
        let full_key = format!("{prefix}{key}");
        if table.insert(full_key.clone(), value).is_some() {
            return Err(err(format!("duplicate key '{full_key}'")));
        }
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(src: &str) -> Result<Value, String> {
    if src.is_empty() {
        return Err("missing value".to_owned());
    }
    if let Some(body) = src.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array (arrays must be single-line)".to_owned())?;
        let mut items = Vec::new();
        for part in split_array_items(body)? {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part)?);
        }
        return Ok(Value::List(items));
    }
    if src.starts_with('"') {
        return parse_string(src).map(Value::Str);
    }
    match src {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let cleaned: String = src.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        return i64::from_str_radix(hex, 16)
            .map(Value::Int)
            .map_err(|_| format!("invalid hex integer '{src}'"));
    }
    if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
        return cleaned
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid float '{src}'"));
    }
    cleaned
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("invalid value '{src}'"))
}

/// Splits array items at top-level commas (commas inside strings don't
/// count).
fn split_array_items(body: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string in array".to_owned());
    }
    items.push(&body[start..]);
    Ok(items)
}

fn parse_string(src: &str) -> Result<String, String> {
    let inner = src
        .strip_prefix('"')
        .ok_or_else(|| "expected a string".to_owned())?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let rest: String = chars.collect();
                if !rest.trim().is_empty() {
                    return Err(format!("trailing garbage after string: '{rest}'"));
                }
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape '\\{other:?}'")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# The matrix the walkthrough uses.
[[scenario]]
name = "baseline"

[[scenario]]
name = "slow-news-launch"
[scenario.adoption]
family = "logistic"

[[scenario]]
name = "coarse-sampling"
vantage.sampling_interval = 100  # 1:100 instead of 1:1000
seed = 0x2020_0616

[[scenario]]
name = "migrated-cdn"
cdn_migration.day = 5
cdn_migration.share_percent = 60

[[scenario]]
name = "no-outbreaks"
remove_outbreaks = ["Berlin", "Gütersloh", "Warendorf"]

[[scenario]]
name = "muenchen-outbreak"
[scenario.extra_outbreak]
district = "München"
day = 4
seed_cases = 900
media_intensity = 1.2

[[scenario]]
name = "dsl-reconnect"
[scenario.cache]
inactive_timeout_ms = 5000  # flows split on shorter idle gaps
[scenario.traffic]
active_subscriber_fraction = 0.25  # smaller pool -> faster address churn
"#;

    #[test]
    fn parses_the_example_matrix() {
        let matrix = ScenarioMatrix::parse(EXAMPLE).unwrap();
        assert_eq!(matrix.scenarios.len(), 7);
        assert_eq!(matrix.scenarios[0].name, "baseline");
        assert_eq!(
            matrix.scenarios[0],
            ScenarioSpec {
                name: "baseline".to_owned(),
                ..ScenarioSpec::default()
            }
        );
        assert_eq!(
            matrix.scenarios[1].adoption_family,
            Some(AdoptionFamily::Logistic)
        );
        assert_eq!(matrix.scenarios[2].sampling_interval, Some(100));
        assert_eq!(matrix.scenarios[2].seed, Some(0x2020_0616));
        assert_eq!(matrix.scenarios[3].cdn_migration_day, Some(5));
        assert_eq!(matrix.scenarios[3].cdn_migration_share, Some(60));
        assert_eq!(
            matrix.scenarios[4].remove_outbreaks,
            vec!["Berlin", "Gütersloh", "Warendorf"]
        );
        assert_eq!(
            matrix.scenarios[5].extra_outbreak_district.as_deref(),
            Some("München")
        );
        assert_eq!(matrix.scenarios[5].extra_outbreak_day, Some(4));
        assert_eq!(matrix.scenarios[6].name, "dsl-reconnect");
        assert_eq!(matrix.scenarios[6].inactive_timeout_ms, Some(5000));
        assert_eq!(matrix.scenarios[6].active_subscriber_fraction, Some(0.25));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = ScenarioMatrix::parse("[[scenario]]\nname = \"x\"\nscael = 0.1\n").unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnknownKey {
                scenario: "x".to_owned(),
                key: "scael".to_owned()
            }
        );
    }

    #[test]
    fn unknown_section_is_an_error() {
        let err = ScenarioMatrix::parse("[[scenario]]\n[scenario.adoptoin]\nfamily = \"bass\"\n")
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { ref key, .. } if key == "adoptoin.family")
        );
    }

    #[test]
    fn empty_matrix_is_an_error() {
        assert!(matches!(
            ScenarioMatrix::parse("# nothing here\n"),
            Err(ScenarioError::Invalid(_))
        ));
        assert!(matches!(
            ScenarioMatrix::parse("scale = 0.1\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let text = "[[scenario]]\nname = \"a\"\n[[scenario]]\nname = \"a\"\n";
        assert!(matches!(
            ScenarioMatrix::parse(text),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn value_types() {
        let t = "[[scenario]]\nname = \"v\"\nscale = 0.01\nseed = 1_000\nbase = \"quiet\"\n";
        let m = ScenarioMatrix::parse(t).unwrap();
        assert_eq!(m.scenarios[0].scale, Some(0.01));
        assert_eq!(m.scenarios[0].seed, Some(1000));
        assert_eq!(m.scenarios[0].base, Some(ScenarioKind::Quiet));
    }

    #[test]
    fn comments_respect_strings() {
        let t = "[[scenario]]\nname = \"has # hash\" # real comment\n";
        let m = ScenarioMatrix::parse(t).unwrap();
        assert_eq!(m.scenarios[0].name, "has # hash");
    }

    #[test]
    fn apply_overlays_the_base_config() {
        let germany = Germany::build();
        let base = StudyConfig::test_small();
        let matrix = ScenarioMatrix::parse(EXAMPLE).unwrap();

        let baseline = matrix.scenarios[0].apply(&base, &germany).unwrap();
        assert_eq!(baseline, base, "an empty spec is the identity");

        let logistic = matrix.scenarios[1].apply(&base, &germany).unwrap();
        assert_eq!(logistic.sim.adoption.family, AdoptionFamily::Logistic);

        let coarse = matrix.scenarios[2].apply(&base, &germany).unwrap();
        assert_eq!(coarse.sim.vantage.sampling_interval, 100);

        let migrated = matrix.scenarios[3].apply(&base, &germany).unwrap();
        assert_eq!(
            migrated.sim.cdn_migration,
            Some(CdnMigration {
                day: 5,
                share_percent: 60
            })
        );

        let removed = matrix.scenarios[4].apply(&base, &germany).unwrap();
        let removed_ids: Vec<_> = removed.sim.outbreaks.remove.iter().flatten().collect();
        assert_eq!(removed_ids.len(), 3);

        let extra = matrix.scenarios[5].apply(&base, &germany).unwrap();
        let ob = extra.sim.outbreaks.extra.unwrap();
        assert_eq!(ob.day, 4);
        assert_eq!(ob.seed_cases, 900);
        assert_eq!(
            germany.districts()[usize::from(ob.district.0)].name,
            "München"
        );

        let reconnect = matrix.scenarios[6].apply(&base, &germany).unwrap();
        assert_eq!(reconnect.sim.vantage.cache.inactive_timeout_ms, 5000);
        assert_eq!(reconnect.sim.traffic.active_subscriber_fraction, 0.25);
    }

    #[test]
    fn apply_rejects_unknown_district() {
        let germany = Germany::build();
        let base = StudyConfig::test_small();
        let m = ScenarioMatrix::parse(
            "[[scenario]]\nname = \"x\"\nremove_outbreaks = [\"Atlantis\"]\n",
        )
        .unwrap();
        assert!(matches!(
            m.scenarios[0].apply(&base, &germany),
            Err(ScenarioError::UnknownDistrict { .. })
        ));
    }

    #[test]
    fn apply_rescales_persistence_granularity() {
        let germany = Germany::build();
        let base = StudyConfig::default();
        let m = ScenarioMatrix::parse("[[scenario]]\nname = \"tiny\"\nscale = 0.005\n").unwrap();
        let cfg = m.scenarios[0].apply(&base, &germany).unwrap();
        assert_eq!(cfg.sim.scale, 0.005);
        assert_eq!(
            cfg.persistence_prefix_len,
            persistence_len_for_scale(0.005),
            "scale override re-derives the prefix length"
        );
    }

    #[test]
    fn half_specified_migration_rejected() {
        let germany = Germany::build();
        let base = StudyConfig::test_small();
        let m =
            ScenarioMatrix::parse("[[scenario]]\nname = \"x\"\ncdn_migration.day = 3\n").unwrap();
        assert!(matches!(
            m.scenarios[0].apply(&base, &germany),
            Err(ScenarioError::BadValue { .. })
        ));
    }
}
