//! Estimating true traffic volumes from sampled flow records.
//!
//! With 1-in-N packet sampling, raw record counts understate reality.
//! The standard estimators (Duffield et al.):
//!
//! * **packets/bytes**: multiply sampled counts by N (Horvitz–Thompson;
//!   unbiased because every packet is sampled with probability 1/N).
//! * **flow count**: a flow of `s` sampled packets had some unknown true
//!   size; the HT estimator weighs each *observed* flow by the inverse
//!   of its detection probability `1 − (1−1/N)^k`, which needs the true
//!   size `k`. With only sampled sizes available, the practical
//!   estimator for the dominant small-flow regime (`k ≪ N`) is
//!   `flows ≈ Σ over records of N / E[k | seen]`; for single-packet
//!   observations of flows with typical size `k̄` this reduces to
//!   `records · N / k̄`.
//!
//! [`VolumeEstimate`] implements the exact HT inflation for packets and
//! bytes and the `k̄`-calibrated flow-count estimator; the integration
//! tests validate all three against simulator ground truth.

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;

/// Estimated true volumes with standard errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeEstimate {
    /// Estimated true packet count.
    pub packets: f64,
    /// Standard error of the packet estimate.
    pub packets_se: f64,
    /// Estimated true byte count.
    pub bytes: f64,
    /// Estimated true flow count (needs a mean-flow-size prior).
    pub flows: f64,
    /// Number of records the estimate is based on.
    pub records: usize,
}

impl VolumeEstimate {
    /// 95 % confidence interval for the packet estimate.
    pub fn packets_ci95(&self) -> (f64, f64) {
        (
            self.packets - 1.96 * self.packets_se,
            self.packets + 1.96 * self.packets_se,
        )
    }
}

/// Horvitz–Thompson volume estimation over sampled records.
///
/// * `sampling_interval` — the router's N.
/// * `mean_flow_packets` — prior mean true flow size `k̄` (from protocol
///   knowledge; the CWA key download is a small HTTPS transfer).
pub fn estimate_volumes(
    records: &[FlowRecord],
    sampling_interval: u32,
    mean_flow_packets: f64,
) -> VolumeEstimate {
    // Degenerate input: no observations support no estimate. Return the
    // well-defined zero estimate rather than letting 0/0 paths produce
    // NaN downstream (claim bands and CI bounds must stay finite).
    if records.is_empty() {
        return VolumeEstimate {
            packets: 0.0,
            packets_se: 0.0,
            bytes: 0.0,
            flows: 0.0,
            records: 0,
        };
    }

    let n = f64::from(sampling_interval.max(1));
    let sampled_packets: u64 = records.iter().map(|r| r.packets).sum();
    let sampled_bytes: u64 = records.iter().map(|r| r.bytes).sum();

    // Packets: HT estimator Σ 1/(1/N) per sampled packet = sampled · N.
    let packets = sampled_packets as f64 * n;
    // Each sampled packet contributes N with variance N(N−1) ≈ N² for
    // large N; SE = sqrt(Σ N(N−1)) = sqrt(sampled · N(N−1)).
    let packets_se = (sampled_packets as f64 * n * (n - 1.0)).sqrt();

    let bytes = sampled_bytes as f64 * n;

    // Flow count: P(flow observed) ≈ 1 − (1 − 1/N)^k̄ ≈ k̄/N for k̄ ≪ N.
    // The size prior must be a positive finite packet count; a zero,
    // negative, or NaN prior would drive `powf` into NaN / >1 territory
    // and the division into ±inf, so the flow estimate degrades to the
    // zero estimate instead.
    let flows = if mean_flow_packets.is_finite() && mean_flow_packets > 0.0 {
        let p_seen = 1.0 - (1.0 - 1.0 / n).powf(mean_flow_packets);
        if p_seen > 0.0 {
            records.len() as f64 / p_seen
        } else {
            0.0
        }
    } else {
        0.0
    };

    VolumeEstimate {
        packets,
        packets_se,
        bytes,
        flows,
        records: records.len(),
    }
}

/// Estimates the mean true flow size from the *generation* model side
/// (helper for tests and calibration; a real analyst would use protocol
/// knowledge — e.g. the export file size — instead).
pub fn mean_size_from_lognormal(median: f64, sigma: f64) -> f64 {
    median * (sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::sampling::sample_packet_count;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::net::Ipv4Addr;

    /// Generate true flows, sample them, estimate, compare to truth.
    fn roundtrip(n_flows: u64, mean_size: f64, interval: u32) -> (VolumeEstimate, u64, u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut records = Vec::new();
        let mut true_packets = 0u64;
        let mut true_bytes = 0u64;
        for i in 0..n_flows {
            // Geometric-ish flow sizes with the requested mean.
            let k = (1.0 + rng.gen::<f64>().ln() * -(mean_size - 1.0))
                .round()
                .max(1.0) as u64;
            let bytes = k * 1000;
            true_packets += k;
            true_bytes += bytes;
            let sampled = sample_packet_count(&mut rng, k, interval);
            if sampled > 0 {
                records.push(FlowRecord {
                    key: FlowKey::tcp(
                        Ipv4Addr::new(81, 200, 16, 1),
                        443,
                        Ipv4Addr::from(0x54000000 + (i as u32)),
                        50_000,
                    ),
                    packets: sampled,
                    bytes: sampled * 1000,
                    first_ms: 0,
                    last_ms: 100,
                    tcp_flags: 0x18,
                });
            }
        }
        (
            estimate_volumes(&records, interval, mean_size),
            true_packets,
            true_bytes,
        )
    }

    #[test]
    fn packet_estimate_unbiased() {
        let (est, true_packets, true_bytes) = roundtrip(200_000, 18.0, 100);
        let rel = (est.packets - true_packets as f64).abs() / true_packets as f64;
        assert!(rel < 0.02, "packets {} vs true {true_packets}", est.packets);
        let relb = (est.bytes - true_bytes as f64).abs() / true_bytes as f64;
        assert!(relb < 0.02, "bytes {} vs true {true_bytes}", est.bytes);
    }

    #[test]
    fn packet_ci_covers_truth() {
        let (est, true_packets, _) = roundtrip(100_000, 18.0, 100);
        let (lo, hi) = est.packets_ci95();
        assert!(
            lo <= true_packets as f64 && true_packets as f64 <= hi,
            "CI [{lo}, {hi}] vs true {true_packets}"
        );
        assert!(hi > lo);
    }

    #[test]
    fn flow_estimate_right_magnitude() {
        let (est, _, _) = roundtrip(200_000, 18.0, 100);
        let rel = (est.flows - 200_000.0).abs() / 200_000.0;
        // The flow estimator carries model error from the size prior;
        // ±25 % is the realistic regime.
        assert!(rel < 0.25, "flows {} vs true 200000", est.flows);
    }

    #[test]
    fn unsampled_is_exact() {
        let (est, true_packets, true_bytes) = roundtrip(5_000, 10.0, 1);
        assert_eq!(est.packets, true_packets as f64);
        assert_eq!(est.bytes, true_bytes as f64);
        assert_eq!(est.packets_se, 0.0);
        assert_eq!(est.records, 5_000);
        let rel = (est.flows - 5_000.0).abs() / 5_000.0;
        assert!(rel < 1e-9, "every flow observed: {}", est.flows);
    }

    #[test]
    fn empty_records() {
        let est = estimate_volumes(&[], 1000, 18.0);
        assert_eq!(est.packets, 0.0);
        assert_eq!(est.flows, 0.0);
        assert_eq!(est.records, 0);
    }

    fn assert_all_finite(est: &VolumeEstimate) {
        assert!(est.packets.is_finite(), "packets {}", est.packets);
        assert!(est.packets_se.is_finite(), "se {}", est.packets_se);
        assert!(est.bytes.is_finite(), "bytes {}", est.bytes);
        assert!(est.flows.is_finite(), "flows {}", est.flows);
        let (lo, hi) = est.packets_ci95();
        assert!(lo.is_finite() && hi.is_finite(), "CI [{lo}, {hi}]");
    }

    #[test]
    fn degenerate_size_prior_yields_zero_flow_estimate() {
        let recs = vec![FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 1),
                443,
                Ipv4Addr::new(10, 0, 0, 1),
                50_000,
            ),
            packets: 3,
            bytes: 3000,
            first_ms: 0,
            last_ms: 100,
            tcp_flags: 0x18,
        }];
        for prior in [0.0, -7.0, f64::NAN, f64::NEG_INFINITY, f64::INFINITY] {
            let est = estimate_volumes(&recs, 1000, prior);
            assert_all_finite(&est);
            assert_eq!(
                est.flows, 0.0,
                "prior {prior}: flow estimate degrades to zero"
            );
            // The packet/byte HT estimators don't depend on the prior.
            assert_eq!(est.packets, 3000.0);
            assert_eq!(est.bytes, 3_000_000.0);
            assert_eq!(est.records, 1);
        }
    }

    #[test]
    fn empty_records_with_degenerate_prior_stay_finite() {
        for prior in [0.0, -1.0, f64::NAN] {
            for interval in [0u32, 1, 1000] {
                let est = estimate_volumes(&[], interval, prior);
                assert_all_finite(&est);
                assert_eq!(est.packets, 0.0);
                assert_eq!(est.packets_se, 0.0);
                assert_eq!(est.bytes, 0.0);
                assert_eq!(est.flows, 0.0);
                assert_eq!(est.records, 0);
            }
        }
    }

    #[test]
    fn lognormal_mean_helper() {
        // mean = median * exp(sigma^2/2)
        let m = mean_size_from_lognormal(16.0, 0.8);
        assert!((m - 16.0 * (0.32f64).exp()).abs() < 1e-9);
        assert!(m > 16.0);
        assert_eq!(mean_size_from_lognormal(10.0, 0.0), 10.0);
    }
}
