//! Crypto-PAn prefix-preserving IPv4 anonymization.
//!
//! The paper (§2): "*All client IP addresses are prefix-preserving
//! anonymized*". Prefix preservation means that if two real addresses
//! share a k-bit prefix, their anonymized forms share a k-bit prefix too
//! — so routing-prefix-level analyses (persistence, geolocation of
//! prefixes via side tables) remain possible while individual addresses
//! are hidden.
//!
//! This is the classic Crypto-PAn construction (Xu, Fan, Ammar, Moon,
//! ICNP 2002): AES-128 is used as a pseudo-random function; for every
//! prefix length `i` the PRF of the address's first `i` bits (padded with
//! a secret pad) decides whether bit `i` is flipped.

use std::net::Ipv4Addr;

use cwa_crypto::Aes128;

/// A keyed Crypto-PAn anonymizer.
///
/// ```
/// use cwa_netflow::CryptoPan;
/// use std::net::Ipv4Addr;
/// let cp = CryptoPan::new(&[7u8; 32]);
/// let a = cp.anonymize(Ipv4Addr::new(192, 0, 2, 1));
/// let b = cp.anonymize(Ipv4Addr::new(192, 0, 2, 99));
/// // Same /24 in, same /24 out:
/// assert_eq!(u32::from(a) >> 8, u32::from(b) >> 8);
/// ```
#[derive(Clone)]
pub struct CryptoPan {
    aes: Aes128,
    /// Secret 16-byte pad, itself encrypted from the key's second half.
    pad: [u8; 16],
}

impl CryptoPan {
    /// Creates an anonymizer from a 32-byte key: the first 16 bytes key
    /// the AES PRF, the second 16 bytes (encrypted once) form the secret
    /// pad — as in the reference implementation.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut aes_key = [0u8; 16];
        aes_key.copy_from_slice(&key[..16]);
        let aes = Aes128::new(&aes_key);
        let mut pad_in = [0u8; 16];
        pad_in.copy_from_slice(&key[16..]);
        let pad = aes.encrypt_block(&pad_in);
        CryptoPan { aes, pad }
    }

    /// Anonymizes one IPv4 address, preserving prefix relationships.
    pub fn anonymize(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let orig = u32::from(addr);
        Ipv4Addr::from(orig ^ self.flips_in_range(orig, 0, 32))
    }

    /// Flip mask for bit positions `start..end` (0 = most significant).
    ///
    /// The flip of bit `pos` depends only on the top `pos` bits of
    /// `orig` — the prefix-preservation property — which is what makes
    /// the mask for positions `0..24` cacheable per /24 prefix (see
    /// [`CachedCryptoPan`]). One AES block per position.
    fn flips_in_range(&self, orig: u32, start: u32, end: u32) -> u32 {
        let pad4 = u32::from_be_bytes([self.pad[0], self.pad[1], self.pad[2], self.pad[3]]);
        let mut result = 0u32;
        let mut input = self.pad;
        for pos in start..end {
            // First 4 bytes: the first `pos` bits of the original address
            // followed by bits pos..32 of the pad.
            let first4 = if pos == 0 {
                pad4
            } else {
                let keep_mask = !(u32::MAX >> pos); // top `pos` bits
                (orig & keep_mask) | (pad4 & !keep_mask)
            };
            input[..4].copy_from_slice(&first4.to_be_bytes());
            let out = self.aes.encrypt_block(&input);
            // The PRF's most significant bit decides the flip of bit `pos`
            // (counting from the most significant address bit).
            result |= u32::from(out[0] >> 7) << (31 - pos);
        }
        result
    }

    /// De-anonymizes an address produced by [`CryptoPan::anonymize`]
    /// under the same key. (Possible because each flip bit depends only
    /// on the *original* prefix, which can be recovered bit by bit.)
    pub fn deanonymize(&self, anon: Ipv4Addr) -> Ipv4Addr {
        let target = u32::from(anon);
        let pad4 = u32::from_be_bytes([self.pad[0], self.pad[1], self.pad[2], self.pad[3]]);

        let mut orig = 0u32;
        let mut input = self.pad;
        for pos in 0..32u32 {
            let first4 = if pos == 0 {
                pad4
            } else {
                let keep_mask = !(u32::MAX >> pos);
                (orig & keep_mask) | (pad4 & !keep_mask)
            };
            input[..4].copy_from_slice(&first4.to_be_bytes());
            let out = self.aes.encrypt_block(&input);
            let flip = u32::from(out[0] >> 7) << (31 - pos);
            // anonymized bit = original bit ^ flip  ⇒  original = anon ^ flip
            let bit = (target ^ flip) & (1 << (31 - pos));
            orig |= bit;
        }
        Ipv4Addr::from(orig)
    }
}

/// Length of the longest common prefix of two addresses, in bits.
pub fn common_prefix_len(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
    (u32::from(a) ^ u32::from(b)).leading_zeros()
}

/// A memoizing wrapper around [`CryptoPan`].
///
/// Crypto-PAn costs 32 AES blocks per address — the dominant cost of
/// the collector's hot path (up to 64 blocks per record). Exactly
/// because the construction is prefix-preserving, the flip mask for bit
/// positions 0..24 depends only on the address's /24 prefix, so it can
/// be memoized per prefix (a hit leaves 8 AES blocks for the host
/// bits); full addresses memoize to zero AES blocks. Output is
/// bit-identical to the uncached [`CryptoPan::anonymize`] — the caches
/// only short-circuit a pure function — so record streams are unchanged
/// by construction (asserted by tests).
///
/// Both maps are bounded: on reaching capacity they are cleared whole
/// (a deterministic epoch reset, no eviction order to get wrong).
pub struct CachedCryptoPan {
    inner: CryptoPan,
    /// `addr → anonymized addr`, the full-address memo.
    addrs: std::collections::HashMap<u32, u32>,
    /// `addr >> 8 → flip mask for bit positions 0..24`.
    prefixes: std::collections::HashMap<u32, u32>,
    addr_cap: usize,
    prefix_cap: usize,
    /// Lookups served from the full-address memo (0 AES blocks).
    pub addr_hits: u64,
    /// Address misses whose /24 flip mask was memoized (8 AES blocks).
    pub prefix_hits: u64,
    /// Lookups that ran the full 32-block walk.
    pub misses: u64,
}

impl CachedCryptoPan {
    /// Default bound on each memo map (~1 M entries ≈ 8 MB apiece).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Wraps an anonymizer with the default cache bounds.
    pub fn new(inner: CryptoPan) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY, Self::DEFAULT_CAPACITY)
    }

    /// Wraps an anonymizer with explicit cache bounds (tests).
    pub fn with_capacity(inner: CryptoPan, addr_cap: usize, prefix_cap: usize) -> Self {
        CachedCryptoPan {
            inner,
            addrs: std::collections::HashMap::new(),
            prefixes: std::collections::HashMap::new(),
            addr_cap: addr_cap.max(1),
            prefix_cap: prefix_cap.max(1),
            addr_hits: 0,
            prefix_hits: 0,
            misses: 0,
        }
    }

    /// The wrapped anonymizer.
    pub fn inner(&self) -> &CryptoPan {
        &self.inner
    }

    /// Lookups served from either memo level.
    pub fn hits(&self) -> u64 {
        self.addr_hits + self.prefix_hits
    }

    /// Anonymizes one address through the memo caches. Bit-identical to
    /// `self.inner().anonymize(addr)`.
    pub fn anonymize(&mut self, addr: Ipv4Addr) -> Ipv4Addr {
        Ipv4Addr::from(self.anonymize_u32(u32::from(addr)))
    }

    /// `u32` form of [`anonymize`](CachedCryptoPan::anonymize) — what
    /// columnar callers use directly.
    pub fn anonymize_u32(&mut self, orig: u32) -> u32 {
        if let Some(&anon) = self.addrs.get(&orig) {
            self.addr_hits += 1;
            return anon;
        }
        let high = match self.prefixes.get(&(orig >> 8)) {
            Some(&mask) => {
                self.prefix_hits += 1;
                mask
            }
            None => {
                self.misses += 1;
                let mask = self.inner.flips_in_range(orig, 0, 24);
                if self.prefixes.len() >= self.prefix_cap {
                    self.prefixes.clear();
                }
                self.prefixes.insert(orig >> 8, mask);
                mask
            }
        };
        let anon = orig ^ high ^ self.inner.flips_in_range(orig, 24, 32);
        if self.addrs.len() >= self.addr_cap {
            self.addrs.clear();
        }
        self.addrs.insert(orig, anon);
        anon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cp() -> CryptoPan {
        // A fixed 32-byte key for reproducible tests.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        CryptoPan::new(&key)
    }

    #[test]
    fn deterministic() {
        let cp = cp();
        let a = Ipv4Addr::new(93, 184, 216, 34);
        assert_eq!(cp.anonymize(a), cp.anonymize(a));
    }

    #[test]
    fn different_keys_differ() {
        let cp1 = CryptoPan::new(&[1u8; 32]);
        let cp2 = CryptoPan::new(&[2u8; 32]);
        let a = Ipv4Addr::new(93, 184, 216, 34);
        assert_ne!(cp1.anonymize(a), cp2.anonymize(a));
    }

    #[test]
    fn prefix_preservation_pairs() {
        let cp = cp();
        let cases = [
            (Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(10, 1, 2, 200)), // /24
            (Ipv4Addr::new(10, 1, 2, 3), Ipv4Addr::new(10, 1, 9, 9)),   // /16-ish
            (Ipv4Addr::new(217, 0, 0, 1), Ipv4Addr::new(217, 0, 128, 1)),
        ];
        for (x, y) in cases {
            let k = common_prefix_len(x, y);
            let ka = common_prefix_len(cp.anonymize(x), cp.anonymize(y));
            assert_eq!(k, ka, "{x} vs {y}: shared {k} bits, anonymized share {ka}");
        }
    }

    #[test]
    fn prefix_preservation_exhaustive_small() {
        // All pairs in a /28: pairwise common-prefix lengths must be
        // preserved exactly.
        let cp = cp();
        let base = u32::from(Ipv4Addr::new(198, 51, 100, 16));
        let addrs: Vec<Ipv4Addr> = (0..16u32).map(|i| Ipv4Addr::from(base + i)).collect();
        let anons: Vec<Ipv4Addr> = addrs.iter().map(|&a| cp.anonymize(a)).collect();
        for i in 0..addrs.len() {
            for j in (i + 1)..addrs.len() {
                assert_eq!(
                    common_prefix_len(addrs[i], addrs[j]),
                    common_prefix_len(anons[i], anons[j]),
                    "pair {i},{j}"
                );
            }
        }
    }

    #[test]
    fn injective_on_sample() {
        let cp = cp();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let addr = Ipv4Addr::from(rng.gen::<u32>());
            seen.insert((addr, cp.anonymize(addr)));
        }
        let inputs: std::collections::HashSet<_> = seen.iter().map(|(a, _)| a).collect();
        let outputs: std::collections::HashSet<_> = seen.iter().map(|(_, b)| b).collect();
        assert_eq!(
            inputs.len(),
            outputs.len(),
            "anonymization must be injective"
        );
    }

    #[test]
    fn roundtrip_deanonymize() {
        let cp = cp();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let addr = Ipv4Addr::from(rng.gen::<u32>());
            assert_eq!(cp.deanonymize(cp.anonymize(addr)), addr);
        }
    }

    #[test]
    fn output_is_not_identity() {
        let cp = cp();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let changed = (0..1000)
            .filter(|_| {
                let addr = Ipv4Addr::from(rng.gen::<u32>());
                cp.anonymize(addr) != addr
            })
            .count();
        assert!(changed > 950, "only {changed}/1000 addresses changed");
    }

    #[test]
    fn cached_matches_uncached_exactly() {
        let cp = cp();
        let mut cached = CachedCryptoPan::new(cp.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Random addresses with repeats and shared /24s, visited twice so
        // both memo levels get exercised.
        let addrs: Vec<Ipv4Addr> = (0..2000)
            .map(|i| {
                if i % 3 == 0 {
                    // cluster in a handful of /24s
                    Ipv4Addr::from((rng.gen::<u32>() & 0xFF) | 0x5400_1000)
                } else {
                    Ipv4Addr::from(rng.gen::<u32>())
                }
            })
            .collect();
        for &a in addrs.iter().chain(addrs.iter()) {
            assert_eq!(cached.anonymize(a), cp.anonymize(a), "{a}");
        }
        // Second pass is all address hits; clusters give prefix hits.
        assert!(cached.addr_hits >= 2000, "addr hits {}", cached.addr_hits);
        assert!(cached.prefix_hits > 0, "prefix hits");
        assert!(cached.misses > 0 && cached.misses <= 2000);
    }

    #[test]
    fn cached_survives_capacity_resets() {
        let cp = cp();
        let mut cached = CachedCryptoPan::with_capacity(cp.clone(), 8, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..500 {
            let a = Ipv4Addr::from(rng.gen::<u32>());
            assert_eq!(cached.anonymize(a), cp.anonymize(a), "{a}");
        }
    }

    #[test]
    fn common_prefix_len_edges() {
        assert_eq!(
            common_prefix_len(Ipv4Addr::new(0, 0, 0, 0), Ipv4Addr::new(255, 0, 0, 0)),
            0
        );
        assert_eq!(
            common_prefix_len(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(1, 2, 3, 4)),
            32
        );
        assert_eq!(
            common_prefix_len(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(1, 2, 3, 5)),
            31
        );
    }
}
