//! Bidirectional flow (biflow) construction.
//!
//! NetFlow records are unidirectional; most analyses (and RFC 5103
//! IPFIX biflows) pair the two directions of a TCP connection back
//! together. The merger pairs records whose 5-tuples are mutual
//! reverses and whose time spans overlap (within a pairing window),
//! labelling the *initiator* by the classic heuristic: the side whose
//! destination port is the well-known service port (or, failing that,
//! the side that started earlier).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::flow::{FlowKey, FlowRecord};

/// A paired bidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biflow {
    /// The client→server (initiating) direction, if observed.
    pub forward: Option<FlowRecord>,
    /// The server→client direction, if observed.
    pub reverse: Option<FlowRecord>,
}

impl Biflow {
    /// Total bytes across both directions.
    pub fn total_bytes(&self) -> u64 {
        self.forward.map_or(0, |r| r.bytes) + self.reverse.map_or(0, |r| r.bytes)
    }

    /// Total packets across both directions.
    pub fn total_packets(&self) -> u64 {
        self.forward.map_or(0, |r| r.packets) + self.reverse.map_or(0, |r| r.packets)
    }

    /// True if both directions were observed.
    pub fn is_complete(&self) -> bool {
        self.forward.is_some() && self.reverse.is_some()
    }

    /// Download asymmetry: reverse (server→client) bytes divided by
    /// total bytes. NaN when empty.
    pub fn download_ratio(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return f64::NAN;
        }
        self.reverse.map_or(0, |r| r.bytes) as f64 / total as f64
    }
}

/// Pairing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiflowConfig {
    /// Maximum start-time difference for two records to pair, ms.
    pub pairing_window_ms: u64,
    /// Ports treated as service ports for initiator detection.
    pub service_ports: [u16; 4],
}

impl Default for BiflowConfig {
    fn default() -> Self {
        BiflowConfig {
            pairing_window_ms: 60_000,
            service_ports: [443, 80, 53, 8443],
        }
    }
}

impl BiflowConfig {
    /// True if the record looks like the client→server direction.
    fn is_forward(&self, rec: &FlowRecord) -> bool {
        let dst_is_service = self.service_ports.contains(&rec.key.dst_port);
        let src_is_service = self.service_ports.contains(&rec.key.src_port);
        match (dst_is_service, src_is_service) {
            (true, false) => true,
            (false, true) => false,
            // Ambiguous: fall back to the lower port heuristic.
            _ => rec.key.dst_port <= rec.key.src_port,
        }
    }
}

/// Pairs unidirectional records into biflows.
///
/// Records that never find a partner become one-sided biflows (common
/// under heavy sampling: usually only one direction survives).
pub fn merge_biflows(records: &[FlowRecord], config: &BiflowConfig) -> Vec<Biflow> {
    // Canonical key: the forward-direction 5-tuple.
    let mut open: HashMap<FlowKey, Vec<usize>> = HashMap::new();
    let mut out: Vec<Biflow> = Vec::new();

    for rec in records {
        let forward = config.is_forward(rec);
        let canonical = if forward { rec.key } else { rec.key.reversed() };

        // Try to complete an open half-biflow.
        let mut paired = false;
        if let Some(candidates) = open.get_mut(&canonical) {
            if let Some(pos) = candidates.iter().position(|&i| {
                let existing = &out[i];
                let other = if forward {
                    existing.reverse
                } else {
                    existing.forward
                };
                match other {
                    Some(o) => {
                        let gap = o.first_ms.abs_diff(rec.first_ms);
                        gap <= config.pairing_window_ms
                            && (if forward {
                                existing.forward.is_none()
                            } else {
                                existing.reverse.is_none()
                            })
                    }
                    None => false,
                }
            }) {
                let idx = candidates.swap_remove(pos);
                if forward {
                    out[idx].forward = Some(*rec);
                } else {
                    out[idx].reverse = Some(*rec);
                }
                paired = true;
            }
        }

        if !paired {
            let biflow = if forward {
                Biflow {
                    forward: Some(*rec),
                    reverse: None,
                }
            } else {
                Biflow {
                    forward: None,
                    reverse: Some(*rec),
                }
            };
            out.push(biflow);
            open.entry(canonical).or_default().push(out.len() - 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn down(client_port: u16, first_ms: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 1),
                443,
                Ipv4Addr::new(84, 0, 0, 1),
                client_port,
            ),
            packets: 10,
            bytes,
            first_ms,
            last_ms: first_ms + 1000,
            tcp_flags: 0x18,
        }
    }

    fn up(client_port: u16, first_ms: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            key: down(client_port, first_ms, bytes).key.reversed(),
            ..down(client_port, first_ms, bytes)
        }
    }

    #[test]
    fn pairs_matching_directions() {
        let records = vec![up(50_000, 100, 500), down(50_000, 120, 20_000)];
        let biflows = merge_biflows(&records, &BiflowConfig::default());
        assert_eq!(biflows.len(), 1);
        let b = &biflows[0];
        assert!(b.is_complete());
        assert_eq!(b.total_bytes(), 20_500);
        assert!(
            b.download_ratio() > 0.9,
            "downstream-heavy: {}",
            b.download_ratio()
        );
        // Forward is the client→server side (dst port 443).
        assert_eq!(b.forward.unwrap().key.dst_port, 443);
    }

    #[test]
    fn distinct_connections_stay_apart() {
        let records = vec![
            up(50_000, 0, 100),
            up(50_001, 0, 100),
            down(50_000, 10, 1000),
        ];
        let biflows = merge_biflows(&records, &BiflowConfig::default());
        assert_eq!(biflows.len(), 2);
        let complete = biflows.iter().filter(|b| b.is_complete()).count();
        assert_eq!(complete, 1);
    }

    #[test]
    fn pairing_window_respected() {
        // Same 5-tuple reused 10 minutes later: separate connections.
        let records = vec![up(50_000, 0, 100), down(50_000, 600_000, 1000)];
        let biflows = merge_biflows(&records, &BiflowConfig::default());
        assert_eq!(biflows.len(), 2);
        assert!(biflows.iter().all(|b| !b.is_complete()));
    }

    #[test]
    fn one_sided_flows_survive() {
        // Under 1:1000 sampling, usually only one direction is observed.
        let records = vec![down(50_000, 0, 5000)];
        let biflows = merge_biflows(&records, &BiflowConfig::default());
        assert_eq!(biflows.len(), 1);
        assert!(!biflows[0].is_complete());
        assert_eq!(biflows[0].reverse.unwrap().bytes, 5000);
        assert!((biflows[0].download_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_conservation() {
        let records: Vec<FlowRecord> = (0..40u16)
            .flat_map(|i| vec![up(50_000 + i, 0, 100), down(50_000 + i, 50, 1000)])
            .collect();
        let biflows = merge_biflows(&records, &BiflowConfig::default());
        // Every input record ends up on exactly one side of one biflow.
        let sides: usize = biflows
            .iter()
            .map(|b| usize::from(b.forward.is_some()) + usize::from(b.reverse.is_some()))
            .sum();
        assert_eq!(sides, records.len());
        assert!(biflows.iter().all(|b| b.is_complete()));
    }

    #[test]
    fn empty_input() {
        assert!(merge_biflows(&[], &BiflowConfig::default()).is_empty());
    }
}
