//! The router flow cache.
//!
//! Routers do not export one record per flow: a cache entry is created on
//! the first sampled packet of a 5-tuple and *expired* (exported) when
//!
//! * no packet arrived for `inactive_timeout` (idle flows),
//! * the entry has been open for `active_timeout` (long flows get split
//!   into several records),
//! * the cache is full (emergency expiry of the oldest entries), or
//! * the operator flushes the cache.
//!
//! Together with 1-in-N sampling, this is why the paper (§2) observes
//! "only few packets for most flows" and why flow-size-based
//! classification of app vs. website traffic was infeasible.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::flow::{FlowKey, FlowRecord};

/// Flow-cache timeout and capacity settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowCacheConfig {
    /// Expire entries idle for this long (ms). Cisco default: 15 s.
    pub inactive_timeout_ms: u64,
    /// Expire entries open for this long (ms). Cisco default: 30 min;
    /// ISPs commonly lower it to 60–120 s for timelier accounting.
    pub active_timeout_ms: u64,
    /// Maximum number of concurrent cache entries.
    pub max_entries: usize,
}

impl Default for FlowCacheConfig {
    fn default() -> Self {
        FlowCacheConfig {
            inactive_timeout_ms: 15_000,
            active_timeout_ms: 120_000,
            max_entries: 65_536,
        }
    }
}

/// A live cache entry (not yet exported).
#[derive(Debug, Clone, Copy)]
struct Entry {
    packets: u64,
    bytes: u64,
    first_ms: u64,
    last_ms: u64,
    tcp_flags: u8,
}

/// Statistics the cache keeps about its own operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Packets accounted into the cache.
    pub packets_seen: u64,
    /// Records expired due to the inactive timeout.
    pub expired_inactive: u64,
    /// Records expired due to the active timeout.
    pub expired_active: u64,
    /// Records expired because the cache was full.
    pub expired_emergency: u64,
    /// Records expired by an explicit flush.
    pub expired_flush: u64,
}

/// A router flow cache. Feed it (sampled) packets via
/// [`FlowCache::account`]; collect expired [`FlowRecord`]s via
/// [`FlowCache::take_expired`].
#[derive(Debug)]
pub struct FlowCache {
    config: FlowCacheConfig,
    entries: HashMap<FlowKey, Entry>,
    expired: Vec<FlowRecord>,
    stats: CacheStats,
}

impl FlowCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: FlowCacheConfig) -> Self {
        FlowCache {
            config,
            entries: HashMap::new(),
            expired: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Accounts one sampled packet of `bytes` bytes at time `now_ms`.
    ///
    /// Runs timeout-based expiry for the affected entry inline and
    /// emergency expiry when the cache is at capacity. Callers should
    /// also invoke [`FlowCache::sweep`] periodically to expire idle
    /// entries that receive no further packets.
    pub fn account(&mut self, key: FlowKey, bytes: u64, tcp_flags: u8, now_ms: u64) {
        self.stats.packets_seen += 1;

        if let Some(entry) = self.entries.get_mut(&key) {
            // Timeouts first: a packet after a long gap starts a new record.
            let idle = now_ms.saturating_sub(entry.last_ms) >= self.config.inactive_timeout_ms;
            let open_too_long =
                now_ms.saturating_sub(entry.first_ms) >= self.config.active_timeout_ms;
            if idle || open_too_long {
                let entry = self.entries.remove(&key).expect("entry just observed");
                self.expired.push(record(key, &entry));
                if idle {
                    self.stats.expired_inactive += 1;
                } else {
                    self.stats.expired_active += 1;
                }
            }
        }

        if let Some(entry) = self.entries.get_mut(&key) {
            entry.packets += 1;
            entry.bytes += bytes;
            entry.last_ms = now_ms;
            entry.tcp_flags |= tcp_flags;
            return;
        }

        // New entry. Make room if needed.
        if self.entries.len() >= self.config.max_entries {
            self.emergency_expire();
        }
        self.entries.insert(
            key,
            Entry {
                packets: 1,
                bytes,
                first_ms: now_ms,
                last_ms: now_ms,
                tcp_flags,
            },
        );
    }

    /// Expires everything that has timed out as of `now_ms`. Routers run
    /// this scan continuously; the simulator calls it once per time step.
    pub fn sweep(&mut self, now_ms: u64) {
        let inactive = self.config.inactive_timeout_ms;
        let active = self.config.active_timeout_ms;
        let mut dead: Vec<FlowKey> = Vec::new();
        for (key, entry) in &self.entries {
            if now_ms.saturating_sub(entry.last_ms) >= inactive {
                dead.push(*key);
                self.stats.expired_inactive += 1;
            } else if now_ms.saturating_sub(entry.first_ms) >= active {
                dead.push(*key);
                self.stats.expired_active += 1;
            }
        }
        // Deterministic export order regardless of hash-map iteration.
        dead.sort_unstable();
        for key in dead {
            let entry = self.entries.remove(&key).expect("key listed for expiry");
            self.expired.push(record(key, &entry));
        }
    }

    /// Flushes every remaining entry (end of measurement).
    pub fn flush(&mut self) {
        let mut keys: Vec<FlowKey> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let entry = self.entries.remove(&key).expect("key listed for flush");
            self.expired.push(record(key, &entry));
            self.stats.expired_flush += 1;
        }
    }

    /// Expires the oldest ~1/32 of entries to make room (emulating
    /// routers' emergency aging).
    fn emergency_expire(&mut self) {
        let victim_count = (self.config.max_entries / 32).max(1);
        let mut by_age: Vec<(u64, FlowKey)> =
            self.entries.iter().map(|(k, e)| (e.last_ms, *k)).collect();
        // Key as tie-breaker keeps victim choice deterministic.
        by_age.sort_unstable();
        for (_, key) in by_age.into_iter().take(victim_count) {
            let entry = self.entries.remove(&key).expect("victim key present");
            self.expired.push(record(key, &entry));
            self.stats.expired_emergency += 1;
        }
    }

    /// Takes all expired records accumulated so far.
    pub fn take_expired(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.expired)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Operational statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

fn record(key: FlowKey, entry: &Entry) -> FlowRecord {
    FlowRecord {
        key,
        packets: entry.packets,
        bytes: entry.bytes,
        first_ms: entry.first_ms,
        last_ms: entry.last_ms,
        tcp_flags: entry.tcp_flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(host: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(81, 200, 16, 1),
            443,
            Ipv4Addr::new(10, 0, 0, host),
            50_000,
        )
    }

    fn cfg() -> FlowCacheConfig {
        FlowCacheConfig {
            inactive_timeout_ms: 15_000,
            active_timeout_ms: 120_000,
            max_entries: 8,
        }
    }

    #[test]
    fn aggregates_packets_into_one_record() {
        let mut cache = FlowCache::new(cfg());
        for i in 0..5u64 {
            cache.account(key(1), 1400, 0x10, 1000 + i * 100);
        }
        assert_eq!(cache.len(), 1);
        cache.flush();
        let recs = cache.take_expired();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 5);
        assert_eq!(recs[0].bytes, 7000);
        assert_eq!(recs[0].first_ms, 1000);
        assert_eq!(recs[0].last_ms, 1400);
    }

    #[test]
    fn inactive_timeout_splits_records() {
        let mut cache = FlowCache::new(cfg());
        cache.account(key(1), 100, 0, 0);
        cache.account(key(1), 100, 0, 20_000); // 20 s gap > 15 s inactive
        cache.flush();
        let recs = cache.take_expired();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.packets == 1));
        assert_eq!(cache.stats().expired_inactive, 1);
    }

    #[test]
    fn active_timeout_splits_long_flows() {
        let mut cache = FlowCache::new(cfg());
        // A packet every 10 s for 5 minutes: never idle, but active
        // timeout (120 s) must split it into ~3 records.
        let mut t = 0u64;
        while t <= 300_000 {
            cache.account(key(1), 1400, 0x18, t);
            t += 10_000;
        }
        cache.flush();
        let recs = cache.take_expired();
        assert!(
            recs.len() >= 3,
            "long flow split into {} records",
            recs.len()
        );
        let total: u64 = recs.iter().map(|r| r.packets).sum();
        assert_eq!(total, 31, "no packets lost in splitting");
        assert!(cache.stats().expired_active >= 2);
    }

    #[test]
    fn sweep_expires_idle_entries() {
        let mut cache = FlowCache::new(cfg());
        cache.account(key(1), 100, 0, 0);
        cache.account(key(2), 100, 0, 10_000);
        cache.sweep(20_000);
        // key(1) idle 20 s -> expired; key(2) idle 10 s -> stays.
        assert_eq!(cache.len(), 1);
        let recs = cache.take_expired();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].key, key(1));
    }

    #[test]
    fn emergency_expiry_on_full_cache() {
        let mut cache = FlowCache::new(cfg()); // capacity 8
        for i in 0..9u8 {
            cache.account(key(i), 100, 0, u64::from(i) * 10);
        }
        assert!(cache.len() <= 8);
        assert!(cache.stats().expired_emergency >= 1);
        // The evicted entry is the oldest (key 0).
        let recs = cache.take_expired();
        assert_eq!(recs[0].key, key(0));
    }

    #[test]
    fn packet_conservation() {
        // Every accounted packet appears in exactly one record.
        let mut cache = FlowCache::new(cfg());
        let mut fed = 0u64;
        for step in 0..200u64 {
            let host = (step % 12) as u8;
            cache.account(key(host), 500, 0x10, step * 3_000);
            fed += 1;
            cache.sweep(step * 3_000);
        }
        cache.flush();
        let total: u64 = cache.take_expired().iter().map(|r| r.packets).sum();
        assert_eq!(total, fed);
        assert_eq!(cache.stats().packets_seen, fed);
    }

    #[test]
    fn tcp_flags_accumulate() {
        let mut cache = FlowCache::new(cfg());
        cache.account(key(1), 60, 0x02, 0); // SYN
        cache.account(key(1), 1400, 0x10, 100); // ACK
        cache.account(key(1), 60, 0x01, 200); // FIN
        cache.flush();
        let recs = cache.take_expired();
        assert_eq!(recs[0].tcp_flags, 0x13);
    }

    #[test]
    fn flush_on_empty_is_noop() {
        let mut cache = FlowCache::new(cfg());
        cache.flush();
        assert!(cache.take_expired().is_empty());
        assert!(cache.is_empty());
    }
}
