//! NetFlow version 9 — the template-based export format (RFC 3954).
//!
//! Modern ISP routers (including the class of devices at the paper's
//! vantage point) export v9 or IPFIX rather than fixed-layout v5. The
//! format is self-describing: **template FlowSets** (id 0) define record
//! layouts as lists of `(field type, length)` pairs; **data FlowSets**
//! (id ≥ 256) carry records laid out according to a previously announced
//! template. A collector must cache templates per exporter and cannot
//! decode data that arrives before its template — all of which this
//! module implements.
//!
//! Only the field types needed for the study's record set are emitted,
//! but the decoder skips unknown fields by length, as the RFC requires.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::flow::{FlowKey, FlowRecord, Protocol};

/// RFC 3954 field type: incoming byte count.
pub const IN_BYTES: u16 = 1;
/// RFC 3954 field type: incoming packet count.
pub const IN_PKTS: u16 = 2;
/// RFC 3954 field type: IP protocol.
pub const PROTOCOL: u16 = 4;
/// RFC 3954 field type: TCP flags.
pub const TCP_FLAGS: u16 = 6;
/// RFC 3954 field type: source transport port.
pub const L4_SRC_PORT: u16 = 7;
/// RFC 3954 field type: source IPv4 address.
pub const IPV4_SRC_ADDR: u16 = 8;
/// RFC 3954 field type: destination transport port.
pub const L4_DST_PORT: u16 = 11;
/// RFC 3954 field type: destination IPv4 address.
pub const IPV4_DST_ADDR: u16 = 12;
/// RFC 3954 field type: sysUptime at last packet.
pub const LAST_SWITCHED: u16 = 21;
/// RFC 3954 field type: sysUptime at first packet.
pub const FIRST_SWITCHED: u16 = 22;

/// The template id this exporter uses for its flow records.
pub const FLOW_TEMPLATE_ID: u16 = 256;

/// One `(type, length)` field specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// RFC 3954 field type.
    pub field_type: u16,
    /// Field length in bytes.
    pub length: u16,
}

/// A parsed template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id (≥ 256).
    pub id: u16,
    /// Ordered field specifiers.
    pub fields: Vec<FieldSpec>,
}

impl Template {
    /// The record layout this crate exports.
    pub fn standard() -> Self {
        Template {
            id: FLOW_TEMPLATE_ID,
            fields: vec![
                FieldSpec {
                    field_type: IPV4_SRC_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: IPV4_DST_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: L4_SRC_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: L4_DST_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: PROTOCOL,
                    length: 1,
                },
                FieldSpec {
                    field_type: TCP_FLAGS,
                    length: 1,
                },
                FieldSpec {
                    field_type: IN_PKTS,
                    length: 4,
                },
                FieldSpec {
                    field_type: IN_BYTES,
                    length: 4,
                },
                FieldSpec {
                    field_type: FIRST_SWITCHED,
                    length: 4,
                },
                FieldSpec {
                    field_type: LAST_SWITCHED,
                    length: 4,
                },
            ],
        }
    }

    /// Total record length in bytes.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| usize::from(f.length)).sum()
    }
}

/// v9 decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V9Error {
    /// Datagram shorter than the 20-byte header.
    TooShort,
    /// Version field was not 9.
    BadVersion(u16),
    /// A FlowSet length field was inconsistent.
    BadFlowSetLength,
    /// Data FlowSet references a template the collector has not seen.
    UnknownTemplate(u16),
    /// Template definition malformed.
    BadTemplate,
}

impl std::fmt::Display for V9Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            V9Error::TooShort => write!(f, "datagram shorter than v9 header"),
            V9Error::BadVersion(v) => write!(f, "expected version 9, got {v}"),
            V9Error::BadFlowSetLength => write!(f, "inconsistent FlowSet length"),
            V9Error::UnknownTemplate(id) => write!(f, "data FlowSet for unknown template {id}"),
            V9Error::BadTemplate => write!(f, "malformed template FlowSet"),
        }
    }
}

impl std::error::Error for V9Error {}

/// v9 exporter: emits a template FlowSet periodically (and in the first
/// datagram), then data FlowSets.
#[derive(Debug)]
pub struct V9Exporter {
    /// Exporter source id (observation domain).
    pub source_id: u32,
    template: Template,
    sequence: u32,
    /// Datagrams since the template was last included.
    since_template: u32,
    /// Re-announce the template every this many datagrams (RFC
    /// recommends periodic resends over unreliable transport).
    pub template_refresh: u32,
}

impl V9Exporter {
    /// Creates an exporter with the standard template.
    pub fn new(source_id: u32) -> Self {
        V9Exporter {
            source_id,
            template: Template::standard(),
            sequence: 0,
            since_template: u32::MAX, // force template in first datagram
            template_refresh: 20,
        }
    }

    /// Encodes one datagram carrying `records` (all of them; the caller
    /// chunks). Returns the wire bytes.
    pub fn export(&mut self, records: &[FlowRecord], unix_secs: u32, uptime_ms: u32) -> Bytes {
        let include_template = self.since_template >= self.template_refresh;
        let mut body = BytesMut::new();
        let mut set_count = 0u16;

        if include_template {
            // Template FlowSet: id 0.
            let mut tset = BytesMut::new();
            tset.put_u16(self.template.id);
            tset.put_u16(self.template.fields.len() as u16);
            for f in &self.template.fields {
                tset.put_u16(f.field_type);
                tset.put_u16(f.length);
            }
            body.put_u16(0); // FlowSet id 0 = template
            body.put_u16(4 + tset.len() as u16);
            body.put_slice(&tset);
            set_count += 1;
            self.since_template = 0;
        } else {
            self.since_template += 1;
        }

        if !records.is_empty() {
            let mut dset = BytesMut::new();
            for rec in records {
                dset.put_u32(u32::from(rec.key.src_ip));
                dset.put_u32(u32::from(rec.key.dst_ip));
                dset.put_u16(rec.key.src_port);
                dset.put_u16(rec.key.dst_port);
                dset.put_u8(rec.key.protocol.number());
                dset.put_u8(rec.tcp_flags);
                dset.put_u32(rec.packets.min(u64::from(u32::MAX)) as u32);
                dset.put_u32(rec.bytes.min(u64::from(u32::MAX)) as u32);
                dset.put_u32(rec.first_ms as u32);
                dset.put_u32(rec.last_ms as u32);
            }
            // Pad data FlowSets to a 4-byte boundary (RFC 3954 §5.3).
            while !dset.len().is_multiple_of(4) {
                dset.put_u8(0);
            }
            body.put_u16(self.template.id);
            body.put_u16(4 + dset.len() as u16);
            body.put_slice(&dset);
            set_count += 1;
        }

        let mut out = BytesMut::with_capacity(20 + body.len());
        out.put_u16(9);
        out.put_u16(set_count);
        out.put_u32(uptime_ms);
        out.put_u32(unix_secs);
        out.put_u32(self.sequence);
        out.put_u32(self.source_id);
        out.put_slice(&body);
        // v9 sequence counts *datagrams*, not records (unlike v5).
        self.sequence = self.sequence.wrapping_add(1);
        out.freeze()
    }
}

/// v9 collector-side decoder with a per-(exporter, template-id) cache.
#[derive(Debug, Default)]
pub struct V9Decoder {
    templates: HashMap<(u32, u16), Template>,
}

impl V9Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Decodes one datagram, returning the flow records of all data
    /// FlowSets whose template is known (templates seen in the same
    /// datagram count, as the RFC requires processing sets in order).
    pub fn decode(&mut self, mut data: Bytes) -> Result<Vec<FlowRecord>, V9Error> {
        if data.len() < 20 {
            return Err(V9Error::TooShort);
        }
        let version = data.get_u16();
        if version != 9 {
            return Err(V9Error::BadVersion(version));
        }
        let _count = data.get_u16();
        let _uptime = data.get_u32();
        let _unix_secs = data.get_u32();
        let _sequence = data.get_u32();
        let source_id = data.get_u32();

        let mut records = Vec::new();
        while data.len() >= 4 {
            let set_id = data.get_u16();
            let set_len = usize::from(data.get_u16());
            if set_len < 4 || set_len - 4 > data.len() {
                return Err(V9Error::BadFlowSetLength);
            }
            let mut set = data.split_to(set_len - 4);

            if set_id == 0 {
                // Template FlowSet: may define several templates.
                while set.len() >= 4 {
                    let tid = set.get_u16();
                    let field_count = usize::from(set.get_u16());
                    if set.len() < field_count * 4 {
                        return Err(V9Error::BadTemplate);
                    }
                    let mut fields = Vec::with_capacity(field_count);
                    for _ in 0..field_count {
                        fields.push(FieldSpec {
                            field_type: set.get_u16(),
                            length: set.get_u16(),
                        });
                    }
                    if tid < 256 {
                        return Err(V9Error::BadTemplate);
                    }
                    self.templates
                        .insert((source_id, tid), Template { id: tid, fields });
                }
            } else if set_id >= 256 {
                let template = self
                    .templates
                    .get(&(source_id, set_id))
                    .ok_or(V9Error::UnknownTemplate(set_id))?
                    .clone();
                let rec_len = template.record_len();
                if rec_len == 0 {
                    return Err(V9Error::BadTemplate);
                }
                while set.len() >= rec_len {
                    records.push(decode_record(&template, &mut set));
                }
                // Remainder is padding.
            }
            // FlowSet ids 1–255 are reserved (options templates etc.);
            // skipped by length.
        }
        Ok(records)
    }
}

/// Decodes one record according to `template`, skipping unknown fields.
fn decode_record(template: &Template, set: &mut Bytes) -> FlowRecord {
    let mut src_ip = Ipv4Addr::UNSPECIFIED;
    let mut dst_ip = Ipv4Addr::UNSPECIFIED;
    let mut src_port = 0u16;
    let mut dst_port = 0u16;
    let mut protocol = Protocol::Tcp;
    let mut tcp_flags = 0u8;
    let mut packets = 0u64;
    let mut bytes_ = 0u64;
    let mut first = 0u64;
    let mut last = 0u64;

    for f in &template.fields {
        match (f.field_type, f.length) {
            (IPV4_SRC_ADDR, 4) => src_ip = Ipv4Addr::from(set.get_u32()),
            (IPV4_DST_ADDR, 4) => dst_ip = Ipv4Addr::from(set.get_u32()),
            (L4_SRC_PORT, 2) => src_port = set.get_u16(),
            (L4_DST_PORT, 2) => dst_port = set.get_u16(),
            (PROTOCOL, 1) => {
                protocol = Protocol::from_number(set.get_u8()).unwrap_or(Protocol::Tcp)
            }
            (TCP_FLAGS, 1) => tcp_flags = set.get_u8(),
            (IN_PKTS, 4) => packets = u64::from(set.get_u32()),
            (IN_BYTES, 4) => bytes_ = u64::from(set.get_u32()),
            (FIRST_SWITCHED, 4) => first = u64::from(set.get_u32()),
            (LAST_SWITCHED, 4) => last = u64::from(set.get_u32()),
            (_, len) => set.advance(usize::from(len)), // unknown: skip
        }
    }

    FlowRecord {
        key: FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol,
        },
        packets,
        bytes: bytes_,
        first_ms: first,
        last_ms: last,
        tcp_flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 1),
                443,
                Ipv4Addr::new(84, 0, 0, i),
                50_000 + u16::from(i),
            ),
            packets: u64::from(i) + 1,
            bytes: (u64::from(i) + 1) * 1000,
            first_ms: 10_000,
            last_ms: 20_000 + u64::from(i),
            tcp_flags: 0x18,
        }
    }

    #[test]
    fn first_datagram_contains_template_and_roundtrips() {
        let mut exporter = V9Exporter::new(42);
        let records: Vec<_> = (0..7).map(rec).collect();
        let wire = exporter.export(&records, 1_592_179_200, 0);
        let mut decoder = V9Decoder::new();
        let out = decoder.decode(wire).unwrap();
        assert_eq!(out, records);
        assert_eq!(decoder.template_count(), 1);
    }

    #[test]
    fn data_before_template_rejected() {
        let mut exporter = V9Exporter::new(42);
        // Consume the template datagram, then decode only the second.
        let _first = exporter.export(&[rec(1)], 0, 0);
        let second = exporter.export(&[rec(2)], 0, 0);
        let mut decoder = V9Decoder::new();
        assert_eq!(
            decoder.decode(second),
            Err(V9Error::UnknownTemplate(FLOW_TEMPLATE_ID))
        );
    }

    #[test]
    fn template_cached_across_datagrams() {
        let mut exporter = V9Exporter::new(42);
        let d1 = exporter.export(&[rec(1)], 0, 0);
        let d2 = exporter.export(&[rec(2)], 0, 0);
        let mut decoder = V9Decoder::new();
        decoder.decode(d1).unwrap();
        let out = decoder.decode(d2).unwrap();
        assert_eq!(out, vec![rec(2)]);
    }

    #[test]
    fn templates_scoped_per_source_id() {
        let mut e1 = V9Exporter::new(1);
        let mut e2 = V9Exporter::new(2);
        let d1 = e1.export(&[rec(1)], 0, 0);
        let _t2 = e2.export(&[], 0, 0);
        let d2_data_only = e2.export(&[rec(2)], 0, 0);
        let mut decoder = V9Decoder::new();
        decoder.decode(d1).unwrap();
        // Source 2's data cannot use source 1's template… but source 2
        // announced its own template in _t2, which we dropped.
        assert_eq!(
            decoder.decode(d2_data_only),
            Err(V9Error::UnknownTemplate(FLOW_TEMPLATE_ID))
        );
    }

    #[test]
    fn template_refresh_interval() {
        let mut exporter = V9Exporter::new(9);
        exporter.template_refresh = 2;
        let sizes: Vec<usize> = (0..5)
            .map(|_| exporter.export(&[rec(1)], 0, 0).len())
            .collect();
        // Datagram 0 has the template; 1, 2 don't… wait: refresh=2 means
        // after 2 datagrams without it, re-announce. Pattern: T, -, -, T, -.
        assert!(sizes[0] > sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
        assert!(sizes[3] > sizes[2]);
    }

    #[test]
    fn decoder_skips_unknown_fields() {
        // Hand-craft a template with an unknown field type interleaved.
        let mut body = BytesMut::new();
        // Template FlowSet.
        let mut tset = BytesMut::new();
        tset.put_u16(300);
        tset.put_u16(3);
        tset.put_u16(IPV4_SRC_ADDR);
        tset.put_u16(4);
        tset.put_u16(61); // DIRECTION, unknown to our decoder
        tset.put_u16(1);
        tset.put_u16(IN_PKTS);
        tset.put_u16(4);
        body.put_u16(0);
        body.put_u16(4 + tset.len() as u16);
        body.put_slice(&tset);
        // Data FlowSet: one record + 3 bytes padding (9 -> 12).
        let mut dset = BytesMut::new();
        dset.put_u32(u32::from(Ipv4Addr::new(1, 2, 3, 4)));
        dset.put_u8(1);
        dset.put_u32(77);
        dset.put_slice(&[0, 0, 0]);
        body.put_u16(300);
        body.put_u16(4 + dset.len() as u16);
        body.put_slice(&dset);

        let mut out = BytesMut::new();
        out.put_u16(9);
        out.put_u16(2);
        out.put_u32(0);
        out.put_u32(0);
        out.put_u32(0);
        out.put_u32(5);
        out.put_slice(&body);

        let mut decoder = V9Decoder::new();
        let records = decoder.decode(out.freeze()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key.src_ip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(records[0].packets, 77);
    }

    #[test]
    fn rejects_garbage() {
        let mut decoder = V9Decoder::new();
        assert_eq!(
            decoder.decode(Bytes::from_static(&[1, 2, 3])),
            Err(V9Error::TooShort)
        );
        let mut bad = BytesMut::new();
        bad.put_u16(5);
        bad.put_slice(&[0u8; 18]);
        assert_eq!(decoder.decode(bad.freeze()), Err(V9Error::BadVersion(5)));
        // Inconsistent FlowSet length.
        let mut bad = BytesMut::new();
        bad.put_u16(9);
        bad.put_u16(1);
        bad.put_slice(&[0u8; 16]);
        bad.put_u16(0);
        bad.put_u16(200); // promises 196 more bytes; none follow
        assert_eq!(decoder.decode(bad.freeze()), Err(V9Error::BadFlowSetLength));
    }

    #[test]
    fn empty_export_is_template_only() {
        let mut exporter = V9Exporter::new(1);
        let wire = exporter.export(&[], 0, 0);
        let mut decoder = V9Decoder::new();
        let records = decoder.decode(wire).unwrap();
        assert!(records.is_empty());
        assert_eq!(decoder.template_count(), 1);
    }

    #[test]
    fn sequence_counts_datagrams() {
        let mut exporter = V9Exporter::new(1);
        let d1 = exporter.export(&[rec(1)], 0, 0);
        let d2 = exporter.export(&[rec(2)], 0, 0);
        // Sequence is bytes 12..16 of the header (after version, count,
        // sysUptime, unixSecs).
        assert_eq!(u32::from_be_bytes([d1[12], d1[13], d1[14], d1[15]]), 0);
        assert_eq!(u32::from_be_bytes([d2[12], d2[13], d2[14], d2[15]]), 1);
    }
}
