//! Streaming record consumers.
//!
//! The paper's vantage point never holds the full study's flow set in
//! memory — NetFlow is a *stream* of export records, and every analysis
//! in §2–§4 (hourly series, geolocation, persistence, outbreak windows)
//! is incrementally computable. [`FlowSink`] is the one-method contract
//! that lets producers (the collector, the simulated vantage point)
//! hand records to consumers chunk by chunk, so resident memory stays
//! O(chunk) instead of O(total records).

use crate::flow::FlowRecord;

/// A consumer of a stream of flow records.
///
/// Producers call [`observe`](FlowSink::observe) once per record, in
/// collection order, and [`finish`](FlowSink::finish) exactly once
/// after the last record. Implementations must not assume they see the
/// whole stream at once — that is the point.
pub trait FlowSink {
    /// Consumes one record. The record is borrowed; copy it only if it
    /// must outlive the call.
    fn observe(&mut self, rec: &FlowRecord);

    /// Signals the end of the stream. Default: no-op.
    fn finish(&mut self) {}

    /// Marks a producer-defined stream checkpoint (the simulated
    /// vantage point calls this at every export-hour boundary).
    /// Observation-only consumers use it to flush coalesced bookkeeping
    /// — e.g. trace spans — at a bounded cadence; it carries no stream
    /// data and the default is a no-op.
    fn checkpoint(&mut self) {}
}

/// The trivial batching sink: collects every record into a `Vec`. This
/// is how the streaming producers provide the legacy batch API.
impl FlowSink for Vec<FlowRecord> {
    fn observe(&mut self, rec: &FlowRecord) {
        self.push(*rec);
    }
}

/// A sink that only counts records — useful for memory-footprint
/// assertions and smoke tests where the records themselves are not
/// needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Records observed so far.
    pub records: u64,
    /// Whether `finish` has been called.
    pub finished: bool,
}

impl FlowSink for CountingSink {
    fn observe(&mut self, _rec: &FlowRecord) {
        self.records += 1;
    }

    fn finish(&mut self) {
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: Ipv4Addr::new(84, 0, 0, i),
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 100,
            first_ms: 0,
            last_ms: 10,
            tcp_flags: 0x18,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<FlowRecord> = Vec::new();
        for i in 0..5 {
            sink.observe(&rec(i));
        }
        sink.finish();
        assert_eq!(sink.len(), 5);
        assert_eq!(sink[3], rec(3));
    }

    #[test]
    fn counting_sink_counts_and_finishes() {
        let mut sink = CountingSink::default();
        sink.observe(&rec(0));
        sink.observe(&rec(1));
        assert_eq!(sink.records, 2);
        assert!(!sink.finished);
        sink.finish();
        assert!(sink.finished);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut v: Vec<FlowRecord> = Vec::new();
        let sink: &mut dyn FlowSink = &mut v;
        sink.observe(&rec(9));
        sink.finish();
        assert_eq!(v.len(), 1);
    }
}
