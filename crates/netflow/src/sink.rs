//! Streaming record consumers.
//!
//! The paper's vantage point never holds the full study's flow set in
//! memory — NetFlow is a *stream* of export records, and every analysis
//! in §2–§4 (hourly series, geolocation, persistence, outbreak windows)
//! is incrementally computable. [`FlowSink`] is the contract that lets
//! producers (the collector, the simulated vantage point) hand records
//! to consumers chunk by chunk, so resident memory stays O(chunk)
//! instead of O(total records).
//!
//! The primary contract is [`observe_chunk`](FlowSink::observe_chunk):
//! producers pack records into a columnar [`FlowChunk`]
//! (struct-of-arrays) and hand whole chunks across the dyn boundary, so
//! the per-record virtual call and the per-record filter evaluation both
//! amortize to one call per ~[`DEFAULT_CHUNK_CAPACITY`] records. Sinks
//! that only care about single records implement
//! [`observe`](FlowSink::observe) and inherit the default chunk shim.

use std::net::Ipv4Addr;

use crate::flow::{FlowKey, FlowRecord, Protocol};

/// Default number of records per [`FlowChunk`] on the hot path: large
/// enough to amortize dispatch, small enough to stay cache-resident
/// (~4096 × ~40 B of columns ≈ 160 KiB).
pub const DEFAULT_CHUNK_CAPACITY: usize = 4096;

/// A columnar batch of flow records (struct-of-arrays).
///
/// Each field of [`FlowRecord`] lives in its own parallel array, so
/// column-wise passes (the §2 filter, Crypto-PAn rewrites, per-hour
/// binning) touch only the bytes they need. IP addresses are stored as
/// big-endian-interpreted `u32`s (`u32::from(Ipv4Addr)`), protocols as
/// their IANA numbers.
#[derive(Debug, Clone, Default)]
pub struct FlowChunk {
    /// Source addresses, as `u32::from(src_ip)`.
    pub src_ip: Vec<u32>,
    /// Destination addresses, as `u32::from(dst_ip)`.
    pub dst_ip: Vec<u32>,
    /// Source ports.
    pub src_port: Vec<u16>,
    /// Destination ports.
    pub dst_port: Vec<u16>,
    /// IANA protocol numbers (6 = TCP, 17 = UDP, 1 = ICMP).
    pub protocol: Vec<u8>,
    /// Packet counts.
    pub packets: Vec<u64>,
    /// Byte counts.
    pub bytes: Vec<u64>,
    /// Flow start, ms since study start.
    pub first_ms: Vec<u64>,
    /// Flow end, ms since study start.
    pub last_ms: Vec<u64>,
    /// Cumulative TCP flags.
    pub tcp_flags: Vec<u8>,
}

impl FlowChunk {
    /// Creates an empty chunk with every column pre-sized to `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        FlowChunk {
            src_ip: Vec::with_capacity(capacity),
            dst_ip: Vec::with_capacity(capacity),
            src_port: Vec::with_capacity(capacity),
            dst_port: Vec::with_capacity(capacity),
            protocol: Vec::with_capacity(capacity),
            packets: Vec::with_capacity(capacity),
            bytes: Vec::with_capacity(capacity),
            first_ms: Vec::with_capacity(capacity),
            last_ms: Vec::with_capacity(capacity),
            tcp_flags: Vec::with_capacity(capacity),
        }
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.src_ip.len()
    }

    /// Whether the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.src_ip.is_empty()
    }

    /// Empties every column, keeping the allocations.
    pub fn clear(&mut self) {
        self.src_ip.clear();
        self.dst_ip.clear();
        self.src_port.clear();
        self.dst_port.clear();
        self.protocol.clear();
        self.packets.clear();
        self.bytes.clear();
        self.first_ms.clear();
        self.last_ms.clear();
        self.tcp_flags.clear();
    }

    /// Appends one record, decomposed into the columns.
    pub fn push(&mut self, rec: &FlowRecord) {
        self.src_ip.push(u32::from(rec.key.src_ip));
        self.dst_ip.push(u32::from(rec.key.dst_ip));
        self.src_port.push(rec.key.src_port);
        self.dst_port.push(rec.key.dst_port);
        self.protocol.push(rec.key.protocol.number());
        self.packets.push(rec.packets);
        self.bytes.push(rec.bytes);
        self.first_ms.push(rec.first_ms);
        self.last_ms.push(rec.last_ms);
        self.tcp_flags.push(rec.tcp_flags);
    }

    /// Copies row `i` of `other` onto the end of `self` (the columnar
    /// "gather" used by selection filters).
    pub fn push_row_from(&mut self, other: &FlowChunk, i: usize) {
        self.src_ip.push(other.src_ip[i]);
        self.dst_ip.push(other.dst_ip[i]);
        self.src_port.push(other.src_port[i]);
        self.dst_port.push(other.dst_port[i]);
        self.protocol.push(other.protocol[i]);
        self.packets.push(other.packets[i]);
        self.bytes.push(other.bytes[i]);
        self.first_ms.push(other.first_ms[i]);
        self.last_ms.push(other.last_ms[i]);
        self.tcp_flags.push(other.tcp_flags[i]);
    }

    /// Reassembles row `i` as a [`FlowRecord`].
    ///
    /// Panics if `i >= len()`; unknown protocol numbers (impossible for
    /// chunks built via [`push`](FlowChunk::push)) fall back to TCP.
    pub fn get(&self, i: usize) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::from(self.src_ip[i]),
                dst_ip: Ipv4Addr::from(self.dst_ip[i]),
                src_port: self.src_port[i],
                dst_port: self.dst_port[i],
                protocol: Protocol::from_number(self.protocol[i]).unwrap_or(Protocol::Tcp),
            },
            packets: self.packets[i],
            bytes: self.bytes[i],
            first_ms: self.first_ms[i],
            last_ms: self.last_ms[i],
            tcp_flags: self.tcp_flags[i],
        }
    }

    /// Iterates the chunk's rows as reassembled [`FlowRecord`]s.
    pub fn iter(&self) -> impl Iterator<Item = FlowRecord> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// A consumer of a stream of flow records.
///
/// Producers call [`observe_chunk`](FlowSink::observe_chunk) with
/// columnar batches, in collection order, and
/// [`finish`](FlowSink::finish) exactly once after the last record.
/// Implementations must not assume they see the whole stream at once —
/// that is the point.
pub trait FlowSink {
    /// Consumes one record. The record is borrowed; copy it only if it
    /// must outlive the call.
    fn observe(&mut self, rec: &FlowRecord);

    /// Consumes a columnar batch of records — the hot-path entry point.
    /// Default: loops [`observe`](FlowSink::observe) over the rows, so
    /// single-record sinks work unchanged. Chunk-aware sinks override
    /// this with a column-wise pass.
    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        for i in 0..chunk.len() {
            self.observe(&chunk.get(i));
        }
    }

    /// Signals the end of the stream. Default: no-op.
    fn finish(&mut self) {}

    /// Marks a producer-defined stream checkpoint (the simulated
    /// vantage point calls this at every export-hour boundary).
    /// Observation-only consumers use it to flush coalesced bookkeeping
    /// — e.g. trace spans — at a bounded cadence; it carries no stream
    /// data and the default is a no-op.
    fn checkpoint(&mut self) {}
}

/// The trivial batching sink: collects every record into a `Vec`. This
/// is how the streaming producers provide the legacy batch API.
impl FlowSink for Vec<FlowRecord> {
    fn observe(&mut self, rec: &FlowRecord) {
        self.push(*rec);
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.extend(chunk.iter());
    }
}

/// A sink that only counts records — useful for memory-footprint
/// assertions and smoke tests where the records themselves are not
/// needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Records observed so far.
    pub records: u64,
    /// Whether `finish` has been called.
    pub finished: bool,
}

impl FlowSink for CountingSink {
    fn observe(&mut self, _rec: &FlowRecord) {
        self.records += 1;
    }

    fn observe_chunk(&mut self, chunk: &FlowChunk) {
        self.records += chunk.len() as u64;
    }

    fn finish(&mut self) {
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowKey, Protocol};
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: Ipv4Addr::new(84, 0, 0, i),
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            },
            packets: 1,
            bytes: 100,
            first_ms: 0,
            last_ms: 10,
            tcp_flags: 0x18,
        }
    }

    fn chunk_of(n: u8) -> FlowChunk {
        let mut c = FlowChunk::with_capacity(n as usize);
        for i in 0..n {
            c.push(&rec(i));
        }
        c
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<FlowRecord> = Vec::new();
        for i in 0..5 {
            sink.observe(&rec(i));
        }
        sink.finish();
        assert_eq!(sink.len(), 5);
        assert_eq!(sink[3], rec(3));
    }

    #[test]
    fn counting_sink_counts_and_finishes() {
        let mut sink = CountingSink::default();
        sink.observe(&rec(0));
        sink.observe(&rec(1));
        assert_eq!(sink.records, 2);
        assert!(!sink.finished);
        sink.finish();
        assert!(sink.finished);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut v: Vec<FlowRecord> = Vec::new();
        let sink: &mut dyn FlowSink = &mut v;
        sink.observe(&rec(9));
        sink.observe_chunk(&chunk_of(3));
        sink.finish();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn chunk_roundtrips_records() {
        let c = chunk_of(7);
        assert_eq!(c.len(), 7);
        assert!(!c.is_empty());
        for i in 0..7 {
            assert_eq!(c.get(i), rec(i as u8), "row {i}");
        }
        let back: Vec<FlowRecord> = c.iter().collect();
        assert_eq!(back, (0..7).map(rec).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_push_row_from_gathers() {
        let c = chunk_of(5);
        let mut sel = FlowChunk::with_capacity(2);
        sel.push_row_from(&c, 1);
        sel.push_row_from(&c, 4);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.get(0), rec(1));
        assert_eq!(sel.get(1), rec(4));
        sel.clear();
        assert!(sel.is_empty());
    }

    #[test]
    fn chunk_sinks_match_per_record_paths() {
        let c = chunk_of(6);

        // Vec fast path == per-record shim.
        let mut fast: Vec<FlowRecord> = Vec::new();
        fast.observe_chunk(&c);
        let mut slow: Vec<FlowRecord> = Vec::new();
        for i in 0..c.len() {
            slow.observe(&c.get(i));
        }
        assert_eq!(fast, slow);

        // CountingSink fast path.
        let mut count = CountingSink::default();
        count.observe_chunk(&c);
        assert_eq!(count.records, 6);
    }
}
