//! The flow collector at the measurement vantage point.
//!
//! Ingests NetFlow v5 export datagrams from (possibly several) routers,
//! optionally applies Crypto-PAn anonymization to the *client* side of
//! each record before storage — mirroring how the paper's data set was
//! handed to the researchers already anonymized — and tracks export loss
//! via per-engine sequence numbers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::anonymize::CryptoPan;
use crate::flow::{in_prefix, FlowRecord};
use crate::v5::{ExportPacket, V5Error};

/// Per-engine sequence tracking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Datagrams received.
    pub packets: u64,
    /// Records received.
    pub records: u64,
    /// Records deduced lost from sequence gaps.
    pub lost_records: u64,
}

/// A collector accumulating anonymized flow records.
pub struct Collector {
    /// Anonymizer applied to client addresses (None = store raw).
    anonymizer: Option<CryptoPan>,
    /// Server-side prefixes: addresses inside are *not* anonymized
    /// (the CWA CDN prefixes are public knowledge; only clients are
    /// protected, exactly as in the paper's data set).
    server_prefixes: Vec<(Ipv4Addr, u8)>,
    records: Vec<FlowRecord>,
    engines: HashMap<u8, (Option<u32>, EngineStats)>,
}

impl Collector {
    /// Creates a collector that stores records as-is.
    pub fn new_raw() -> Self {
        Collector {
            anonymizer: None,
            server_prefixes: Vec::new(),
            records: Vec::new(),
            engines: HashMap::new(),
        }
    }

    /// Creates an anonymizing collector. Addresses within
    /// `server_prefixes` are preserved verbatim; all others are
    /// Crypto-PAn anonymized.
    pub fn new_anonymizing(key: &[u8; 32], server_prefixes: Vec<(Ipv4Addr, u8)>) -> Self {
        Collector {
            anonymizer: Some(CryptoPan::new(key)),
            server_prefixes,
            records: Vec::new(),
            engines: HashMap::new(),
        }
    }

    /// Ingests one encoded v5 datagram.
    pub fn ingest(&mut self, datagram: bytes::Bytes) -> Result<(), V5Error> {
        let packet = ExportPacket::decode(datagram)?;
        self.ingest_packet(packet);
        Ok(())
    }

    /// Ingests already-decoded records from a non-v5 exporter (e.g. a
    /// NetFlow v9 decoder). Applies the same anonymization policy;
    /// sequence-based loss tracking does not apply (v9 sequences count
    /// datagrams, which the transport layer accounts separately).
    pub fn ingest_records(&mut self, records: Vec<FlowRecord>, engine: u8) {
        let (_, stats) = self.engines.entry(engine).or_insert((None, EngineStats::default()));
        stats.records += records.len() as u64;
        for mut rec in records {
            if let Some(cp) = &self.anonymizer {
                if !self.server_prefixes.iter().any(|&(p, l)| in_prefix(rec.key.src_ip, p, l)) {
                    rec.key.src_ip = cp.anonymize(rec.key.src_ip);
                }
                if !self.server_prefixes.iter().any(|&(p, l)| in_prefix(rec.key.dst_ip, p, l)) {
                    rec.key.dst_ip = cp.anonymize(rec.key.dst_ip);
                }
            }
            self.records.push(rec);
        }
    }

    /// Ingests an already-decoded export packet.
    pub fn ingest_packet(&mut self, packet: ExportPacket) {
        let engine = packet.header.engine_id;
        let (last_seq, stats) = self.engines.entry(engine).or_insert((None, EngineStats::default()));
        stats.packets += 1;
        stats.records += packet.records.len() as u64;
        if let Some(expected) = *last_seq {
            let gap = packet.header.flow_sequence.wrapping_sub(expected);
            stats.lost_records += u64::from(gap);
        }
        *last_seq = Some(
            packet
                .header
                .flow_sequence
                .wrapping_add(packet.records.len() as u32),
        );

        for mut rec in packet.records {
            if let Some(cp) = &self.anonymizer {
                if !self.server_prefixes.iter().any(|&(p, l)| in_prefix(rec.key.src_ip, p, l)) {
                    rec.key.src_ip = cp.anonymize(rec.key.src_ip);
                }
                if !self.server_prefixes.iter().any(|&(p, l)| in_prefix(rec.key.dst_ip, p, l)) {
                    rec.key.dst_ip = cp.anonymize(rec.key.dst_ip);
                }
            }
            self.records.push(rec);
        }
    }

    /// All records collected so far.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Consumes the collector, returning its records.
    pub fn into_records(self) -> Vec<FlowRecord> {
        self.records
    }

    /// Per-engine statistics.
    pub fn engine_stats(&self, engine: u8) -> Option<EngineStats> {
        self.engines.get(&engine).map(|(_, s)| *s)
    }

    /// Total records deduced lost across all engines.
    pub fn total_lost(&self) -> u64 {
        self.engines.values().map(|(_, s)| s.lost_records).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::v5::{packetize, V5Header};

    fn record(client: Ipv4Addr) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(Ipv4Addr::new(81, 200, 16, 1), 443, client, 50_000),
            packets: 2,
            bytes: 2800,
            first_ms: 0,
            last_ms: 100,
            tcp_flags: 0x10,
        }
    }

    const SERVER_PREFIX: (Ipv4Addr, u8) = (Ipv4Addr::new(81, 200, 16, 0), 22);

    #[test]
    fn raw_collection_roundtrip() {
        let recs: Vec<FlowRecord> =
            (1..=5u8).map(|i| record(Ipv4Addr::new(10, 0, 0, i))).collect();
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_raw();
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        assert_eq!(col.records(), &recs[..]);
        assert_eq!(col.total_lost(), 0);
    }

    #[test]
    fn anonymizes_clients_not_servers() {
        let client = Ipv4Addr::new(93, 10, 20, 30);
        let recs = vec![record(client)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        let stored = &col.records()[0];
        assert_eq!(stored.key.src_ip, Ipv4Addr::new(81, 200, 16, 1), "server kept");
        assert_ne!(stored.key.dst_ip, client, "client anonymized");
    }

    #[test]
    fn anonymization_is_consistent_across_packets() {
        let client = Ipv4Addr::new(93, 10, 20, 30);
        let recs = vec![record(client), record(client)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        assert_eq!(col.records()[0].key.dst_ip, col.records()[1].key.dst_ip);
    }

    #[test]
    fn sequence_gap_detection() {
        let recs: Vec<FlowRecord> =
            (1..=60u8).map(|i| record(Ipv4Addr::new(10, 0, 0, i))).collect();
        let (pkts, _) = packetize(&recs, 7, 1000, 0, 0);
        assert_eq!(pkts.len(), 2);
        let mut col = Collector::new_raw();
        // Drop the first datagram: 30 records lost.
        col.ingest_packet(pkts[1].clone());
        // Need a successor to detect the gap? No: gap vs expected=none.
        // Feed a third synthetic packet continuing the sequence.
        let (more, _) = packetize(&recs[..5], 7, 1000, 0, 60);
        col.ingest_packet(more[0].clone());
        assert_eq!(col.total_lost(), 0, "no gap between consecutive packets");

        // Now an actual gap: sequence jumps by 10.
        let gap_pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs: 0,
                unix_nsecs: 0,
                flow_sequence: 75, // expected 65
                engine_type: 0,
                engine_id: 7,
                sampling: 0,
            },
            records: vec![record(Ipv4Addr::new(10, 9, 9, 9))],
        };
        col.ingest_packet(gap_pkt);
        assert_eq!(col.total_lost(), 10);
    }

    #[test]
    fn engines_tracked_separately() {
        let recs = vec![record(Ipv4Addr::new(10, 0, 0, 1))];
        let (p1, _) = packetize(&recs, 1, 1000, 0, 0);
        let (p2, _) = packetize(&recs, 2, 1000, 0, 0);
        let mut col = Collector::new_raw();
        col.ingest_packet(p1[0].clone());
        col.ingest_packet(p2[0].clone());
        assert_eq!(col.engine_stats(1).unwrap().records, 1);
        assert_eq!(col.engine_stats(2).unwrap().records, 1);
        assert!(col.engine_stats(3).is_none());
    }

    #[test]
    fn prefix_relationship_survives_anonymization() {
        // Two clients in the same /24 must stay in a shared /24.
        let c1 = Ipv4Addr::new(93, 10, 20, 1);
        let c2 = Ipv4Addr::new(93, 10, 20, 200);
        let recs = vec![record(c1), record(c2)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[5u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        let a1 = u32::from(col.records()[0].key.dst_ip);
        let a2 = u32::from(col.records()[1].key.dst_ip);
        assert_eq!(a1 >> 8, a2 >> 8);
    }
}
