//! The flow collector at the measurement vantage point.
//!
//! Ingests NetFlow v5 export datagrams from (possibly several) routers,
//! optionally applies Crypto-PAn anonymization to the *client* side of
//! each record before storage — mirroring how the paper's data set was
//! handed to the researchers already anonymized — and tracks export loss
//! via per-engine sequence numbers.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cwa_obs::{Counter, NameId, Registry, TraceBuf, Tracer};

use crate::anonymize::{CachedCryptoPan, CryptoPan};
use crate::flow::{in_prefix, FlowRecord};
use crate::sink::{FlowChunk, FlowSink, DEFAULT_CHUNK_CAPACITY};
use crate::v5::{ExportPacket, V5Error};

/// Observability handles for a [`Collector`] (all increments are single
/// relaxed atomics; name resolution happens once, here).
#[derive(Clone)]
pub struct CollectorMetrics {
    registry: Arc<Registry>,
    records: Arc<Counter>,
    bytes: Arc<Counter>,
    anonymized: Arc<Counter>,
    sequence_lost: Arc<Counter>,
    decode_errors: Arc<Counter>,
    cryptopan_hits: Arc<Counter>,
    cryptopan_misses: Arc<Counter>,
}

impl CollectorMetrics {
    /// Resolves the collector's counters in `registry`.
    pub fn new(registry: &Arc<Registry>) -> Self {
        CollectorMetrics {
            registry: Arc::clone(registry),
            records: registry.counter("netflow.collector.records"),
            bytes: registry.counter("netflow.collector.bytes"),
            anonymized: registry.counter("netflow.collector.anonymized_addresses"),
            sequence_lost: registry.counter("netflow.collector.sequence_lost"),
            decode_errors: registry.counter("netflow.collector.decode_errors"),
            cryptopan_hits: registry.counter("netflow.collector.cryptopan_cache_hits"),
            cryptopan_misses: registry.counter("netflow.collector.cryptopan_cache_misses"),
        }
    }
}

/// Flight-recorder handle for a [`Collector`]: every ingested export
/// datagram becomes one `collect.ingest` complete event on the owning
/// thread's trace buffer (names are interned once, here, so the ingest
/// path stays allocation-free).
pub struct CollectorTrace {
    buf: Arc<TraceBuf>,
    ingest: NameId,
}

impl CollectorTrace {
    /// Interns the collector's span names against `tracer`, recording
    /// onto `buf`.
    pub fn new(tracer: &Tracer, buf: Arc<TraceBuf>) -> Self {
        CollectorTrace {
            ingest: tracer.name("collect.ingest"),
            buf,
        }
    }
}

/// Per-engine sequence tracking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Datagrams received.
    pub packets: u64,
    /// Records received.
    pub records: u64,
    /// Records deduced lost from sequence gaps.
    pub lost_records: u64,
}

/// A collector accumulating anonymized flow records.
pub struct Collector {
    /// Anonymizer applied to client addresses (None = store raw).
    /// Memoized: repeated client addresses / shared /24s skip most of
    /// the 32-AES-block Crypto-PAn walk (see [`CachedCryptoPan`]).
    anonymizer: Option<CachedCryptoPan>,
    /// Server-side prefixes: addresses inside are *not* anonymized
    /// (the CWA CDN prefixes are public knowledge; only clients are
    /// protected, exactly as in the paper's data set).
    server_prefixes: Vec<(Ipv4Addr, u8)>,
    records: Vec<FlowRecord>,
    engines: HashMap<u8, (Option<u32>, EngineStats)>,
    metrics: Option<CollectorMetrics>,
    trace: Option<CollectorTrace>,
    peak_resident: usize,
    /// Records per [`FlowChunk`] handed to sinks by `drain_into`.
    chunk_capacity: usize,
    /// Reusable chunk scratch for `drain_into`.
    chunk: FlowChunk,
    /// Cache hit/miss totals already published to the metric counters.
    published_hits: u64,
    published_misses: u64,
}

impl Collector {
    /// Creates a collector that stores records as-is.
    pub fn new_raw() -> Self {
        Collector {
            anonymizer: None,
            server_prefixes: Vec::new(),
            records: Vec::new(),
            engines: HashMap::new(),
            metrics: None,
            trace: None,
            peak_resident: 0,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            chunk: FlowChunk::default(),
            published_hits: 0,
            published_misses: 0,
        }
    }

    /// Creates an anonymizing collector. Addresses within
    /// `server_prefixes` are preserved verbatim; all others are
    /// Crypto-PAn anonymized.
    pub fn new_anonymizing(key: &[u8; 32], server_prefixes: Vec<(Ipv4Addr, u8)>) -> Self {
        Collector {
            anonymizer: Some(CachedCryptoPan::new(CryptoPan::new(key))),
            server_prefixes,
            records: Vec::new(),
            engines: HashMap::new(),
            metrics: None,
            trace: None,
            peak_resident: 0,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            chunk: FlowChunk::default(),
            published_hits: 0,
            published_misses: 0,
        }
    }

    /// Attaches observability counters.
    pub fn set_metrics(&mut self, metrics: CollectorMetrics) {
        self.metrics = Some(metrics);
    }

    /// Sets the number of records per chunk that `drain_into` hands to
    /// sinks (default [`DEFAULT_CHUNK_CAPACITY`]). Chunk size never
    /// changes the record stream, only its batching — asserted by the
    /// chunk-size invariance tests.
    pub fn set_chunk_capacity(&mut self, capacity: usize) {
        self.chunk_capacity = capacity.max(1);
    }

    /// Crypto-PAn memo-cache totals as `(hits, misses)` — zero for a
    /// raw collector.
    pub fn cryptopan_cache_stats(&self) -> (u64, u64) {
        self.anonymizer
            .as_ref()
            .map_or((0, 0), |cp| (cp.hits(), cp.misses))
    }

    /// Attaches flight-recorder span recording.
    pub fn set_trace(&mut self, trace: CollectorTrace) {
        self.trace = Some(trace);
    }

    /// Counts one undecodable datagram (used by callers that decode
    /// other wire formats — e.g. NetFlow v9 — before `ingest_records`).
    pub fn note_decode_error(&self) {
        if let Some(m) = &self.metrics {
            m.decode_errors.inc();
        }
    }

    /// Ingests one encoded v5 datagram.
    pub fn ingest(&mut self, datagram: bytes::Bytes) -> Result<(), V5Error> {
        let packet = match ExportPacket::decode(datagram) {
            Ok(p) => p,
            Err(e) => {
                self.note_decode_error();
                return Err(e);
            }
        };
        self.ingest_packet(packet);
        Ok(())
    }

    /// Ingests already-decoded records from a non-v5 exporter (e.g. a
    /// NetFlow v9 decoder). Applies the same anonymization policy;
    /// sequence-based loss tracking does not apply (v9 sequences count
    /// datagrams, which the transport layer accounts separately).
    pub fn ingest_records(&mut self, records: Vec<FlowRecord>, engine: u8) {
        let (_, stats) = self
            .engines
            .entry(engine)
            .or_insert((None, EngineStats::default()));
        stats.records += records.len() as u64;
        if let Some(m) = &self.metrics {
            m.records.add(records.len() as u64);
            m.bytes.add(records.iter().map(|r| r.bytes).sum());
        }
        for mut rec in records {
            anonymize_record(
                &mut self.anonymizer,
                &self.server_prefixes,
                &self.metrics,
                &mut rec,
            );
            self.records.push(rec);
        }
        self.peak_resident = self.peak_resident.max(self.records.len());
        self.publish_cache_deltas();
    }

    /// Ingests an already-decoded export packet.
    ///
    /// Sequence accounting handles the two realities of UDP export:
    /// the 32-bit flow sequence **wraps**, and datagrams can arrive
    /// **out of order**. A forward gap (≤ half the sequence space,
    /// computed with wrapping arithmetic so it is wrap-safe) counts its
    /// records as lost; a datagram from the *past* (wrapped distance in
    /// the upper half) is a late arrival whose records were already
    /// counted lost when the gap opened, so they are reclaimed instead
    /// — `lost_records` can neither underflow nor explode.
    pub fn ingest_packet(&mut self, packet: ExportPacket) {
        let ingest_start = self.trace.as_ref().map(|t| t.buf.now_ns());
        let engine = packet.header.engine_id;
        let (last_seq, stats) = self
            .engines
            .entry(engine)
            .or_insert((None, EngineStats::default()));
        stats.packets += 1;
        stats.records += packet.records.len() as u64;
        if let Some(m) = &self.metrics {
            m.records.add(packet.records.len() as u64);
            m.bytes.add(packet.records.iter().map(|r| r.bytes).sum());
        }
        let seq = packet.header.flow_sequence;
        let advance = packet.records.len() as u32;
        match *last_seq {
            None => *last_seq = Some(seq.wrapping_add(advance)),
            Some(expected) => {
                let gap = seq.wrapping_sub(expected);
                if gap == 0 {
                    *last_seq = Some(seq.wrapping_add(advance));
                } else if gap <= u32::MAX / 2 {
                    stats.lost_records += u64::from(gap);
                    if let Some(m) = &self.metrics {
                        m.sequence_lost.add(u64::from(gap));
                        m.registry
                            .counter(&format!("netflow.collector.engine{engine:02}.lost_records"))
                            .add(u64::from(gap));
                    }
                    *last_seq = Some(seq.wrapping_add(advance));
                } else {
                    // Late/reordered datagram: reclaim its records from
                    // the loss count, keep the sequence high-water mark.
                    stats.lost_records = stats.lost_records.saturating_sub(u64::from(advance));
                }
            }
        }

        for mut rec in packet.records {
            anonymize_record(
                &mut self.anonymizer,
                &self.server_prefixes,
                &self.metrics,
                &mut rec,
            );
            self.records.push(rec);
        }
        self.peak_resident = self.peak_resident.max(self.records.len());
        self.publish_cache_deltas();
        if let (Some(t), Some(start)) = (&self.trace, ingest_start) {
            t.buf
                .complete(t.ingest, start, t.buf.now_ns().saturating_sub(start));
        }
    }

    /// Publishes the memo cache's hit/miss growth since the last call
    /// to the metric counters (cheap: two adds per export datagram).
    fn publish_cache_deltas(&mut self) {
        let (Some(m), Some(cp)) = (&self.metrics, &self.anonymizer) else {
            return;
        };
        let (hits, misses) = (cp.hits(), cp.misses);
        m.cryptopan_hits.add(hits - self.published_hits);
        m.cryptopan_misses.add(misses - self.published_misses);
        self.published_hits = hits;
        self.published_misses = misses;
    }

    /// All records collected so far.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Consumes the collector, returning its records.
    pub fn into_records(self) -> Vec<FlowRecord> {
        self.records
    }

    /// Streams every resident record into `sink` (in collection order)
    /// as columnar [`FlowChunk`]s of at most `chunk_capacity` records,
    /// then clears the buffer, keeping its capacity. This is the
    /// batched emission primitive: draining after every export round
    /// bounds the collector's resident set to one export round, and the
    /// chunking amortizes the sink's dyn dispatch to one call per chunk.
    pub fn drain_into(&mut self, sink: &mut dyn FlowSink) {
        let cap = self.chunk_capacity;
        let mut chunk = std::mem::take(&mut self.chunk);
        chunk.clear();
        for rec in &self.records {
            chunk.push(rec);
            if chunk.len() >= cap {
                sink.observe_chunk(&chunk);
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            sink.observe_chunk(&chunk);
            chunk.clear();
        }
        self.chunk = chunk;
        self.records.clear();
    }

    /// High-water mark of records resident in the collector at once.
    /// Under chunked draining this is the chunk size; under batch
    /// collection it equals the total record count.
    pub fn peak_resident_records(&self) -> usize {
        self.peak_resident
    }

    /// Per-engine statistics.
    pub fn engine_stats(&self, engine: u8) -> Option<EngineStats> {
        self.engines.get(&engine).map(|(_, s)| *s)
    }

    /// Total records deduced lost across all engines.
    pub fn total_lost(&self) -> u64 {
        self.engines.values().map(|(_, s)| s.lost_records).sum()
    }
}

/// Applies the anonymization policy to one record, counting rewrites.
fn anonymize_record(
    anonymizer: &mut Option<CachedCryptoPan>,
    server_prefixes: &[(Ipv4Addr, u8)],
    metrics: &Option<CollectorMetrics>,
    rec: &mut FlowRecord,
) {
    let Some(cp) = anonymizer else { return };
    if !server_prefixes
        .iter()
        .any(|&(p, l)| in_prefix(rec.key.src_ip, p, l))
    {
        rec.key.src_ip = cp.anonymize(rec.key.src_ip);
        if let Some(m) = metrics {
            m.anonymized.inc();
        }
    }
    if !server_prefixes
        .iter()
        .any(|&(p, l)| in_prefix(rec.key.dst_ip, p, l))
    {
        rec.key.dst_ip = cp.anonymize(rec.key.dst_ip);
        if let Some(m) = metrics {
            m.anonymized.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::v5::{packetize, V5Header};

    fn record(client: Ipv4Addr) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(Ipv4Addr::new(81, 200, 16, 1), 443, client, 50_000),
            packets: 2,
            bytes: 2800,
            first_ms: 0,
            last_ms: 100,
            tcp_flags: 0x10,
        }
    }

    const SERVER_PREFIX: (Ipv4Addr, u8) = (Ipv4Addr::new(81, 200, 16, 0), 22);

    #[test]
    fn raw_collection_roundtrip() {
        let recs: Vec<FlowRecord> = (1..=5u8)
            .map(|i| record(Ipv4Addr::new(10, 0, 0, i)))
            .collect();
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_raw();
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        assert_eq!(col.records(), &recs[..]);
        assert_eq!(col.total_lost(), 0);
    }

    #[test]
    fn anonymizes_clients_not_servers() {
        let client = Ipv4Addr::new(93, 10, 20, 30);
        let recs = vec![record(client)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        let stored = &col.records()[0];
        assert_eq!(
            stored.key.src_ip,
            Ipv4Addr::new(81, 200, 16, 1),
            "server kept"
        );
        assert_ne!(stored.key.dst_ip, client, "client anonymized");
    }

    #[test]
    fn anonymization_is_consistent_across_packets() {
        let client = Ipv4Addr::new(93, 10, 20, 30);
        let recs = vec![record(client), record(client)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        assert_eq!(col.records()[0].key.dst_ip, col.records()[1].key.dst_ip);
    }

    #[test]
    fn sequence_gap_detection() {
        let recs: Vec<FlowRecord> = (1..=60u8)
            .map(|i| record(Ipv4Addr::new(10, 0, 0, i)))
            .collect();
        let (pkts, _) = packetize(&recs, 7, 1000, 0, 0);
        assert_eq!(pkts.len(), 2);
        let mut col = Collector::new_raw();
        // Drop the first datagram: 30 records lost.
        col.ingest_packet(pkts[1].clone());
        // Need a successor to detect the gap? No: gap vs expected=none.
        // Feed a third synthetic packet continuing the sequence.
        let (more, _) = packetize(&recs[..5], 7, 1000, 0, 60);
        col.ingest_packet(more[0].clone());
        assert_eq!(col.total_lost(), 0, "no gap between consecutive packets");

        // Now an actual gap: sequence jumps by 10.
        let gap_pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs: 0,
                unix_nsecs: 0,
                flow_sequence: 75, // expected 65
                engine_type: 0,
                engine_id: 7,
                sampling: 0,
            },
            records: vec![record(Ipv4Addr::new(10, 9, 9, 9))],
        };
        col.ingest_packet(gap_pkt);
        assert_eq!(col.total_lost(), 10);
    }

    /// Builds a packet with an explicit sequence number and record count.
    fn seq_pkt(engine: u8, flow_sequence: u32, n_records: u8) -> ExportPacket {
        ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs: 0,
                unix_nsecs: 0,
                flow_sequence,
                engine_type: 0,
                engine_id: engine,
                sampling: 0,
            },
            records: (1..=n_records)
                .map(|i| record(Ipv4Addr::new(10, 1, 0, i)))
                .collect(),
        }
    }

    #[test]
    fn sequence_wraparound_is_not_loss() {
        let mut col = Collector::new_raw();
        // 3 records ending exactly at the u32 boundary: next expected
        // wraps to 0, then to 2.
        col.ingest_packet(seq_pkt(3, u32::MAX - 2, 3));
        col.ingest_packet(seq_pkt(3, 0, 2));
        col.ingest_packet(seq_pkt(3, 2, 1));
        assert_eq!(col.total_lost(), 0, "clean wrap must not count loss");

        // A real gap of 4 records straddling nothing special.
        col.ingest_packet(seq_pkt(3, 7, 1));
        assert_eq!(col.total_lost(), 4, "post-wrap gaps still detected");
    }

    #[test]
    fn sequence_gap_across_wrap_detected() {
        let mut col = Collector::new_raw();
        col.ingest_packet(seq_pkt(4, u32::MAX - 9, 5)); // next expected: MAX-4
        col.ingest_packet(seq_pkt(4, 1, 2)); // wrapped gap of 6
        assert_eq!(col.total_lost(), 6);
    }

    #[test]
    fn out_of_order_datagram_does_not_explode_loss() {
        let mut col = Collector::new_raw();
        col.ingest_packet(seq_pkt(5, 100, 30)); // next expected: 130
                                                // The seq-130 datagram is delayed; seq-160 arrives first.
        col.ingest_packet(seq_pkt(5, 160, 10)); // gap of 30 counted lost
        assert_eq!(col.total_lost(), 30);
        // The late datagram finally arrives: its 30 records are
        // reclaimed, not treated as a ~u32::MAX forward gap.
        col.ingest_packet(seq_pkt(5, 130, 30));
        assert_eq!(col.total_lost(), 0, "late arrival reclaims counted loss");
        // Sequence tracking still anchored at the high-water mark.
        col.ingest_packet(seq_pkt(5, 170, 1));
        assert_eq!(col.total_lost(), 0);
    }

    #[test]
    fn duplicate_datagram_cannot_underflow_loss() {
        let mut col = Collector::new_raw();
        col.ingest_packet(seq_pkt(6, 10, 5)); // next expected: 15
        col.ingest_packet(seq_pkt(6, 10, 5)); // exact duplicate (from the past)
        col.ingest_packet(seq_pkt(6, 10, 5));
        assert_eq!(col.total_lost(), 0, "saturating reclaim, no underflow");
        col.ingest_packet(seq_pkt(6, 15, 1));
        assert_eq!(col.total_lost(), 0, "tracking recovers after duplicates");
    }

    #[test]
    fn metrics_count_records_loss_and_anonymization() {
        use std::sync::Arc;
        let registry = Arc::new(Registry::new());
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        col.set_metrics(CollectorMetrics::new(&registry));
        col.ingest_packet(seq_pkt(7, 0, 5)); // next expected: 5
        col.ingest_packet(seq_pkt(7, 8, 2)); // gap of 3
        assert_eq!(registry.counter("netflow.collector.records").get(), 7);
        assert_eq!(
            registry.counter("netflow.collector.bytes").get(),
            7 * 2800,
            "every ingested record's bytes are accounted"
        );
        assert_eq!(registry.counter("netflow.collector.sequence_lost").get(), 3);
        assert_eq!(
            registry
                .counter("netflow.collector.engine07.lost_records")
                .get(),
            3
        );
        // One client address anonymized per record (servers exempt).
        assert_eq!(
            registry
                .counter("netflow.collector.anonymized_addresses")
                .get(),
            7
        );
        assert_eq!(registry.counter("netflow.collector.decode_errors").get(), 0);
    }

    #[test]
    fn trace_records_one_ingest_span_per_datagram() {
        let tracer = Tracer::new();
        let buf = tracer.thread(0, 0, "collector");
        let mut col = Collector::new_raw();
        col.set_trace(CollectorTrace::new(&tracer, Arc::clone(&buf)));
        col.ingest_packet(seq_pkt(1, 0, 3));
        col.ingest_packet(seq_pkt(1, 3, 2));
        let json = tracer.to_chrome_json();
        assert_eq!(json.matches("\"collect.ingest\"").count(), 2);
        // Tracing is observation-only: the records are unaffected.
        assert_eq!(col.records().len(), 5);
    }

    #[test]
    fn engines_tracked_separately() {
        let recs = vec![record(Ipv4Addr::new(10, 0, 0, 1))];
        let (p1, _) = packetize(&recs, 1, 1000, 0, 0);
        let (p2, _) = packetize(&recs, 2, 1000, 0, 0);
        let mut col = Collector::new_raw();
        col.ingest_packet(p1[0].clone());
        col.ingest_packet(p2[0].clone());
        assert_eq!(col.engine_stats(1).unwrap().records, 1);
        assert_eq!(col.engine_stats(2).unwrap().records, 1);
        assert!(col.engine_stats(3).is_none());
    }

    #[test]
    fn drain_into_preserves_order_and_bounds_residency() {
        let recs: Vec<FlowRecord> = (1..=60u8)
            .map(|i| record(Ipv4Addr::new(10, 0, 0, i)))
            .collect();
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        assert!(pkts.len() >= 2, "need several chunks");

        // Drained after every packet: peak residency is one packet's
        // worth of records, and the drained stream equals the batch.
        let mut drained: Vec<FlowRecord> = Vec::new();
        let mut col = Collector::new_raw();
        for p in &pkts {
            col.ingest_packet(p.clone());
            col.drain_into(&mut drained);
        }
        assert_eq!(drained, recs);
        assert!(col.records().is_empty());
        assert!(col.peak_resident_records() < recs.len());

        // Batch collection: peak residency equals the total.
        let mut batch = Collector::new_raw();
        for p in &pkts {
            batch.ingest_packet(p.clone());
        }
        assert_eq!(batch.peak_resident_records(), recs.len());
    }

    #[test]
    fn cache_counters_published_and_stream_unchanged() {
        use std::sync::Arc;
        let registry = Arc::new(Registry::new());
        // Two records per client address: the second visit of each
        // address is a full-address cache hit.
        let clients: Vec<Ipv4Addr> = (1..=10u8).map(|i| Ipv4Addr::new(93, 10, 20, i)).collect();
        let recs: Vec<FlowRecord> = clients
            .iter()
            .chain(clients.iter())
            .map(|&c| record(c))
            .collect();
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[9u8; 32], vec![SERVER_PREFIX]);
        col.set_metrics(CollectorMetrics::new(&registry));
        for p in &pkts {
            col.ingest_packet(p.clone());
        }
        let (hits, misses) = col.cryptopan_cache_stats();
        assert!(hits >= 10, "second visits hit: {hits}");
        // All clients share a /24, so only the very first address pays
        // the full 32-block walk.
        assert_eq!(misses, 1, "one cold /24");
        assert_eq!(
            registry
                .counter("netflow.collector.cryptopan_cache_hits")
                .get(),
            hits
        );
        assert_eq!(
            registry
                .counter("netflow.collector.cryptopan_cache_misses")
                .get(),
            misses
        );
        // Caching is invisible in the record stream: same outputs as an
        // identically keyed uncached walk.
        let cp = CryptoPan::new(&[9u8; 32]);
        for (stored, orig) in col.records().iter().zip(&recs) {
            assert_eq!(stored.key.dst_ip, cp.anonymize(orig.key.dst_ip));
        }
    }

    #[test]
    fn drain_chunk_capacity_invariant() {
        let recs: Vec<FlowRecord> = (1..=60u8)
            .map(|i| record(Ipv4Addr::new(10, 0, 0, i)))
            .collect();
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        for cap in [1usize, 7, 4096] {
            let mut col = Collector::new_raw();
            col.set_chunk_capacity(cap);
            let mut drained: Vec<FlowRecord> = Vec::new();
            for p in &pkts {
                col.ingest_packet(p.clone());
            }
            col.drain_into(&mut drained);
            assert_eq!(drained, recs, "chunk capacity {cap}");
        }
    }

    #[test]
    fn prefix_relationship_survives_anonymization() {
        // Two clients in the same /24 must stay in a shared /24.
        let c1 = Ipv4Addr::new(93, 10, 20, 1);
        let c2 = Ipv4Addr::new(93, 10, 20, 200);
        let recs = vec![record(c1), record(c2)];
        let (pkts, _) = packetize(&recs, 1, 1000, 0, 0);
        let mut col = Collector::new_anonymizing(&[5u8; 32], vec![SERVER_PREFIX]);
        for p in pkts {
            col.ingest(p.encode()).unwrap();
        }
        let a1 = u32::from(col.records()[0].key.dst_ip);
        let a2 = u32::from(col.records()[1].key.dst_ip);
        assert_eq!(a1 >> 8, a2 >> 8);
    }
}
