//! Packet sampling, as configured on the measured routers.
//!
//! ISP-scale NetFlow is almost always *sampled*: the router inspects only
//! one in N packets. The paper's §2 limitation — "sampling result\[s\] in
//! only observing few packets for most flows" — emerges directly from
//! this. Two sampler flavours are provided:
//!
//! * **Deterministic**: every N-th packet (Cisco "deterministic" mode),
//! * **Random**: each packet independently with probability 1/N.
//!
//! For the cohort-level traffic generator (which never materializes
//! individual packets of bulk flows) [`sample_packet_count`] draws the
//! number of sampled packets of an n-packet flow directly from
//! Binomial(n, 1/N).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sampler flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// Select every N-th packet.
    Deterministic,
    /// Select each packet independently with probability 1/N.
    Random,
}

/// A 1-in-N packet sampler.
#[derive(Debug, Clone)]
pub struct PacketSampler {
    /// The sampling interval N (1 = unsampled).
    pub interval: u32,
    mode: SamplingMode,
    counter: u32,
}

impl PacketSampler {
    /// Creates a sampler with interval `n` (clamped to ≥ 1).
    pub fn new(n: u32, mode: SamplingMode) -> Self {
        PacketSampler {
            interval: n.max(1),
            mode,
            counter: 0,
        }
    }

    /// Decides whether the next packet is sampled.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> bool {
        match self.mode {
            SamplingMode::Deterministic => {
                self.counter += 1;
                if self.counter >= self.interval {
                    self.counter = 0;
                    true
                } else {
                    false
                }
            }
            SamplingMode::Random => self.interval == 1 || rng.gen_range(0..self.interval) == 0,
        }
    }
}

/// Draws how many of `packets` packets a 1-in-`n` random sampler selects:
/// a Binomial(packets, 1/n) sample.
///
/// Exact at every flow size via [`cwa_samplers::binomial`] — BINV
/// inversion (one uniform) in the sparse regime the §2 phenomenon
/// lives in, BTPE rejection for bulk flows. This replaced a
/// per-packet Bernoulli loop (up to 64 uniforms per flow, the
/// generator's single hottest RNG sink) and an *approximate*
/// clamped-normal path above 64 packets.
pub fn sample_packet_count<R: Rng>(rng: &mut R, packets: u64, n: u32) -> u64 {
    let n = n.max(1);
    if n == 1 {
        return packets;
    }
    cwa_samplers::binomial(rng, packets, 1.0 / f64::from(n))
}

/// Scales sampled packet/byte counts back up by the sampling interval —
/// what a collector does when estimating true volumes.
pub fn upscale(sampled: u64, interval: u32) -> u64 {
    sampled.saturating_mul(u64::from(interval.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_exact_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut s = PacketSampler::new(10, SamplingMode::Deterministic);
        let hits = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert_eq!(hits, 100);
    }

    #[test]
    fn deterministic_pattern_every_nth() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut s = PacketSampler::new(4, SamplingMode::Deterministic);
        let picks: Vec<bool> = (0..8).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(
            picks,
            [false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn random_rate_close_to_expected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut s = PacketSampler::new(100, SamplingMode::Random);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| s.sample(&mut rng)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn interval_one_samples_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for mode in [SamplingMode::Deterministic, SamplingMode::Random] {
            let mut s = PacketSampler::new(1, mode);
            assert!((0..100).all(|_| s.sample(&mut rng)));
        }
    }

    #[test]
    fn zero_interval_clamped() {
        let s = PacketSampler::new(0, SamplingMode::Random);
        assert_eq!(s.interval, 1);
    }

    #[test]
    fn binomial_small_flow_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total = 0u64;
        let trials = 50_000;
        for _ in 0..trials {
            total += sample_packet_count(&mut rng, 20, 10);
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_large_flow_mean_and_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut total = 0u64;
        let trials = 20_000;
        for _ in 0..trials {
            let k = sample_packet_count(&mut rng, 10_000, 100);
            assert!(k <= 10_000);
            total += k;
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn most_small_flows_unobserved_at_isp_sampling() {
        // The §2 phenomenon: with 1:1000 sampling, a 10-packet flow is
        // almost never seen, and when seen shows ~1 packet.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = 0u32;
        let mut seen_packets = 0u64;
        for _ in 0..100_000 {
            let k = sample_packet_count(&mut rng, 10, 1000);
            if k > 0 {
                seen += 1;
                seen_packets += k;
            }
        }
        let frac_seen = f64::from(seen) / 100_000.0;
        assert!(frac_seen < 0.02, "fraction seen {frac_seen}");
        let avg_when_seen = seen_packets as f64 / f64::from(seen.max(1));
        assert!(avg_when_seen < 1.2, "avg packets when seen {avg_when_seen}");
    }

    #[test]
    fn upscale_estimates() {
        assert_eq!(upscale(3, 1000), 3000);
        assert_eq!(upscale(0, 1000), 0);
        assert_eq!(upscale(7, 0), 7);
    }

    #[test]
    fn unsampled_passthrough() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(sample_packet_count(&mut rng, 123, 1), 123);
    }
}
