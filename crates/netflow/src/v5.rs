//! NetFlow version 5 export wire format.
//!
//! The classic fixed-layout export datagram: a 24-byte header followed by
//! up to 30 records of 48 bytes each. Field layout follows Cisco's
//! NetFlow v5 documentation. The router exports expired cache entries in
//! these datagrams to the collector; sequence numbers allow the collector
//! to detect export loss.

use std::net::Ipv4Addr;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::flow::{FlowKey, FlowRecord, Protocol};

/// Maximum records per v5 datagram.
pub const MAX_RECORDS_PER_PACKET: usize = 30;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Record size in bytes.
pub const RECORD_LEN: usize = 48;

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V5Error {
    /// Datagram shorter than a header.
    TooShort,
    /// Version field was not 5.
    BadVersion(u16),
    /// Header count disagrees with datagram length.
    CountMismatch {
        /// records promised by the header
        promised: u16,
        /// records actually present
        actual: usize,
    },
    /// Record count exceeds the protocol maximum.
    TooManyRecords(u16),
}

impl std::fmt::Display for V5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            V5Error::TooShort => write!(f, "datagram shorter than v5 header"),
            V5Error::BadVersion(v) => write!(f, "expected version 5, got {v}"),
            V5Error::CountMismatch { promised, actual } => {
                write!(
                    f,
                    "header promises {promised} records, datagram holds {actual}"
                )
            }
            V5Error::TooManyRecords(n) => write!(f, "{n} records exceeds v5 maximum of 30"),
        }
    }
}

impl std::error::Error for V5Error {}

/// The v5 datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V5Header {
    /// Milliseconds since router boot.
    pub sys_uptime_ms: u32,
    /// Export wall-clock, seconds.
    pub unix_secs: u32,
    /// Export wall-clock, residual nanoseconds.
    pub unix_nsecs: u32,
    /// Total flows exported by this device before this datagram.
    pub flow_sequence: u32,
    /// Engine type (0 for our simulated routers).
    pub engine_type: u8,
    /// Engine/slot id (we use it as a router id).
    pub engine_id: u8,
    /// Two sampling-mode bits and a 14-bit sampling interval.
    pub sampling: u16,
}

impl V5Header {
    /// Builds the `sampling` field from mode bits and interval.
    pub fn sampling_field(mode: u8, interval: u16) -> u16 {
        (u16::from(mode & 0x3) << 14) | (interval & 0x3fff)
    }

    /// The 14-bit sampling interval.
    pub fn sampling_interval(&self) -> u16 {
        self.sampling & 0x3fff
    }
}

/// A full v5 export datagram.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportPacket {
    /// Datagram header.
    pub header: V5Header,
    /// The flow records (≤ 30).
    pub records: Vec<FlowRecord>,
}

impl ExportPacket {
    /// Encodes to the wire format.
    ///
    /// Record timestamps (`first_ms`/`last_ms`, absolute simulation time)
    /// are emitted relative to `header.sys_uptime_ms` exactly as a router
    /// reports `First`/`Last` in SysUptime terms (wrapping arithmetic).
    ///
    /// # Panics
    ///
    /// Panics if more than 30 records are supplied.
    pub fn encode(&self) -> Bytes {
        assert!(
            self.records.len() <= MAX_RECORDS_PER_PACKET,
            "v5 datagrams carry at most 30 records"
        );
        let mut buf = BytesMut::with_capacity(HEADER_LEN + RECORD_LEN * self.records.len());
        buf.put_u16(5);
        buf.put_u16(self.records.len() as u16);
        buf.put_u32(self.header.sys_uptime_ms);
        buf.put_u32(self.header.unix_secs);
        buf.put_u32(self.header.unix_nsecs);
        buf.put_u32(self.header.flow_sequence);
        buf.put_u8(self.header.engine_type);
        buf.put_u8(self.header.engine_id);
        buf.put_u16(self.header.sampling);

        for rec in &self.records {
            buf.put_u32(u32::from(rec.key.src_ip));
            buf.put_u32(u32::from(rec.key.dst_ip));
            buf.put_u32(0); // nexthop (not modelled)
            buf.put_u16(0); // input ifindex
            buf.put_u16(0); // output ifindex
            buf.put_u32(rec.packets.min(u64::from(u32::MAX)) as u32);
            buf.put_u32(rec.bytes.min(u64::from(u32::MAX)) as u32);
            buf.put_u32(rec.first_ms as u32); // wraps like SysUptime
            buf.put_u32(rec.last_ms as u32);
            buf.put_u16(rec.key.src_port);
            buf.put_u16(rec.key.dst_port);
            buf.put_u8(0); // pad1
            buf.put_u8(rec.tcp_flags);
            buf.put_u8(rec.key.protocol.number());
            buf.put_u8(0); // tos
            buf.put_u16(0); // src AS
            buf.put_u16(0); // dst AS
            buf.put_u8(0); // src mask
            buf.put_u8(0); // dst mask
            buf.put_u16(0); // pad2
        }
        buf.freeze()
    }

    /// Decodes a datagram.
    pub fn decode(mut data: Bytes) -> Result<Self, V5Error> {
        if data.len() < HEADER_LEN {
            return Err(V5Error::TooShort);
        }
        let version = data.get_u16();
        if version != 5 {
            return Err(V5Error::BadVersion(version));
        }
        let count = data.get_u16();
        if usize::from(count) > MAX_RECORDS_PER_PACKET {
            return Err(V5Error::TooManyRecords(count));
        }
        let header = V5Header {
            sys_uptime_ms: data.get_u32(),
            unix_secs: data.get_u32(),
            unix_nsecs: data.get_u32(),
            flow_sequence: data.get_u32(),
            engine_type: data.get_u8(),
            engine_id: data.get_u8(),
            sampling: data.get_u16(),
        };
        let actual = data.len() / RECORD_LEN;
        if actual != usize::from(count) || !data.len().is_multiple_of(RECORD_LEN) {
            return Err(V5Error::CountMismatch {
                promised: count,
                actual,
            });
        }

        let mut records = Vec::with_capacity(actual);
        for _ in 0..count {
            let src_ip = Ipv4Addr::from(data.get_u32());
            let dst_ip = Ipv4Addr::from(data.get_u32());
            data.advance(4 + 2 + 2); // nexthop, ifindexes
            let packets = u64::from(data.get_u32());
            let bytes = u64::from(data.get_u32());
            let first_ms = u64::from(data.get_u32());
            let last_ms = u64::from(data.get_u32());
            let src_port = data.get_u16();
            let dst_port = data.get_u16();
            data.advance(1); // pad1
            let tcp_flags = data.get_u8();
            let proto_num = data.get_u8();
            data.advance(1 + 2 + 2 + 1 + 1 + 2); // tos, ASes, masks, pad2
            let protocol = Protocol::from_number(proto_num).unwrap_or(Protocol::Tcp);
            records.push(FlowRecord {
                key: FlowKey {
                    src_ip,
                    dst_ip,
                    src_port,
                    dst_port,
                    protocol,
                },
                packets,
                bytes,
                first_ms,
                last_ms,
                tcp_flags,
            });
        }
        Ok(ExportPacket { header, records })
    }
}

/// Splits an arbitrary batch of records into correctly-numbered v5
/// datagrams. `flow_sequence` continues from `start_sequence`; returns
/// the packets and the next sequence number.
pub fn packetize(
    records: &[FlowRecord],
    engine_id: u8,
    sampling_interval: u16,
    unix_secs: u32,
    start_sequence: u32,
) -> (Vec<ExportPacket>, u32) {
    let mut packets = Vec::new();
    let mut seq = start_sequence;
    for chunk in records.chunks(MAX_RECORDS_PER_PACKET) {
        packets.push(ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs,
                unix_nsecs: 0,
                flow_sequence: seq,
                engine_type: 0,
                engine_id,
                sampling: V5Header::sampling_field(0b01, sampling_interval),
            },
            records: chunk.to_vec(),
        });
        seq = seq.wrapping_add(chunk.len() as u32);
    }
    (packets, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, i),
                443,
                Ipv4Addr::new(91, 4, i, 7),
                49_152 + u16::from(i),
            ),
            packets: u64::from(i) + 1,
            bytes: (u64::from(i) + 1) * 1400,
            first_ms: 1000,
            last_ms: 2000 + u64::from(i),
            tcp_flags: 0x1b,
        }
    }

    #[test]
    fn wire_sizes() {
        let pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 1,
                unix_secs: 2,
                unix_nsecs: 3,
                flow_sequence: 4,
                engine_type: 0,
                engine_id: 9,
                sampling: V5Header::sampling_field(1, 1000),
            },
            records: (0..3).map(sample_record).collect(),
        };
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 3 * RECORD_LEN);
    }

    #[test]
    fn roundtrip() {
        let pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 123_456,
                unix_secs: 1_592_179_200,
                unix_nsecs: 77,
                flow_sequence: 999,
                engine_type: 0,
                engine_id: 3,
                sampling: V5Header::sampling_field(1, 1000),
            },
            records: (0..MAX_RECORDS_PER_PACKET as u8)
                .map(sample_record)
                .collect(),
        };
        let back = ExportPacket::decode(pkt.encode()).unwrap();
        assert_eq!(back, pkt);
        assert_eq!(back.header.sampling_interval(), 1000);
    }

    #[test]
    fn rejects_bad_version() {
        let pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs: 0,
                unix_nsecs: 0,
                flow_sequence: 0,
                engine_type: 0,
                engine_id: 0,
                sampling: 0,
            },
            records: vec![sample_record(1)],
        };
        let mut bytes = BytesMut::from(&pkt.encode()[..]);
        bytes[0] = 0;
        bytes[1] = 9;
        assert_eq!(
            ExportPacket::decode(bytes.freeze()),
            Err(V5Error::BadVersion(9))
        );
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            ExportPacket::decode(Bytes::from_static(&[0u8; 10])),
            Err(V5Error::TooShort)
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let pkt = ExportPacket {
            header: V5Header {
                sys_uptime_ms: 0,
                unix_secs: 0,
                unix_nsecs: 0,
                flow_sequence: 0,
                engine_type: 0,
                engine_id: 0,
                sampling: 0,
            },
            records: vec![sample_record(1), sample_record(2)],
        };
        let bytes = pkt.encode();
        // Drop the last record's bytes.
        let truncated = bytes.slice(..bytes.len() - RECORD_LEN);
        assert!(matches!(
            ExportPacket::decode(truncated),
            Err(V5Error::CountMismatch {
                promised: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn rejects_too_many_records() {
        let mut bytes = BytesMut::new();
        bytes.put_u16(5);
        bytes.put_u16(31);
        bytes.put_slice(&[0u8; 20]);
        assert_eq!(
            ExportPacket::decode(bytes.freeze()),
            Err(V5Error::TooManyRecords(31))
        );
    }

    #[test]
    fn packetize_chunks_and_sequences() {
        let records: Vec<FlowRecord> = (0..75u8).map(sample_record).collect();
        let (packets, next_seq) = packetize(&records, 2, 1000, 1_592_179_200, 100);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].records.len(), 30);
        assert_eq!(packets[2].records.len(), 15);
        assert_eq!(packets[0].header.flow_sequence, 100);
        assert_eq!(packets[1].header.flow_sequence, 130);
        assert_eq!(packets[2].header.flow_sequence, 160);
        assert_eq!(next_seq, 175);
    }

    #[test]
    fn sampling_field_packing() {
        let f = V5Header::sampling_field(0b01, 1000);
        assert_eq!(f >> 14, 0b01);
        assert_eq!(f & 0x3fff, 1000);
        // Interval saturates at 14 bits.
        let f = V5Header::sampling_field(0b11, 0x7fff);
        assert_eq!(f & 0x3fff, 0x3fff);
    }
}
