//! # cwa-netflow — the NetFlow measurement substrate
//!
//! The paper's data set is "*sampled Netflow traces from routers
//! connecting the data center hosting the CWA backend*" (§2), with
//! prefix-preserving anonymized client addresses, and the authors note
//! that "*the routers Netflow cache eviction settings and sampling result
//! in only observing few packets for most flows*". This crate rebuilds
//! that measurement apparatus:
//!
//! * [`flow`] — flow keys and flow records (the v5 field set).
//! * [`sampling`] — 1-in-N packet sampling (deterministic and random),
//!   plus the binomial thinning used by the cohort-level traffic
//!   generator.
//! * [`cache`] — the router flow cache with **active** and **inactive**
//!   timeout eviction and size-bounded emergency expiry — the mechanism
//!   that splits long flows into several records and makes flow-size-based
//!   app/website differentiation infeasible (a limitation §2 discusses).
//! * [`v5`] — the NetFlow v5 export wire format (24-byte header,
//!   48-byte records) with a round-tripping codec.
//! * [`v9`] — the template-based NetFlow v9 format (RFC 3954) with a
//!   template-caching decoder, as modern exporters speak it.
//! * [`csvio`] — a plain-text record format so externally captured flow
//!   data can be fed into the analysis pipeline.
//! * [`biflow`] — RFC 5103-style pairing of unidirectional records into
//!   bidirectional flows with initiator detection.
//! * [`estimate`] — Horvitz–Thompson inversion of sampling: estimating
//!   true packet/byte/flow volumes (with CIs) from sampled records.
//! * [`anonymize`] — **Crypto-PAn** prefix-preserving IPv4 anonymization
//!   (Xu et al.), built on the AES implementation in `cwa-crypto`; this is
//!   the "prefix-preserving anonymized" property of §2.
//! * [`collector`] — reassembles export packets into a record stream and
//!   tracks export-loss via sequence numbers.
//! * [`sink`] — the [`FlowSink`] streaming-consumer trait: producers
//!   hand records to consumers chunk by chunk so resident memory stays
//!   O(chunk) instead of O(total records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod biflow;
pub mod cache;
pub mod collector;
pub mod csvio;
pub mod estimate;
pub mod flow;
pub mod sampling;
pub mod sink;
pub mod v5;
pub mod v9;

pub use anonymize::{CachedCryptoPan, CryptoPan};
pub use biflow::{merge_biflows, Biflow, BiflowConfig};
pub use cache::{FlowCache, FlowCacheConfig};
pub use collector::Collector;
pub use estimate::{estimate_volumes, VolumeEstimate};
pub use flow::{FlowKey, FlowRecord, Protocol};
pub use sampling::{PacketSampler, SamplingMode};
pub use sink::{CountingSink, FlowChunk, FlowSink, DEFAULT_CHUNK_CAPACITY};
pub use v5::{ExportPacket, V5Header};
pub use v9::{V9Decoder, V9Exporter};
