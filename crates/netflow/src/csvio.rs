//! Plain-text (CSV) import/export of flow records.
//!
//! The analysis pipeline in `cwa-analysis` operates on
//! [`FlowRecord`]s regardless of where they came from; this module lets
//! researchers exchange record sets as CSV — e.g. to run the pipeline on
//! flow data captured outside the simulator, or to inspect simulated
//! records with standard tooling.
//!
//! Format (one header line, one record per line):
//!
//! ```text
//! src_ip,src_port,dst_ip,dst_port,protocol,packets,bytes,first_ms,last_ms,tcp_flags
//! 81.200.16.1,443,145.145.4.137,49812,6,3,4200,1000,2000,24
//! ```

use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::flow::{FlowKey, FlowRecord, Protocol};

/// The CSV header line.
pub const HEADER: &str =
    "src_ip,src_port,dst_ip,dst_port,protocol,packets,bytes,first_ms,last_ms,tcp_flags";

/// CSV parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// First line did not match [`HEADER`].
    BadHeader,
    /// A data line had the wrong number of fields.
    FieldCount {
        /// 1-based line number
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number
        line: usize,
        /// column name
        column: &'static str,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or malformed header line"),
            CsvError::FieldCount { line } => write!(f, "line {line}: wrong field count"),
            CsvError::BadField { line, column } => {
                write!(f, "line {line}: cannot parse column {column}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes records to CSV (with header).
pub fn to_csv(records: &[FlowRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 64 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.key.src_ip,
            r.key.src_port,
            r.key.dst_ip,
            r.key.dst_port,
            r.key.protocol.number(),
            r.packets,
            r.bytes,
            r.first_ms,
            r.last_ms,
            r.tcp_flags
        ));
    }
    out
}

/// Parses CSV back into records.
pub fn from_csv(text: &str) -> Result<Vec<FlowRecord>, CsvError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        _ => return Err(CsvError::BadHeader),
    }

    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 10 {
            return Err(CsvError::FieldCount { line: line_no });
        }
        let parse_ip = |s: &str, col: &'static str| {
            Ipv4Addr::from_str(s).map_err(|_| CsvError::BadField {
                line: line_no,
                column: col,
            })
        };
        fn parse_num<T: FromStr>(s: &str, line: usize, col: &'static str) -> Result<T, CsvError> {
            s.parse()
                .map_err(|_| CsvError::BadField { line, column: col })
        }

        let proto_num: u8 = parse_num(fields[4], line_no, "protocol")?;
        let protocol = Protocol::from_number(proto_num).ok_or(CsvError::BadField {
            line: line_no,
            column: "protocol",
        })?;
        records.push(FlowRecord {
            key: FlowKey {
                src_ip: parse_ip(fields[0], "src_ip")?,
                src_port: parse_num(fields[1], line_no, "src_port")?,
                dst_ip: parse_ip(fields[2], "dst_ip")?,
                dst_port: parse_num(fields[3], line_no, "dst_port")?,
                protocol,
            },
            packets: parse_num(fields[5], line_no, "packets")?,
            bytes: parse_num(fields[6], line_no, "bytes")?,
            first_ms: parse_num(fields[7], line_no, "first_ms")?,
            last_ms: parse_num(fields[8], line_no, "last_ms")?,
            tcp_flags: parse_num(fields[9], line_no, "tcp_flags")?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FlowRecord> {
        (0..5u8)
            .map(|i| FlowRecord {
                key: FlowKey::tcp(
                    Ipv4Addr::new(81, 200, 16, 1),
                    443,
                    Ipv4Addr::new(84, 0, 0, i),
                    50_000,
                ),
                packets: u64::from(i) + 1,
                bytes: 1000,
                first_ms: 10,
                last_ms: 20,
                tcp_flags: 0x18,
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let csv = to_csv(&records);
        assert!(csv.starts_with(HEADER));
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_roundtrip() {
        let csv = to_csv(&[]);
        assert_eq!(from_csv(&csv).unwrap(), vec![]);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(from_csv("1,2,3\n"), Err(CsvError::BadHeader));
        assert_eq!(from_csv(""), Err(CsvError::BadHeader));
    }

    #[test]
    fn rejects_field_count() {
        let csv = format!("{HEADER}\n1.2.3.4,443\n");
        assert_eq!(from_csv(&csv), Err(CsvError::FieldCount { line: 2 }));
    }

    #[test]
    fn rejects_bad_values_with_position() {
        let csv = format!("{HEADER}\nnot-an-ip,443,84.0.0.1,50000,6,1,1000,10,20,24\n");
        assert_eq!(
            from_csv(&csv),
            Err(CsvError::BadField {
                line: 2,
                column: "src_ip"
            })
        );
        let csv = format!("{HEADER}\n1.2.3.4,443,84.0.0.1,50000,99,1,1000,10,20,24\n");
        assert_eq!(
            from_csv(&csv),
            Err(CsvError::BadField {
                line: 2,
                column: "protocol"
            })
        );
    }

    #[test]
    fn skips_blank_lines() {
        let records = sample();
        let mut csv = to_csv(&records);
        csv.push('\n');
        csv.push('\n');
        assert_eq!(from_csv(&csv).unwrap(), records);
    }

    #[test]
    fn udp_records_roundtrip() {
        let rec = FlowRecord {
            key: FlowKey {
                src_ip: Ipv4Addr::new(9, 9, 9, 9),
                dst_ip: Ipv4Addr::new(8, 8, 8, 8),
                src_port: 53,
                dst_port: 3333,
                protocol: Protocol::Udp,
            },
            packets: 1,
            bytes: 80,
            first_ms: 5,
            last_ms: 5,
            tcp_flags: 0,
        };
        let back = from_csv(&to_csv(&[rec])).unwrap();
        assert_eq!(back[0], rec);
    }
}
