//! Flow keys and records, following the NetFlow v5 field set.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// IP protocol numbers we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Protocol {
    /// TCP (6) — all CWA traffic is HTTPS over TCP.
    Tcp = 6,
    /// UDP (17) — e.g. DNS.
    Udp = 17,
    /// ICMP (1).
    Icmp = 1,
}

impl Protocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Parses an IANA protocol number.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            1 => Some(Protocol::Icmp),
            _ => None,
        }
    }
}

/// The 5-tuple identifying a unidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Convenience constructor for a TCP flow.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// The reverse-direction key.
    pub fn reversed(&self) -> Self {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

/// An exported unidirectional flow record.
///
/// Timestamps are in **milliseconds** of simulation time (the v5 format
/// uses router uptime milliseconds; we keep absolute simulation time and
/// convert in the codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow 5-tuple.
    pub key: FlowKey,
    /// Number of (sampled) packets accounted to this record.
    pub packets: u64,
    /// Number of (sampled) bytes accounted to this record.
    pub bytes: u64,
    /// Time of the first accounted packet, ms.
    pub first_ms: u64,
    /// Time of the last accounted packet, ms.
    pub last_ms: u64,
    /// Cumulative-OR of TCP flags seen (v5 `tcp_flags`).
    pub tcp_flags: u8,
}

impl FlowRecord {
    /// Flow duration in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.last_ms.saturating_sub(self.first_ms)
    }

    /// True if this record describes traffic *from* any address in the
    /// given `/len` prefix (used by the paper's "from the CDN to the
    /// user" filter).
    pub fn src_in_prefix(&self, prefix: Ipv4Addr, len: u8) -> bool {
        in_prefix(self.key.src_ip, prefix, len)
    }

    /// True if the destination lies in the given prefix.
    pub fn dst_in_prefix(&self, prefix: Ipv4Addr, len: u8) -> bool {
        in_prefix(self.key.dst_ip, prefix, len)
    }
}

/// Prefix membership test: does `addr` fall within `prefix/len`?
pub fn in_prefix(addr: Ipv4Addr, prefix: Ipv4Addr, len: u8) -> bool {
    if len == 0 {
        return true;
    }
    let len = len.min(32);
    let mask = if len == 32 {
        u32::MAX
    } else {
        !(u32::MAX >> len)
    };
    (u32::from(addr) & mask) == (u32::from(prefix) & mask)
}

/// Truncates `addr` to its `/len` network prefix.
pub fn prefix_of(addr: Ipv4Addr, len: u8) -> Ipv4Addr {
    if len == 0 {
        return Ipv4Addr::UNSPECIFIED;
    }
    let len = len.min(32);
    let mask = if len == 32 {
        u32::MAX
    } else {
        !(u32::MAX >> len)
    };
    Ipv4Addr::from(u32::from(addr) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::from_number(6), Some(Protocol::Tcp));
        assert_eq!(Protocol::from_number(17), Some(Protocol::Udp));
        assert_eq!(Protocol::from_number(99), None);
    }

    #[test]
    fn key_reverse_is_involution() {
        let k = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            443,
            Ipv4Addr::new(192, 168, 1, 2),
            51000,
        );
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn prefix_membership() {
        let p = Ipv4Addr::new(81, 200, 16, 0);
        assert!(in_prefix(Ipv4Addr::new(81, 200, 16, 77), p, 22));
        assert!(in_prefix(Ipv4Addr::new(81, 200, 19, 255), p, 22));
        assert!(!in_prefix(Ipv4Addr::new(81, 200, 20, 0), p, 22));
        // /0 matches everything; /32 only the exact host.
        assert!(in_prefix(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::UNSPECIFIED,
            0
        ));
        assert!(in_prefix(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(1, 2, 3, 4),
            32
        ));
        assert!(!in_prefix(
            Ipv4Addr::new(1, 2, 3, 5),
            Ipv4Addr::new(1, 2, 3, 4),
            32
        ));
    }

    #[test]
    fn prefix_truncation() {
        assert_eq!(
            prefix_of(Ipv4Addr::new(93, 184, 216, 34), 24),
            Ipv4Addr::new(93, 184, 216, 0)
        );
        assert_eq!(
            prefix_of(Ipv4Addr::new(93, 184, 216, 34), 8),
            Ipv4Addr::new(93, 0, 0, 0)
        );
        assert_eq!(
            prefix_of(Ipv4Addr::new(93, 184, 216, 34), 0),
            Ipv4Addr::UNSPECIFIED
        );
        assert_eq!(
            prefix_of(Ipv4Addr::new(93, 184, 216, 34), 32),
            Ipv4Addr::new(93, 184, 216, 34)
        );
    }

    #[test]
    fn record_helpers() {
        let rec = FlowRecord {
            key: FlowKey::tcp(
                Ipv4Addr::new(81, 200, 16, 10),
                443,
                Ipv4Addr::new(93, 10, 2, 3),
                40000,
            ),
            packets: 3,
            bytes: 4096,
            first_ms: 1000,
            last_ms: 4500,
            tcp_flags: 0x1b,
        };
        assert_eq!(rec.duration_ms(), 3500);
        assert!(rec.src_in_prefix(Ipv4Addr::new(81, 200, 16, 0), 22));
        assert!(rec.dst_in_prefix(Ipv4Addr::new(93, 0, 0, 0), 8));
        assert!(!rec.dst_in_prefix(Ipv4Addr::new(94, 0, 0, 0), 8));
    }
}
