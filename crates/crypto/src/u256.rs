//! Minimal 256-bit unsigned integer arithmetic for the P-256 curve.
//!
//! Little-endian `[u64; 4]` limbs, constant-size, no allocation. Only
//! the operations ECDSA needs: comparison, add/sub with carry, widening
//! multiplication to 512 bits, and modular reduction/inversion. Clarity
//! over speed — Jacobian-coordinate point math in [`crate::p256`] keeps
//! the operation count tractable.

/// A 256-bit unsigned integer, little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// From big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[8 * (3 - i)..8 * (3 - i) + 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// To big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * (3 - i)..8 * (3 - i) + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian hex string (with or without leading zeros).
    ///
    /// # Panics
    ///
    /// Panics on non-hex input or length > 64 digits.
    pub fn from_hex(s: &str) -> Self {
        assert!(s.len() <= 64, "hex too long");
        let mut bytes = [0u8; 32];
        let padded = format!("{s:0>64}");
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("hex digit");
        }
        U256::from_be_bytes(&bytes)
    }

    /// Is zero?
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Comparison.
    pub fn cmp256(&self, other: &U256) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// `self < other`.
    pub fn lt(&self, other: &U256) -> bool {
        self.cmp256(other) == std::cmp::Ordering::Less
    }

    /// Addition with carry-out.
    pub fn adc(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (i, limb) in out.iter_mut().enumerate() {
            let sum = u128::from(self.0[i]) + u128::from(other.0[i]) + carry;
            *limb = sum as u64;
            carry = sum >> 64;
        }
        (U256(out), carry != 0)
    }

    /// Subtraction with borrow-out.
    pub fn sbb(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0i128;
        for (i, limb) in out.iter_mut().enumerate() {
            let diff = i128::from(self.0[i]) - i128::from(other.0[i]) - borrow;
            if diff < 0 {
                *limb = (diff + (1i128 << 64)) as u64;
                borrow = 1;
            } else {
                *limb = diff as u64;
                borrow = 0;
            }
        }
        (U256(out), borrow != 0)
    }

    /// Widening multiplication: 256 × 256 → 512 bits (8 limbs, LE).
    pub fn widening_mul(&self, other: &U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc =
                    u128::from(out[i + j]) + u128::from(self.0[i]) * u128::from(other.0[j]) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = carry as u64;
        }
        out
    }

    /// Modular addition (`modulus` must exceed both operands).
    pub fn add_mod(&self, other: &U256, modulus: &U256) -> U256 {
        let (sum, carry) = self.adc(other);
        if carry || !sum.lt(modulus) {
            sum.sbb(modulus).0
        } else {
            sum
        }
    }

    /// Modular subtraction.
    pub fn sub_mod(&self, other: &U256, modulus: &U256) -> U256 {
        let (diff, borrow) = self.sbb(other);
        if borrow {
            diff.adc(modulus).0
        } else {
            diff
        }
    }

    /// Modular multiplication via 512-bit product + bit-serial reduction.
    pub fn mul_mod(&self, other: &U256, modulus: &U256) -> U256 {
        let wide = self.widening_mul(other);
        reduce_512(&wide, modulus)
    }

    /// Modular exponentiation (square-and-multiply).
    pub fn pow_mod(&self, exponent: &U256, modulus: &U256) -> U256 {
        let mut result = U256::ONE;
        let base = *self;
        for i in (0..exponent.bits()).rev() {
            result = result.mul_mod(&result, modulus);
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Modular inverse via Fermat (modulus must be prime, self ≠ 0).
    pub fn inv_mod(&self, modulus: &U256) -> U256 {
        // a^(p-2) mod p
        let (p_minus_2, _) = modulus.sbb(&U256([2, 0, 0, 0]));
        self.pow_mod(&p_minus_2, modulus)
    }
}

/// Reduces a 512-bit value modulo a 256-bit modulus (bit-serial long
/// division — simple, branch-predictable, fast enough for signing).
pub fn reduce_512(wide: &[u64; 8], modulus: &U256) -> U256 {
    let mut rem = U256::ZERO;
    for bit in (0..512).rev() {
        // rem = rem*2 + bit
        let mut carry = (wide[bit / 64] >> (bit % 64)) & 1;
        let mut overflow = false;
        for limb in rem.0.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
            overflow = carry != 0;
        }
        if overflow || !rem.lt(modulus) {
            rem = rem.sbb(modulus).0;
        }
    }
    rem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_and_bytes_roundtrip() {
        let x = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
        assert_eq!(U256::from_hex("1"), U256::ONE);
        assert_eq!(U256::from_hex("0"), U256::ZERO);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_hex("123456789abcdef0fedcba9876543210aaaaaaaabbbbbbbbccccccccdddddddd");
        let b = U256::from_hex("0fedcba987654321");
        let (sum, c) = a.adc(&b);
        assert!(!c);
        let (back, borrow) = sum.sbb(&b);
        assert!(!borrow);
        assert_eq!(back, a);
    }

    #[test]
    fn carry_and_borrow() {
        let max = U256([u64::MAX; 4]);
        let (z, carry) = max.adc(&U256::ONE);
        assert!(carry);
        assert!(z.is_zero());
        let (m, borrow) = U256::ZERO.sbb(&U256::ONE);
        assert!(borrow);
        assert_eq!(m, max);
    }

    #[test]
    fn widening_mul_known() {
        // (2^64-1)^2 = 2^128 - 2^65 + 1.
        let a = U256([u64::MAX, 0, 0, 0]);
        let wide = a.widening_mul(&a);
        assert_eq!(wide[0], 1);
        assert_eq!(wide[1], u64::MAX - 1);
        assert_eq!(wide[2..], [0; 6]);
    }

    #[test]
    fn mod_arithmetic_small() {
        let p = U256([97, 0, 0, 0]);
        let a = U256([95, 0, 0, 0]);
        let b = U256([7, 0, 0, 0]);
        assert_eq!(a.add_mod(&b, &p), U256([5, 0, 0, 0]));
        assert_eq!(b.sub_mod(&a, &p), U256([9, 0, 0, 0]));
        assert_eq!(a.mul_mod(&b, &p), U256([(95 * 7) % 97, 0, 0, 0]));
    }

    #[test]
    fn pow_and_inverse_small_prime() {
        let p = U256([101, 0, 0, 0]);
        let a = U256([7, 0, 0, 0]);
        // Fermat: a^(p-1) = 1.
        assert_eq!(a.pow_mod(&U256([100, 0, 0, 0]), &p), U256::ONE);
        let inv = a.inv_mod(&p);
        assert_eq!(a.mul_mod(&inv, &p), U256::ONE);
    }

    #[test]
    fn inverse_large_prime() {
        // P-256 field prime.
        let p = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        let a = U256::from_hex("deadbeefcafebabe0123456789abcdef55555555aaaaaaaa1111111122222222");
        let inv = a.inv_mod(&p);
        assert_eq!(a.mul_mod(&inv, &p), U256::ONE);
    }

    #[test]
    fn reduce_512_matches_mul_mod() {
        let p = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
        let a = U256::from_hex("aa00bb11cc22dd33ee44ff5566778899aabbccddeeff00112233445566778899");
        let wide = a.widening_mul(&a);
        let r1 = reduce_512(&wide, &p);
        let r2 = a.mul_mod(&a, &p);
        assert_eq!(r1, r2);
        assert!(r1.lt(&p));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let x = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000000");
        assert_eq!(x.bits(), 256);
        assert!(x.bit(255));
        assert!(!x.bit(0));
    }

    #[test]
    fn cmp_ordering() {
        let small = U256::from_hex("1234");
        let big = U256::from_hex("123400000000");
        assert!(small.lt(&big));
        assert!(!big.lt(&small));
        assert_eq!(small.cmp256(&small), std::cmp::Ordering::Equal);
    }
}
