//! HMAC-SHA256 keyed message authentication (RFC 2104 / FIPS 198-1).
//!
//! Verified against the RFC 4231 test vectors in the test module.

use crate::sha256::{sha256, Sha256};

/// SHA-256 block size in bytes.
const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are first hashed, per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&out),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 4 (incrementing key).
    #[test]
    fn rfc4231_case4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&out),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// RFC 4231 test case 7 (long key and long data).
    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than \
block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let out = hmac_sha256(&key, data);
        assert_eq!(
            hex(&out),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn exactly_block_sized_key_is_used_verbatim() {
        // A 64-byte key must not be hashed; compare against manual construction.
        let key = [0x42u8; 64];
        let msg = b"boundary";
        let direct = hmac_sha256(&key, msg);

        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= key[i];
            opad[i] ^= key[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(msg);
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner.finalize());
        assert_eq!(direct, outer.finalize());
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
