//! ECDSA over NIST P-256 (secp256r1) — the algorithm that signs the
//! real Corona-Warn-App key-export files.
//!
//! The export format carries `SignatureInfo` entries verified by the
//! app against pinned public keys; this module provides the signing and
//! verification halves so the reproduction can produce and check
//! *genuinely signed* exports:
//!
//! * curve arithmetic in Jacobian coordinates (one field inversion per
//!   scalar multiplication, not per addition),
//! * deterministic nonces per **RFC 6979** (no RNG dependence, no nonce
//!   reuse catastrophes) with HMAC-SHA256 from this crate,
//! * known-answer tests from RFC 6979 A.2.5 and the NIST P-256 vectors.
//!
//! Not constant-time — see the crate-level security disclaimer.

use crate::hmac::hmac_sha256;
use crate::sha256::sha256;
use crate::u256::U256;

/// The field prime `p = 2^256 − 2^224 + 2^192 + 2^96 − 1`.
fn p() -> U256 {
    U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
}

/// The group order `n`.
fn n() -> U256 {
    U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
}

/// Curve coefficient `b` (`a = −3`).
fn b() -> U256 {
    U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
}

/// Base point G.
fn g() -> AffinePoint {
    AffinePoint {
        x: U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
        y: U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
        infinity: false,
    }
}

/// A point in affine coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinePoint {
    /// x coordinate.
    pub x: U256,
    /// y coordinate.
    pub y: U256,
    /// Point at infinity marker.
    pub infinity: bool,
}

/// A point in Jacobian coordinates (X/Z², Y/Z³).
#[derive(Debug, Clone, Copy)]
struct JacobianPoint {
    x: U256,
    y: U256,
    z: U256,
}

impl JacobianPoint {
    const INFINITY: JacobianPoint = JacobianPoint {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    fn from_affine(p_: &AffinePoint) -> Self {
        if p_.infinity {
            JacobianPoint::INFINITY
        } else {
            JacobianPoint {
                x: p_.x,
                y: p_.y,
                z: U256::ONE,
            }
        }
    }

    fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    fn to_affine(self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint {
                x: U256::ZERO,
                y: U256::ZERO,
                infinity: true,
            };
        }
        let prime = p();
        let z_inv = self.z.inv_mod(&prime);
        let z2 = z_inv.mul_mod(&z_inv, &prime);
        let z3 = z2.mul_mod(&z_inv, &prime);
        AffinePoint {
            x: self.x.mul_mod(&z2, &prime),
            y: self.y.mul_mod(&z3, &prime),
            infinity: false,
        }
    }

    /// Point doubling (dbl-2001-b, a = −3).
    fn double(&self) -> JacobianPoint {
        if self.is_infinity() || self.y.is_zero() {
            return JacobianPoint::INFINITY;
        }
        let prime = p();
        let m = &prime;
        // delta = Z², gamma = Y², beta = X·gamma
        let delta = self.z.mul_mod(&self.z, m);
        let gamma = self.y.mul_mod(&self.y, m);
        let beta = self.x.mul_mod(&gamma, m);
        // alpha = 3·(X − delta)·(X + delta)
        let alpha = self
            .x
            .sub_mod(&delta, m)
            .mul_mod(&self.x.add_mod(&delta, m), m);
        let alpha = alpha.add_mod(&alpha, m).add_mod(&alpha, m);
        // X₃ = alpha² − 8·beta
        let beta2 = beta.add_mod(&beta, m);
        let beta4 = beta2.add_mod(&beta2, m);
        let beta8 = beta4.add_mod(&beta4, m);
        let x3 = alpha.mul_mod(&alpha, m).sub_mod(&beta8, m);
        // Z₃ = (Y + Z)² − gamma − delta
        let yz = self.y.add_mod(&self.z, m);
        let z3 = yz.mul_mod(&yz, m).sub_mod(&gamma, m).sub_mod(&delta, m);
        // Y₃ = alpha·(4·beta − X₃) − 8·gamma²
        let gamma2 = gamma.mul_mod(&gamma, m);
        let gamma2_2 = gamma2.add_mod(&gamma2, m);
        let gamma2_4 = gamma2_2.add_mod(&gamma2_2, m);
        let gamma2_8 = gamma2_4.add_mod(&gamma2_4, m);
        let y3 = alpha
            .mul_mod(&beta4.sub_mod(&x3, m), m)
            .sub_mod(&gamma2_8, m);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition: Jacobian + affine (add-2007-bl, simplified).
    fn add_affine(&self, other: &AffinePoint) -> JacobianPoint {
        if other.infinity {
            return *self;
        }
        if self.is_infinity() {
            return JacobianPoint::from_affine(other);
        }
        let m = &p();
        let z1z1 = self.z.mul_mod(&self.z, m);
        let u2 = other.x.mul_mod(&z1z1, m);
        let s2 = other.y.mul_mod(&z1z1.mul_mod(&self.z, m), m);
        let h = u2.sub_mod(&self.x, m);
        let r = s2.sub_mod(&self.y, m);
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return JacobianPoint::INFINITY;
        }
        let h2 = h.mul_mod(&h, m);
        let h3 = h2.mul_mod(&h, m);
        let v = self.x.mul_mod(&h2, m);
        // X₃ = r² − h³ − 2v
        let x3 = r
            .mul_mod(&r, m)
            .sub_mod(&h3, m)
            .sub_mod(&v.add_mod(&v, m), m);
        // Y₃ = r·(v − X₃) − Y₁·h³
        let y3 = r
            .mul_mod(&v.sub_mod(&x3, m), m)
            .sub_mod(&self.y.mul_mod(&h3, m), m);
        let z3 = self.z.mul_mod(&h, m);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Scalar multiplication `k·P` (double-and-add, MSB first).
pub fn scalar_mul(k: &U256, point: &AffinePoint) -> AffinePoint {
    let mut acc = JacobianPoint::INFINITY;
    for i in (0..k.bits()).rev() {
        acc = acc.double();
        if k.bit(i) {
            acc = acc.add_affine(point);
        }
    }
    acc.to_affine()
}

/// Checks the curve equation `y² = x³ − 3x + b (mod p)`.
pub fn on_curve(point: &AffinePoint) -> bool {
    if point.infinity {
        return true;
    }
    let m = &p();
    let y2 = point.y.mul_mod(&point.y, m);
    let x3 = point.x.mul_mod(&point.x, m).mul_mod(&point.x, m);
    let three_x = point.x.add_mod(&point.x, m).add_mod(&point.x, m);
    let rhs = x3.sub_mod(&three_x, m).add_mod(&b(), m);
    y2 == rhs
}

/// An ECDSA signing key (scalar in `[1, n)`).
#[derive(Debug, Clone)]
pub struct SigningKey {
    d: U256,
}

/// An ECDSA verifying key (public point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    /// The public point `d·G`.
    pub point: AffinePoint,
}

/// An ECDSA signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// r component.
    pub r: U256,
    /// s component.
    pub s: U256,
}

impl Signature {
    /// Fixed-size 64-byte encoding (r ‖ s, big-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the 64-byte encoding.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Signature {
            r: U256::from_be_bytes(&r),
            s: U256::from_be_bytes(&s),
        }
    }
}

impl SigningKey {
    /// Creates a key from 32 big-endian secret bytes.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is 0 or ≥ n.
    pub fn from_bytes(secret: &[u8; 32]) -> Self {
        let d = U256::from_be_bytes(secret);
        assert!(!d.is_zero() && d.lt(&n()), "secret scalar out of range");
        SigningKey { d }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            point: scalar_mul(&self.d, &g()),
        }
    }

    /// Signs `message` (hashed with SHA-256) with an RFC 6979
    /// deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = sha256(message);
        self.sign_prehashed(&digest)
    }

    /// Signs a precomputed SHA-256 digest.
    pub fn sign_prehashed(&self, digest: &[u8; 32]) -> Signature {
        let order = n();
        let z = bits2int(digest, &order);
        let mut extra = 0u32;
        loop {
            let k = rfc6979_nonce(&self.d, digest, extra);
            if k.is_zero() || !k.lt(&order) {
                extra += 1;
                continue;
            }
            let point = scalar_mul(&k, &g());
            let r = reduce_mod(&point.x, &order);
            if r.is_zero() {
                extra += 1;
                continue;
            }
            // s = k⁻¹ (z + r d) mod n
            let rd = r.mul_mod(&self.d, &order);
            let sum = z.add_mod(&rd, &order);
            let s = k.inv_mod(&order).mul_mod(&sum, &order);
            if s.is_zero() {
                extra += 1;
                continue;
            }
            return Signature { r, s };
        }
    }
}

impl VerifyingKey {
    /// Verifies a signature over `message` (SHA-256).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        self.verify_prehashed(&sha256(message), signature)
    }

    /// Verifies against a precomputed digest.
    pub fn verify_prehashed(&self, digest: &[u8; 32], signature: &Signature) -> bool {
        let order = n();
        let (r, s) = (signature.r, signature.s);
        if r.is_zero() || s.is_zero() || !r.lt(&order) || !s.lt(&order) {
            return false;
        }
        if self.point.infinity || !on_curve(&self.point) {
            return false;
        }
        let z = bits2int(digest, &order);
        let s_inv = s.inv_mod(&order);
        let u1 = z.mul_mod(&s_inv, &order);
        let u2 = r.mul_mod(&s_inv, &order);
        // R = u1·G + u2·Q
        let p1 = JacobianPoint::from_affine(&scalar_mul(&u1, &g()));
        let sum = p1.add_affine(&scalar_mul(&u2, &self.point)).to_affine();
        if sum.infinity {
            return false;
        }
        reduce_mod(&sum.x, &order) == r
    }
}

/// Converts a digest to an integer per RFC 6979 §2.3.2 and reduces once.
fn bits2int(digest: &[u8; 32], order: &U256) -> U256 {
    reduce_mod(&U256::from_be_bytes(digest), order)
}

/// One conditional subtraction (values are < 2·order here).
fn reduce_mod(value: &U256, order: &U256) -> U256 {
    if value.lt(order) {
        *value
    } else {
        value.sbb(order).0
    }
}

/// RFC 6979 deterministic nonce generation (HMAC-SHA256 DRBG), with an
/// `extra` counter for the rare retry loop.
fn rfc6979_nonce(d: &U256, digest: &[u8; 32], extra: u32) -> U256 {
    let order = n();
    let x = d.to_be_bytes();
    let h1 = bits2int(digest, &order).to_be_bytes();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    // K = HMAC(K, V ‖ 0x00 ‖ x ‖ h1)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    data.extend_from_slice(&v);
    data.push(0x00);
    data.extend_from_slice(&x);
    data.extend_from_slice(&h1);
    if extra > 0 {
        data.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);
    // K = HMAC(K, V ‖ 0x01 ‖ x ‖ h1)
    let mut data = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    data.extend_from_slice(&v);
    data.push(0x01);
    data.extend_from_slice(&x);
    data.extend_from_slice(&h1);
    if extra > 0 {
        data.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &data);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        let candidate = U256::from_be_bytes(&v);
        if !candidate.is_zero() && candidate.lt(&order) {
            return candidate;
        }
        let mut data = Vec::with_capacity(33);
        data.extend_from_slice(&v);
        data.push(0x00);
        k = hmac_sha256(&k, &data);
        v = hmac_sha256(&k, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        U256::from_hex(s).to_be_bytes()
    }

    #[test]
    fn base_point_on_curve() {
        assert!(on_curve(&g()));
    }

    #[test]
    fn known_scalar_multiples_of_g() {
        // 2G, from the published P-256 test vectors.
        let two_g = scalar_mul(&U256::from_hex("2"), &g());
        assert_eq!(
            two_g.x,
            U256::from_hex("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978")
        );
        assert_eq!(
            two_g.y,
            U256::from_hex("07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1")
        );
        // 1G = G.
        assert_eq!(scalar_mul(&U256::ONE, &g()), g());
        assert!(on_curve(&two_g));
    }

    #[test]
    fn scalar_mul_by_order_is_infinity() {
        let order = n();
        let result = scalar_mul(&order, &g());
        assert!(result.infinity);
    }

    /// RFC 6979 A.2.5, P-256 + SHA-256, message "sample".
    #[test]
    fn rfc6979_sample_vector() {
        let key = SigningKey::from_bytes(&hex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ));
        // Public key check (from the RFC).
        let vk = key.verifying_key();
        assert_eq!(
            vk.point.x,
            U256::from_hex("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
        );
        assert_eq!(
            vk.point.y,
            U256::from_hex("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
        );

        let sig = key.sign(b"sample");
        assert_eq!(
            sig.r,
            U256::from_hex("efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716")
        );
        assert_eq!(
            sig.s,
            U256::from_hex("f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8")
        );
        assert!(vk.verify(b"sample", &sig));
    }

    /// RFC 6979 A.2.5, message "test".
    #[test]
    fn rfc6979_test_vector() {
        let key = SigningKey::from_bytes(&hex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ));
        let sig = key.sign(b"test");
        assert_eq!(
            sig.r,
            U256::from_hex("f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367")
        );
        assert_eq!(
            sig.s,
            U256::from_hex("019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083")
        );
    }

    #[test]
    fn verify_rejects_tampering() {
        let key = SigningKey::from_bytes(&hex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ));
        let vk = key.verifying_key();
        let sig = key.sign(b"export v1 bytes");
        assert!(vk.verify(b"export v1 bytes", &sig));
        assert!(!vk.verify(b"export v1 bytez", &sig));
        // Bit-flipped signature.
        let mut bad = sig.to_bytes();
        bad[10] ^= 1;
        assert!(!vk.verify(b"export v1 bytes", &Signature::from_bytes(&bad)));
        // Zero r/s rejected.
        assert!(!vk.verify(
            b"export v1 bytes",
            &Signature {
                r: U256::ZERO,
                s: sig.s
            }
        ));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = SigningKey::from_bytes(&hex32("01"));
        let k2 = SigningKey::from_bytes(&hex32("02"));
        let sig = k1.sign(b"message");
        assert!(k1.verifying_key().verify(b"message", &sig));
        assert!(!k2.verifying_key().verify(b"message", &sig));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let key = SigningKey::from_bytes(&hex32("0123456789abcdef"));
        let sig = key.sign(b"roundtrip");
        let back = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(back, sig);
    }

    #[test]
    fn deterministic_signatures() {
        let key = SigningKey::from_bytes(&hex32("42"));
        assert_eq!(key.sign(b"same message"), key.sign(b"same message"));
        assert_ne!(key.sign(b"message a"), key.sign(b"message b"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_secret_rejected() {
        let _ = SigningKey::from_bytes(&[0u8; 32]);
    }
}
