//! AES-128 CTR mode (NIST SP 800-38A §6.5).
//!
//! The Exposure Notification spec encrypts the Associated Encrypted
//! Metadata as `AES128-CTR(AEMK, RPI, metadata)`, using the 16-byte
//! Rolling Proximity Identifier as the initial counter block. Because CTR
//! is an XOR stream, the same function both encrypts and decrypts.

use crate::aes::Aes128;

/// Encrypts/decrypts `data` with AES-128 in CTR mode.
///
/// `iv` is the initial 16-byte counter block; it is incremented as a
/// big-endian 128-bit integer for each subsequent keystream block
/// (SP 800-38A standard incrementing function over the full block).
pub fn aes128_ctr(key: &[u8; 16], iv: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let aes = Aes128::new(key);
    let mut counter = *iv;
    let mut out = Vec::with_capacity(data.len());
    for chunk in data.chunks(16) {
        let keystream = aes.encrypt_block(&counter);
        for (i, byte) in chunk.iter().enumerate() {
            out.push(byte ^ keystream[i]);
        }
        increment_be(&mut counter);
    }
    out
}

/// Increments a 16-byte big-endian counter in place, wrapping on overflow.
fn increment_be(counter: &mut [u8; 16]) {
    for byte in counter.iter_mut().rev() {
        let (v, carry) = byte.overflowing_add(1);
        *byte = v;
        if !carry {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn unhex16(s: &str) -> [u8; 16] {
        let v = unhex(s);
        let mut out = [0u8; 16];
        out.copy_from_slice(&v);
        out
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt (all four blocks).
    #[test]
    fn sp800_38a_ctr_encrypt() {
        let key = unhex16("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = unhex16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let pt = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let ct = aes128_ctr(&key, &iv, &pt);
        assert_eq!(
            hex(&ct),
            "874d6191b620e3261bef6864990db6ce\
             9806f66b7970fdff8617187bb9fffdff\
             5ae4df3edbd5d35e5b4f09020db03eab\
             1e031dda2fbe03d1792170a0f3009cee"
                .replace(' ', "")
        );
    }

    #[test]
    fn roundtrip() {
        let key = [9u8; 16];
        let iv = [3u8; 16];
        let msg = b"exposure notification metadata bytes";
        let ct = aes128_ctr(&key, &iv, msg);
        assert_ne!(&ct[..], &msg[..]);
        let pt = aes128_ctr(&key, &iv, &ct);
        assert_eq!(&pt[..], &msg[..]);
    }

    #[test]
    fn partial_block() {
        let key = [1u8; 16];
        let iv = [0u8; 16];
        let msg = [0xffu8; 5];
        let ct = aes128_ctr(&key, &iv, &msg);
        assert_eq!(ct.len(), 5);
        assert_eq!(aes128_ctr(&key, &iv, &ct), msg);
    }

    #[test]
    fn counter_wraps_at_max() {
        let mut c = [0xffu8; 16];
        increment_be(&mut c);
        assert_eq!(c, [0u8; 16]);

        let mut c2 = [0u8; 16];
        c2[15] = 0xff;
        increment_be(&mut c2);
        assert_eq!(c2[15], 0);
        assert_eq!(c2[14], 1);
    }

    #[test]
    fn empty_input() {
        assert!(aes128_ctr(&[0u8; 16], &[0u8; 16], &[]).is_empty());
    }

    #[test]
    fn keystream_blocks_differ() {
        // Two consecutive blocks of zeros must encrypt to different keystream.
        let ct = aes128_ctr(&[5u8; 16], &[0u8; 16], &[0u8; 32]);
        assert_ne!(&ct[..16], &ct[16..]);
    }
}
