//! HKDF — HMAC-based extract-and-expand key derivation (RFC 5869),
//! instantiated with SHA-256.
//!
//! The Exposure Notification cryptography specification v1.2 derives both
//! the Rolling Proximity Identifier Key and the Associated Encrypted
//! Metadata Key as `HKDF(tek, salt=None, info, 16)`.
//!
//! Verified against the RFC 5869 Appendix A test vectors.

use crate::hmac::hmac_sha256;

/// Maximum output length: `255 * HashLen` per RFC 5869.
pub const MAX_OUTPUT_LEN: usize = 255 * 32;

/// HKDF-Extract: `PRK = HMAC-SHA256(salt, ikm)`.
///
/// An empty/absent salt is treated as 32 zero bytes, per the RFC.
pub fn hkdf_extract(salt: Option<&[u8]>, ikm: &[u8]) -> [u8; 32] {
    let zero = [0u8; 32];
    hmac_sha256(salt.unwrap_or(&zero), ikm)
}

/// HKDF-Expand: derives `len` bytes of output keying material from `prk`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(
        len <= MAX_OUTPUT_LEN,
        "HKDF output length {len} exceeds RFC 5869 limit"
    );
    let mut okm = Vec::with_capacity(len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = Vec::with_capacity(prev.len() + info.len() + 1);
        msg.extend_from_slice(&prev);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&block[..take]);
        prev = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    okm
}

/// Full HKDF (extract then expand): `OKM = HKDF(salt, ikm, info, len)`.
pub fn hkdf_sha256(salt: Option<&[u8]>, ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 5869 A.1: basic test case with SHA-256.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(Some(&salt), &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 A.2: longer inputs/outputs.
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let okm = hkdf_sha256(Some(&salt), &ikm, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 A.3: zero-length salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf_sha256(None, &ikm, b"", 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_multiblock_lengths() {
        let prk = hkdf_extract(None, b"input key material");
        for len in [0usize, 1, 31, 32, 33, 64, 65, 100] {
            let okm = hkdf_expand(&prk, b"ctx", len);
            assert_eq!(okm.len(), len);
        }
        // Prefix property: shorter outputs are prefixes of longer ones.
        let long = hkdf_expand(&prk, b"ctx", 100);
        let short = hkdf_expand(&prk, b"ctx", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    #[should_panic(expected = "exceeds RFC 5869 limit")]
    fn expand_over_limit_panics() {
        let prk = [0u8; 32];
        let _ = hkdf_expand(&prk, b"", MAX_OUTPUT_LEN + 1);
    }

    #[test]
    fn info_separates_domains() {
        let ikm = b"tek-bytes";
        let a = hkdf_sha256(None, ikm, b"EN-RPIK", 16);
        let b = hkdf_sha256(None, ikm, b"EN-AEMK", 16);
        assert_ne!(a, b);
    }
}
