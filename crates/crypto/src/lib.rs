//! # cwa-crypto — cryptographic primitives for the CWA reproduction
//!
//! This crate implements, **from scratch**, the small set of cryptographic
//! primitives required by the rest of the workspace:
//!
//! * [`mod@sha256`] — SHA-256 (FIPS 180-4), used by HMAC/HKDF.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//! * [`hkdf`] — HKDF extract-and-expand (RFC 5869), used by the Exposure
//!   Notification key schedule (`RPIK`/`AEMK` derivation).
//! * [`aes`] — AES-128 block encryption (FIPS 197), used by the Exposure
//!   Notification spec for Rolling Proximity Identifier derivation and by
//!   the Crypto-PAn prefix-preserving IP anonymizer in `cwa-netflow`.
//! * [`ctr`] — AES-128 in CTR mode, used for Associated Encrypted
//!   Metadata (AEM) in the Exposure Notification spec.
//! * [`p256`] — ECDSA over NIST P-256 with RFC 6979 deterministic
//!   nonces (on [`u256`] fixed-width arithmetic), as used to sign the
//!   real CWA key-export files.
//!
//! ## Why from scratch?
//!
//! The reproduction environment provides a fixed offline crate set
//! (`rand`, `proptest`, `criterion`, …) with no crypto crates. Both the
//! Exposure Notification protocol (the real reason CWA phones talk to the
//! CDN the paper measures) and Crypto-PAn anonymization (the paper's
//! traces are prefix-preserving anonymized) require these primitives, so
//! we implement them here with official test vectors.
//!
//! ## Security disclaimer
//!
//! These implementations favour clarity and testability. They are **not
//! hardened** (no constant-time guarantees beyond what the straightforward
//! code provides) and must not be used outside this research context.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod hkdf;
pub mod hmac;
pub mod p256;
pub mod sha256;
pub mod u256;

pub use aes::Aes128;
pub use ctr::aes128_ctr;
pub use hkdf::hkdf_sha256;
pub use hmac::hmac_sha256;
pub use p256::{Signature, SigningKey, VerifyingKey};
pub use sha256::{sha256, Sha256};
