//! # cwa-obs — zero-dependency observability
//!
//! Counters, gauges, log-scale histograms and span timers for the
//! sim → vantage → analysis pipeline, plus a [`Registry`] that
//! serializes every metric to a stable, sorted JSON schema
//! (`cwa-obs/v1`).
//!
//! Design constraints (they shape the whole API):
//!
//! * **Cheap on hot paths.** Every mutation is a single relaxed atomic
//!   RMW on a pre-resolved `Arc` handle; name lookup (the only locking
//!   operation) happens once at wiring time, not per event.
//! * **Observation only.** Metrics never feed back into simulation
//!   logic and never touch an RNG stream, so enabling them cannot
//!   perturb determinism — serial and parallel runs stay bit-identical
//!   with metrics on or off (the simnet test suite asserts this).
//! * **Stable output.** [`Registry::to_json`] emits metrics sorted by
//!   name with integer-only values, so two snapshots of identical
//!   counters are byte-identical.
//!
//! The [`trace`] module adds the flight recorder: per-thread ring
//! buffers of span events with a Chrome trace-event export, for the
//! *when* that aggregate metrics cannot answer. The [`heartbeat`] and
//! [`http`] modules add *live* telemetry: a background sampler that
//! snapshots the registry on an interval (bounded ring + optional
//! `metrics.jsonl` stream) and a tiny HTTP/1.0 scrape server exposing
//! `/metrics`, `/metrics.json`, `/progress` and `/healthz` while a run
//! is still in flight. The [`live`] module adds the mailbox live runs
//! publish their rendered `/report` and `/figures/*` documents into.

#![forbid(unsafe_code)]

pub mod heartbeat;
pub mod http;
pub mod live;
pub mod trace;

pub use heartbeat::{Heartbeat, HeartbeatConfig, HeartbeatRing, HeartbeatSample};
pub use http::{TelemetryServer, TelemetryState};
pub use live::{LiveFigure, LiveSnapshot};
pub use trace::{NameId, StageLog, TraceBuf, TraceSpan, Tracer};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed value that can move both ways (queue depths, utilization).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: one per possible bit length of a `u64`,
/// plus one for zero.
const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-scale histogram for latencies and sizes.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0 holds
/// exact zeros), so bucket `i` spans `[2^(i-1), 2^i - 1]` and the whole
/// `u64` range is covered with 65 slots and no configuration.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the log2 bucket for `v` (its bit length).
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (q in [0, 1]) of the recorded distribution,
    /// linearly interpolated *within* the log2 bucket that holds the
    /// target rank: exact log2-resolution quantiles without storing a
    /// single sample.
    ///
    /// With `n` observations the target rank is `q·n`; walking the
    /// buckets in order finds the bucket whose cumulative count first
    /// reaches it, and the value is interpolated between that bucket's
    /// inclusive bounds by the rank's fractional position inside it.
    /// Returns `None` for an empty histogram — there is no
    /// distribution to take a quantile of, and emitting 0 would be
    /// indistinguishable from a real all-zero sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * n as f64;
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let lo = bucket_floor(i) as f64;
                let hi = bucket_bound(i) as f64;
                let within = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * within);
            }
            cum += c;
        }
        Some(self.max() as f64)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bound(i), n))
            })
            .collect()
    }
}

/// Accumulated wall-clock time across [`Span`]s.
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Timer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Timer::default()
    }

    /// Records one measured duration.
    pub fn record(&self, d: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Starts a scoped span that records into this timer on drop.
    pub fn start(self: &Arc<Self>) -> Span {
        Span {
            timer: Arc::clone(self),
            started: Instant::now(),
            recorded: false,
        }
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

/// A scope timer: measures from creation until [`Span::stop`] or drop.
#[derive(Debug)]
pub struct Span {
    timer: Arc<Timer>,
    started: Instant,
    recorded: bool,
}

impl Span {
    /// Stops the span now, recording the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        self.timer.record(elapsed);
        self.recorded = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.timer.record(self.started.elapsed());
        }
    }
}

/// The four metric kinds a registry can hold.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Timer(Arc<Timer>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A named collection of metrics with get-or-create handles and a
/// stable JSON snapshot.
///
/// Handle resolution locks a mutex; the returned `Arc` handles are
/// lock-free. Resolve once at wiring time, mutate freely afterwards.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F, G>(&self, name: &str, make: F, extract: G) -> Arc<T>
    where
        F: FnOnce() -> Metric,
        G: FnOnce(&Metric) -> Option<Arc<T>>,
    {
        let mut map = self.metrics.lock().expect("obs registry poisoned");
        let entry = map.entry(name.to_owned()).or_insert_with(make);
        extract(entry)
            .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", entry.kind()))
    }

    /// Resolves (creating if needed) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Resolves (creating if needed) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Resolves (creating if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Resolves (creating if needed) the timer `name`.
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        self.get_or_insert(
            name,
            || Metric::Timer(Arc::new(Timer::new())),
            |m| match m {
                Metric::Timer(t) => Some(Arc::clone(t)),
                _ => None,
            },
        )
    }

    /// Starts a span on the timer `name`.
    pub fn span(&self, name: &str) -> Span {
        self.timer(name).start()
    }

    /// Compact JSON snapshot (schema `cwa-obs/v1`, names sorted).
    pub fn to_json(&self) -> String {
        self.render(false, None)
    }

    /// Pretty two-space-indented JSON snapshot.
    pub fn to_json_pretty(&self) -> String {
        self.render(true, None)
    }

    /// Compact JSON snapshot with a `ts_ms` wall-clock field, for
    /// append-only heartbeat streams (`metrics.jsonl`): one snapshot
    /// per line, each line a full self-describing cwa-obs/v1 document.
    pub fn to_json_with_ts(&self, ts_ms: u64) -> String {
        self.render(false, Some(ts_ms))
    }

    /// Numeric sample of every metric, for rate derivation between
    /// consecutive snapshots: counters and gauges appear under their
    /// registered name; timers contribute `<name>.total_ns` and
    /// `<name>.count`; histograms contribute `<name>.count` and
    /// `<name>.sum`.
    pub fn sample(&self) -> BTreeMap<String, i64> {
        let map = self.metrics.lock().expect("obs registry poisoned");
        let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
        let mut out = BTreeMap::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.insert(name.clone(), clamp(c.get()));
                }
                Metric::Gauge(g) => {
                    out.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    out.insert(format!("{name}.count"), clamp(h.count()));
                    out.insert(format!("{name}.sum"), clamp(h.sum()));
                }
                Metric::Timer(t) => {
                    out.insert(format!("{name}.total_ns"), clamp(t.total_ns()));
                    out.insert(format!("{name}.count"), clamp(t.count()));
                }
            }
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4) of every metric,
    /// names sorted and sanitized to the Prometheus charset (`.` and
    /// any other invalid character become `_`), label values escaped
    /// per the exposition format (`\\`, `\"`, `\n`), every line
    /// newline-terminated. Counters gain the conventional `_total`
    /// suffix; histograms expose cumulative `_bucket{le=...}` series
    /// plus `_sum`/`_count`; timers expose `_ns_total` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let map = self.metrics.lock().expect("obs registry poisoned");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            let base = prometheus_name(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "# TYPE {base}_total counter\n{base}_total {}\n",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {base} gauge\n{base} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    let mut cum = 0u64;
                    for (le, n) in h.buckets() {
                        cum += n;
                        out.push_str(&format!(
                            "{base}_bucket{{le=\"{}\"}} {cum}\n",
                            prometheus_label_value(&le.to_string())
                        ));
                    }
                    out.push_str(&format!(
                        "{base}_bucket{{le=\"+Inf\"}} {}\n{base}_sum {}\n{base}_count {}\n",
                        h.count(),
                        h.sum(),
                        h.count()
                    ));
                }
                Metric::Timer(t) => {
                    out.push_str(&format!(
                        "# TYPE {base}_ns_total counter\n{base}_ns_total {}\n\
                         # TYPE {base}_count counter\n{base}_count {}\n",
                        t.total_ns(),
                        t.count()
                    ));
                }
            }
        }
        out
    }

    fn render(&self, pretty: bool, ts_ms: Option<u64>) -> String {
        let map = self.metrics.lock().expect("obs registry poisoned");
        let (nl, ind1, ind2, ind3, sp) = if pretty {
            ("\n", "  ", "    ", "      ", " ")
        } else {
            ("", "", "", "", "")
        };
        let mut out = String::new();
        out.push_str(&format!("{{{nl}{ind1}\"schema\":{sp}\"cwa-obs/v1\",{nl}"));
        if let Some(ts) = ts_ms {
            out.push_str(&format!("{ind1}\"ts_ms\":{sp}{ts},{nl}"));
        }
        out.push_str(&format!("{ind1}\"metrics\":{sp}{{{nl}"));
        for (i, (name, metric)) in map.iter().enumerate() {
            out.push_str(&format!("{ind2}{}:{sp}", json_string(name)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"type\":{sp}\"counter\",{sp}\"value\":{sp}{}}}",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"type\":{sp}\"gauge\",{sp}\"value\":{sp}{}}}",
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let buckets = h
                        .buckets()
                        .iter()
                        .map(|(le, n)| format!("{{\"le\":{sp}{le},{sp}\"count\":{sp}{n}}}"))
                        .collect::<Vec<_>>()
                        .join(&format!(",{sp}"));
                    // An empty histogram has no distribution to
                    // summarize: the quantile keys are omitted rather
                    // than emitted as a fake 0 sample.
                    let quantiles = match (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99)) {
                        (Some(p50), Some(p90), Some(p99)) => format!(
                            "{sp}\"p50\":{sp}{},{sp}\"p90\":{sp}{},{sp}\"p99\":{sp}{},",
                            p50.round() as u64,
                            p90.round() as u64,
                            p99.round() as u64,
                        ),
                        _ => String::new(),
                    };
                    out.push_str(&format!(
                        "{{\"type\":{sp}\"histogram\",{sp}\"count\":{sp}{},{sp}\"sum\":{sp}{},{sp}\
                         \"min\":{sp}{},{sp}\"max\":{sp}{},{quantiles}{nl}{ind3}\
                         \"buckets\":{sp}[{buckets}]}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                    ));
                }
                Metric::Timer(t) => {
                    let count = t.count();
                    let mean = t.total_ns().checked_div(count).unwrap_or(0);
                    out.push_str(&format!(
                        "{{\"type\":{sp}\"timer\",{sp}\"count\":{sp}{count},{sp}\
                         \"total_ns\":{sp}{},{sp}\"mean_ns\":{sp}{mean}}}",
                        t.total_ns(),
                    ));
                }
            }
            if i + 1 < map.len() {
                out.push(',');
            }
            out.push_str(nl);
        }
        out.push_str(&format!("{ind1}}}{nl}}}{nl}"));
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.metrics.lock().expect("obs registry poisoned");
        write!(f, "Registry({} metrics)", map.len())
    }
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline must be backslash-escaped; all
/// other characters (including UTF-8) pass through verbatim.
pub(crate) fn prometheus_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric name to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// JSON-escapes a metric name.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_log2_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1014);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 8 → le 15; 1000 → le 1023.
        assert_eq!(
            h.buckets(),
            vec![(0, 1), (1, 1), (3, 2), (15, 1), (1023, 1)]
        );
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn empty_histogram_json_omits_quantile_keys() {
        let reg = Registry::new();
        reg.histogram("empty.sizes");
        reg.histogram("full.sizes").record(5);
        let as_u64 = |v: &serde_json::Value| match v {
            serde_json::Value::Num(n) => n.as_u64(),
            _ => None,
        };
        for json in [reg.to_json(), reg.to_json_pretty()] {
            let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
            let metrics = v.get("metrics").unwrap();
            let empty = metrics.get("empty.sizes").unwrap();
            for key in ["p50", "p90", "p99"] {
                assert!(empty.get(key).is_none(), "{key} present in: {json}");
            }
            assert_eq!(as_u64(empty.get("count").unwrap()), Some(0));
            // 5 sits in the log2 bucket [4,7]; p50 interpolates to
            // its midpoint 5.5, which rounds to 6.
            let full = metrics.get("full.sizes").unwrap();
            assert_eq!(as_u64(full.get("p50").unwrap()), Some(6));
        }
    }

    #[test]
    fn quantiles_interpolate_within_one_bucket() {
        // 4, 5, 6, 7 all land in the bucket [4, 7]: n = 4, so the
        // p50 target rank is 2.0, half-way into the bucket's 4 counts,
        // hence 4 + (7 − 4)·0.5 = 5.5; p99 is 4 + 3·0.99 = 6.97.
        let h = Histogram::new();
        for v in [4u64, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(5.5));
        assert_eq!(h.quantile(0.99), Some(6.97));
        assert_eq!(h.quantile(0.0), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(7.0));
    }

    #[test]
    fn quantiles_interpolate_across_buckets() {
        // 1 → [1,1]; 2,2 → [2,3]; 8 → [8,15].  p50 target rank 2.0
        // falls half-way into the [2,3] bucket: 2 + 1·0.5 = 2.5.
        // p90 target rank 3.6 is 0.6 into the [8,15] bucket:
        // 8 + 7·0.6 = 12.2.
        let h = Histogram::new();
        for v in [1u64, 2, 2, 8] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(2.5));
        assert!((h.quantile(0.9).unwrap() - 12.2).abs() < 1e-9);
    }

    #[test]
    fn json_snapshot_emits_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("sizes");
        for v in [4u64, 5, 6, 7] {
            h.record(v);
        }
        let json = reg.to_json();
        // 5.5 → 6 and 6.97 → 7 after rounding to integers.
        assert!(json.contains("\"p50\":6"), "got: {json}");
        assert!(json.contains("\"p90\":7"), "got: {json}");
        assert!(json.contains("\"p99\":7"), "got: {json}");
    }

    #[test]
    fn prometheus_exposition_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("sim.events").add(7);
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("sizes");
        h.record(3);
        h.record(900);
        reg.timer("phase").record(Duration::from_micros(5));

        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE sim_events_total counter"));
        assert!(text.contains("sim_events_total 7"));
        assert!(text.contains("queue_depth -2"));
        assert!(text.contains("sizes_bucket{le=\"3\"} 1"));
        assert!(text.contains("sizes_bucket{le=\"1023\"} 2"));
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sizes_sum 903"));
        assert!(text.contains("sizes_count 2"));
        assert!(text.contains("phase_ns_total 5000"));
        assert!(text.contains("phase_count 1"));
        // Deterministic: identical registries render identically.
        assert_eq!(text, reg.to_prometheus());
    }

    /// Line-level conformance with the Prometheus text exposition
    /// format 0.0.4: trailing newline, well-formed `# TYPE` comments
    /// with known kinds, sample names in the legal charset, numeric
    /// values, and every sample preceded by a TYPE declaration for its
    /// family (modulo the `_bucket`/`_sum`/`_count` histogram
    /// suffixes).
    #[test]
    fn prometheus_exposition_is_line_conformant() {
        let reg = Registry::new();
        reg.counter("sim.shard.00.records").add(12);
        reg.gauge("weird metric-name!\"quoted\"").set(3);
        let h = reg.histogram("sizes");
        h.record(0);
        h.record(77);
        reg.timer("phase.analyze").record(Duration::from_millis(2));

        let text = reg.to_prometheus();
        assert!(text.ends_with('\n'), "exposition must end with newline");

        let name_ok = |s: &str| {
            !s.is_empty()
                && !s.starts_with(|c: char| c.is_ascii_digit())
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
                assert!(parts.next().is_none(), "extra tokens in TYPE line: {line}");
                assert!(name_ok(name), "bad TYPE name: {line}");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "unknown kind: {line}"
                );
                assert!(!typed.contains(&name.to_string()), "duplicate TYPE: {line}");
                typed.push(name.to_string());
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
            let name = match series.split_once('{') {
                Some((name, labels)) => {
                    assert!(labels.ends_with('}'), "unterminated labels: {line}");
                    let body = &labels[..labels.len() - 1];
                    let (key, val) = body.split_once('=').expect("label has key=value");
                    assert!(name_ok(key), "bad label key: {line}");
                    assert!(
                        val.starts_with('"') && val.ends_with('"') && val.len() >= 2,
                        "label value not quoted: {line}"
                    );
                    name
                }
                None => series,
            };
            assert!(name_ok(name), "bad sample name: {line}");
            let family_typed = typed.iter().any(|t| {
                name == t
                    || ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|suf| name.strip_suffix(suf) == Some(t))
            });
            assert!(family_typed, "sample without TYPE declaration: {line}");
        }
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(prometheus_label_value("plain"), "plain");
        assert_eq!(
            prometheus_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd",
            "backslash, quote and newline must be escaped"
        );
    }

    #[test]
    fn registry_sample_flattens_every_kind() {
        let reg = Registry::new();
        reg.counter("records").add(41);
        reg.gauge("depth").set(-3);
        let h = reg.histogram("sizes");
        h.record(10);
        h.record(20);
        reg.timer("phase").record(Duration::from_nanos(700));

        let s = reg.sample();
        assert_eq!(s.get("records"), Some(&41));
        assert_eq!(s.get("depth"), Some(&-3));
        assert_eq!(s.get("sizes.count"), Some(&2));
        assert_eq!(s.get("sizes.sum"), Some(&30));
        assert_eq!(s.get("phase.total_ns"), Some(&700));
        assert_eq!(s.get("phase.count"), Some(&1));
    }

    #[test]
    fn timestamped_snapshot_keeps_schema_and_parses() {
        let reg = Registry::new();
        reg.counter("records").add(5);
        let line = reg.to_json_with_ts(1_720_000_000_123);
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("cwa-obs/v1"));
        let ts = match v.get("ts_ms").unwrap() {
            serde_json::Value::Num(n) => n.as_u64(),
            _ => None,
        };
        assert_eq!(ts, Some(1_720_000_000_123));
        assert!(v.get("metrics").is_some());
    }

    #[test]
    fn timer_spans_accumulate() {
        let t = Arc::new(Timer::new());
        t.start().stop();
        {
            let _implicit = t.start();
        }
        t.record(Duration::from_nanos(500));
        assert_eq!(t.count(), 3);
        assert!(t.total_ns() >= 500);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_clash() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_snapshot_round_trips_through_serde_json() {
        let reg = Registry::new();
        reg.counter("sim.events").add(7);
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("sizes");
        h.record(3);
        h.record(900);
        reg.timer("phase").record(Duration::from_micros(5));

        for json in [reg.to_json(), reg.to_json_pretty()] {
            let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
            let back = serde_json::to_string(&v).expect("serializes");
            let v2: serde_json::Value = serde_json::from_str(&back).expect("valid JSON");
            assert_eq!(v, v2, "parse→print→parse stable");
            assert!(json.contains("\"cwa-obs/v1\""));
            assert!(json.contains("\"sim.events\""));
            assert!(json.contains("\"total_ns\""));
        }
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let build = |order_flip: bool| {
            let reg = Registry::new();
            if order_flip {
                reg.counter("b").add(1);
                reg.counter("a").add(2);
            } else {
                reg.counter("a").add(2);
                reg.counter("b").add(1);
            }
            reg.to_json()
        };
        assert_eq!(build(false), build(true), "registration order irrelevant");
        let json = build(false);
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
    }

    #[test]
    fn concurrent_increments_from_crossbeam_workers() {
        let reg = Registry::new();
        let counter = reg.counter("parallel.incs");
        let hist = reg.histogram("parallel.values");
        crossbeam::thread::scope(|s| {
            for w in 0..8u64 {
                let c = Arc::clone(&counter);
                let h = Arc::clone(&hist);
                s.spawn(move |_| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(w * 10_000 + i);
                    }
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(counter.get(), 80_000);
        assert_eq!(hist.count(), 80_000);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 79_999);
    }
}
