//! Heartbeat sampler: live time-series over a [`Registry`].
//!
//! A [`Heartbeat`] owns a background thread that snapshots the
//! registry at a fixed interval into a bounded drop-oldest
//! [`HeartbeatRing`] and, optionally, an append-only `metrics.jsonl`
//! stream (one full cwa-obs/v1 document per line, each stamped with a
//! wall-clock `ts_ms`). Consumers derive **rates** from the ring —
//! records/s, bytes/s, stall ratios — by differencing the oldest and
//! newest resident samples, which is what the `/progress` endpoint
//! and the `watch` dashboard are built on.
//!
//! Like the rest of cwa-obs this is observation-only: the sampler
//! reads atomics, never feeds back into simulation logic, and never
//! touches an RNG stream, so a run with a heartbeat attached stays
//! bit-identical to one without.
//!
//! The ring's mutex is locked with poison *recovery*
//! (`lock().unwrap_or_else(|e| e.into_inner())`): a panic on some
//! scrape or sampler thread while holding the lock must not silently
//! kill telemetry for the rest of the run — the ring holds plain
//! counters that stay internally consistent even if a holder died
//! mid-update.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::http::names;
use crate::Registry;

/// One heartbeat: a monotonic timestamp plus the numeric value of
/// every registry metric at that instant (see [`Registry::sample`]).
#[derive(Debug, Clone)]
pub struct HeartbeatSample {
    /// Nanoseconds since the sampler started (monotonic).
    pub t_ns: u64,
    /// Metric name → primary numeric value.
    pub values: BTreeMap<String, i64>,
}

impl HeartbeatSample {
    /// The sampled value of `name`, defaulting to 0 when absent (a
    /// metric that has not been registered yet reads as zero, which
    /// is also what its first registered value would be).
    pub fn value(&self, name: &str) -> i64 {
        self.values.get(name).copied().unwrap_or(0)
    }
}

/// A bounded drop-oldest ring of [`HeartbeatSample`]s.
///
/// The ring keeps the most recent `capacity` samples; pushing into a
/// full ring evicts the oldest. Rates are derived over the resident
/// window (oldest → newest), so after wraparound the window simply
/// slides forward — no special casing, no unbounded memory.
#[derive(Debug)]
pub struct HeartbeatRing {
    capacity: usize,
    samples: VecDeque<HeartbeatSample>,
    total: u64,
}

impl HeartbeatRing {
    /// Creates an empty ring holding at most `capacity` samples
    /// (clamped to at least 2 — a single sample admits no rate).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        HeartbeatRing {
            capacity,
            samples: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: HeartbeatSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        self.total += 1;
    }

    /// Number of resident samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (monotonic, survives eviction).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum resident samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&HeartbeatSample> {
        self.samples.back()
    }

    /// The oldest resident sample.
    pub fn oldest(&self) -> Option<&HeartbeatSample> {
        self.samples.front()
    }

    /// Value delta and elapsed nanoseconds for `name` across the
    /// resident window. `None` until two samples with distinct
    /// timestamps are resident.
    pub fn window_delta(&self, name: &str) -> Option<(i64, u64)> {
        let (first, last) = (self.oldest()?, self.latest()?);
        let dt = last.t_ns.checked_sub(first.t_ns)?;
        if dt == 0 {
            return None;
        }
        Some((last.value(name) - first.value(name), dt))
    }

    /// Per-second rate of `name` over the resident window.
    pub fn window_rate(&self, name: &str) -> Option<f64> {
        let (delta, dt_ns) = self.window_delta(name)?;
        Some(delta as f64 / (dt_ns as f64 / 1e9))
    }

    /// True when `name` made no forward progress across the last
    /// `heartbeats` samples. Returns `false` while fewer than
    /// `heartbeats + 1` samples are resident — absence of evidence is
    /// not a stall.
    pub fn stalled(&self, name: &str, heartbeats: usize) -> bool {
        if heartbeats == 0 || self.samples.len() <= heartbeats {
            return false;
        }
        let window = self.samples.iter().rev().take(heartbeats + 1);
        let mut values = window.map(|s| s.value(name));
        let newest = match values.next() {
            Some(v) => v,
            None => return false,
        };
        values.all(|older| newest <= older)
    }
}

/// Configuration for a [`Heartbeat`] sampler.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// Sampling interval.
    pub interval: Duration,
    /// Ring capacity (resident samples).
    pub capacity: usize,
    /// When set, every sample is also appended to this file as one
    /// compact cwa-obs/v1 JSON document per line.
    pub jsonl: Option<PathBuf>,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(250),
            capacity: 240,
            jsonl: None,
        }
    }
}

/// Shared stop flag: a mutex-guarded bool with a condvar so the
/// sampler thread can sleep its full interval yet wake immediately on
/// [`Heartbeat::stop`].
type StopSignal = (Mutex<bool>, Condvar);

/// A background registry sampler.
///
/// Started with [`Heartbeat::start`]; samples until [`Heartbeat::stop`]
/// (or drop) and always takes one final sample on the way out so the
/// ring's newest entry reflects the end state of the run.
pub struct Heartbeat {
    ring: Arc<Mutex<HeartbeatRing>>,
    stop: Arc<StopSignal>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the sampler thread. Fails only if the `jsonl` stream
    /// cannot be opened for append.
    pub fn start(registry: Arc<Registry>, config: HeartbeatConfig) -> std::io::Result<Heartbeat> {
        let mut jsonl = match &config.jsonl {
            Some(path) => Some(BufWriter::new(
                File::options().create(true).append(true).open(path)?,
            )),
            None => None,
        };
        let ring = Arc::new(Mutex::new(HeartbeatRing::new(config.capacity)));
        let stop: Arc<StopSignal> = Arc::new((Mutex::new(false), Condvar::new()));

        let thread_ring = Arc::clone(&ring);
        let thread_stop = Arc::clone(&stop);
        let interval = config.interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("cwa-heartbeat".into())
            .spawn(move || {
                let epoch = Instant::now();
                loop {
                    Self::take_sample(&registry, &thread_ring, epoch, jsonl.as_mut());
                    let (lock, cvar) = &*thread_stop;
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    while !*stopped {
                        let (guard, timed_out) = cvar
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if timed_out.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        drop(stopped);
                        // Final sample: capture the end-of-run state.
                        Self::take_sample(&registry, &thread_ring, epoch, jsonl.as_mut());
                        if let Some(w) = jsonl.as_mut() {
                            let _ = w.flush();
                        }
                        return;
                    }
                }
            })?;

        Ok(Heartbeat {
            ring,
            stop,
            handle: Some(handle),
        })
    }

    fn take_sample(
        registry: &Registry,
        ring: &Mutex<HeartbeatRing>,
        epoch: Instant,
        jsonl: Option<&mut BufWriter<File>>,
    ) {
        let sample = HeartbeatSample {
            t_ns: epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            values: registry.sample(),
        };
        if let Some(w) = jsonl {
            let ts_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0);
            let _ = writeln!(w, "{}", registry.to_json_with_ts(ts_ms));
            let _ = w.flush();
        }
        let (record_rate, event_rate) = {
            let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.push(sample);
            (
                ring.window_rate(names::RECORDS),
                ring.window_rate(names::EVENTS),
            )
        };
        // Publish the windowed rates back into the registry as gauges:
        // scrapes of `/metrics` (and the jsonl stream) then carry a
        // ready-made records/s — and its producer-side twin events/s —
        // without client-side differencing. Pure observation — gauges
        // never feed back into simulation logic.
        let publish = |name: &str, rate: Option<f64>| {
            if let Some(rate) = rate {
                registry
                    .gauge(name)
                    .set(rate.round().clamp(i64::MIN as f64, i64::MAX as f64) as i64);
            }
        };
        publish(names::RECORDS_PER_SEC, record_rate);
        publish(names::EVENTS_PER_SEC, event_rate);
    }

    /// The sample ring, shared with the scrape server.
    pub fn ring(&self) -> Arc<Mutex<HeartbeatRing>> {
        Arc::clone(&self.ring)
    }

    /// Signals the sampler to take one final sample and exit, then
    /// joins it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "Heartbeat({} resident / {} total samples)",
            ring.len(),
            ring.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ns: u64, pairs: &[(&str, i64)]) -> HeartbeatSample {
        HeartbeatSample {
            t_ns,
            values: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn ring_drops_oldest_under_tiny_capacity() {
        let mut ring = HeartbeatRing::new(3);
        for i in 0..7u64 {
            ring.push(sample(i * 100, &[("records", i as i64)]));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.oldest().unwrap().value("records"), 4);
        assert_eq!(ring.latest().unwrap().value("records"), 6);
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        let mut ring = HeartbeatRing::new(0);
        assert_eq!(ring.capacity(), 2);
        ring.push(sample(0, &[("x", 1)]));
        ring.push(sample(1_000_000_000, &[("x", 11)]));
        ring.push(sample(2_000_000_000, &[("x", 31)]));
        // Oldest (t=0) evicted; window is [1s, 2s]: Δ20 over 1s.
        assert_eq!(ring.window_rate("x"), Some(20.0));
    }

    #[test]
    fn window_rate_survives_wraparound() {
        // Counter climbs 5/sample, one sample per 100ms → 50/s. After
        // pushing far past capacity, the resident window still spans
        // (capacity - 1) intervals and the rate must be unchanged.
        let mut ring = HeartbeatRing::new(4);
        for i in 0..100u64 {
            ring.push(sample(i * 100_000_000, &[("records", (i * 5) as i64)]));
        }
        assert_eq!(ring.len(), 4);
        let (delta, dt) = ring.window_delta("records").unwrap();
        assert_eq!(delta, 15, "3 intervals × 5/interval");
        assert_eq!(dt, 300_000_000);
        let rate = ring.window_rate("records").unwrap();
        assert!((rate - 50.0).abs() < 1e-9, "got {rate}");
    }

    #[test]
    fn window_rate_needs_two_distinct_timestamps() {
        let mut ring = HeartbeatRing::new(4);
        assert_eq!(ring.window_rate("x"), None);
        ring.push(sample(500, &[("x", 1)]));
        assert_eq!(ring.window_rate("x"), None, "one sample is no window");
        ring.push(sample(500, &[("x", 2)]));
        assert_eq!(ring.window_rate("x"), None, "zero-width window");
    }

    #[test]
    fn missing_metric_reads_as_zero() {
        let mut ring = HeartbeatRing::new(4);
        ring.push(sample(0, &[]));
        ring.push(sample(1_000_000_000, &[("late.metric", 30)]));
        // Registered mid-run: the rate treats its pre-registration
        // value as 0 rather than erroring.
        assert_eq!(ring.window_rate("late.metric"), Some(30.0));
    }

    #[test]
    fn stall_detection_requires_full_window() {
        let mut ring = HeartbeatRing::new(8);
        ring.push(sample(0, &[("records", 10)]));
        ring.push(sample(100, &[("records", 10)]));
        assert!(
            !ring.stalled("records", 3),
            "too few samples to call a stall"
        );
        ring.push(sample(200, &[("records", 10)]));
        ring.push(sample(300, &[("records", 10)]));
        assert!(ring.stalled("records", 3), "flat across 3 heartbeats");
        ring.push(sample(400, &[("records", 11)]));
        assert!(!ring.stalled("records", 3), "progress clears the stall");
    }

    #[test]
    fn sampler_publishes_records_per_sec_gauge() {
        let reg = Arc::new(Registry::new());
        let records = reg.counter(names::RECORDS);
        let hb = Heartbeat::start(
            Arc::clone(&reg),
            HeartbeatConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
                jsonl: None,
            },
        )
        .expect("sampler starts");
        for _ in 0..20 {
            records.add(1_000);
            std::thread::sleep(Duration::from_millis(2));
        }
        hb.stop();
        let published = reg
            .sample()
            .get(names::RECORDS_PER_SEC)
            .copied()
            .expect("gauge registered");
        assert!(published > 0, "counter was rising, got {published}/s");
    }

    #[test]
    fn sampler_publishes_events_per_sec_gauge() {
        let reg = Arc::new(Registry::new());
        let events = reg.counter(names::EVENTS);
        let hb = Heartbeat::start(
            Arc::clone(&reg),
            HeartbeatConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
                jsonl: None,
            },
        )
        .expect("sampler starts");
        for _ in 0..20 {
            events.add(4_000);
            std::thread::sleep(Duration::from_millis(2));
        }
        hb.stop();
        let published = reg
            .sample()
            .get(names::EVENTS_PER_SEC)
            .copied()
            .expect("producer gauge registered");
        assert!(published > 0, "counter was rising, got {published}/s");
    }

    #[test]
    fn sampler_survives_a_poisoned_ring() {
        // Regression: a panic while holding the ring lock used to
        // poison it and every later `.expect("… poisoned")` — sampler,
        // scrape server, Debug impl — died with it, silently ending
        // telemetry for the rest of the run.
        let reg = Arc::new(Registry::new());
        let counter = reg.counter(names::RECORDS);
        let hb = Heartbeat::start(
            Arc::clone(&reg),
            HeartbeatConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
                jsonl: None,
            },
        )
        .expect("sampler starts");
        let ring = hb.ring();

        // Poison the mutex from a panicking thread.
        let poisoner = Arc::clone(&ring);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(ring.lock().is_err(), "ring lock must be poisoned");

        // The sampler must keep pushing samples regardless.
        let before = ring.lock().unwrap_or_else(|e| e.into_inner()).total();
        for _ in 0..10 {
            counter.add(100);
            std::thread::sleep(Duration::from_millis(3));
        }
        let after = ring.lock().unwrap_or_else(|e| e.into_inner()).total();
        assert!(
            after > before,
            "sampler stopped after poisoning: {before} -> {after}"
        );
        // Debug formatting recovers too (it reads through the lock).
        let _ = format!("{hb:?}");
        hb.stop();
    }

    #[test]
    fn sampler_fills_ring_and_streams_jsonl() {
        let reg = Arc::new(Registry::new());
        let counter = reg.counter("test.records");
        let path =
            std::env::temp_dir().join(format!("cwa-heartbeat-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let hb = Heartbeat::start(
            Arc::clone(&reg),
            HeartbeatConfig {
                interval: Duration::from_millis(5),
                capacity: 64,
                jsonl: Some(path.clone()),
            },
        )
        .expect("sampler starts");
        for _ in 0..20 {
            counter.add(10);
            std::thread::sleep(Duration::from_millis(2));
        }
        let ring = hb.ring();
        hb.stop();

        let ring = ring.lock().unwrap();
        assert!(ring.total() >= 2, "got {} samples", ring.total());
        assert_eq!(ring.latest().unwrap().value("test.records"), 200);
        let rate = ring.window_rate("test.records").unwrap();
        assert!(rate > 0.0, "counter was rising, got rate {rate}");

        // Every jsonl line is a complete cwa-obs/v1 document.
        let text = std::fs::read_to_string(&path).expect("jsonl written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, ring.total(), "one line per sample");
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(
                v.get("schema").and_then(|s| s.as_str()),
                Some("cwa-obs/v1"),
                "bad line: {line}"
            );
            assert!(v.get("ts_ms").is_some(), "missing ts_ms: {line}");
            assert!(v.get("metrics").is_some(), "missing metrics: {line}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
